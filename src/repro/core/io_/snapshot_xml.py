"""XML persistence for snapshot (time-series) profile data.

Real TAU writes profile snapshots as an XML stream; PerfDMF's later
releases parse it.  Our rendering wraps one ``<perfdmf_profile>``
document (the §3.1 common representation) per capture inside a
``<perfdmf_snapshots>`` root, so each snapshot individually round-trips
through the standard XML machinery::

    <perfdmf_snapshots version="1.0">
      <snapshot timestamp="1.0" label="after step 1">
        <perfdmf_profile ...> ... </perfdmf_profile>
      </snapshot>
      ...
    </perfdmf_snapshots>
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from pathlib import Path
from xml.sax.saxutils import quoteattr

from ..model.snapshot import SnapshotSeries
from .base import ProfileParseError
from .xml_export import xml_string
from .xml_import import from_element


def export_snapshots(series: SnapshotSeries, path: str | os.PathLike) -> Path:
    """Write a snapshot series to ``path``."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write('<?xml version="1.0" encoding="UTF-8"?>\n')
        fh.write('<perfdmf_snapshots version="1.0">\n')
        for snapshot in series:
            fh.write(
                f'<snapshot timestamp="{snapshot.timestamp:.17g}" '
                f"label={quoteattr(snapshot.label)}>\n"
            )
            profile_xml = xml_string(snapshot.source)
            # strip the inner document's XML declaration
            body = profile_xml.split("\n", 1)[1]
            fh.write(body)
            fh.write("</snapshot>\n")
        fh.write("</perfdmf_snapshots>\n")
    return out


def parse_snapshots(target: str | os.PathLike) -> SnapshotSeries:
    """Read a snapshot series written by :func:`export_snapshots`."""
    try:
        tree = ET.parse(target)
    except ET.ParseError as exc:
        raise ProfileParseError(f"malformed XML: {exc}", target) from None
    root = tree.getroot()
    if root.tag != "perfdmf_snapshots":
        raise ProfileParseError(
            f"expected <perfdmf_snapshots> root, found <{root.tag}>", target
        )
    series = SnapshotSeries()
    for snapshot_el in root.findall("snapshot"):
        profile_el = snapshot_el.find("perfdmf_profile")
        if profile_el is None:
            raise ProfileParseError("snapshot without profile payload", target)
        source = from_element(profile_el)
        series.add(
            timestamp=float(snapshot_el.get("timestamp", "0")),
            source=source,
            label=snapshot_el.get("label", ""),
        )
    if len(series) == 0:
        raise ProfileParseError("empty snapshot document", target)
    return series
