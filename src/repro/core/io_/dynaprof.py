"""Importer for dynaprof (papiprof) text output.

Reads the ``Exclusive Profile``/``Inclusive Profile`` table pairs, one
file per process; the ``TOTAL`` pseudo-row is skipped (PerfDMF computes
its own summaries).  The metric name comes from the section header
("Exclusive Profile of metric PAPI_FP_OPS."); bare "Exclusive Profile."
headers map to wall-clock time.
"""

from __future__ import annotations

import os
import re

from ...core.model import DataSource, group as groups
from .base import ProfileParseError, discover_files, natural_sort_key

_SECTION_RE = re.compile(
    r"^(?P<kind>Exclusive|Inclusive) Profile(?: of metric (?P<metric>\S+?))?\.\s*$"
)
_ROW_RE = re.compile(
    r"^(?P<name>\S(?:.*?\S)?)\s+(?P<pct>[\d.eE+-]+)\s+"
    r"(?P<total>[\d.eE+-]+)\s+(?P<calls>\d+)\s*$"
)
_RANK_RE = re.compile(r"\.(\d+)$")


def parse_dynaprof(target: str | os.PathLike) -> DataSource:
    """Parse dynaprof output: a file or directory of ``*.dynaprof.N``."""
    files = sorted(discover_files(target), key=natural_sort_key)
    if not files:
        raise FileNotFoundError(f"no dynaprof output found at {target}")
    source = DataSource()
    for i, path in enumerate(files):
        match = _RANK_RE.search(path.name)
        node = int(match.group(1)) if match else i
        _parse_file(path, source, node)
    source.generate_statistics()
    return source


def _parse_file(path, source: DataSource, node: int) -> None:
    thread = source.add_thread(node, 0, 0)
    kind = None
    metric_index = 0
    saw_section = False
    with open(path, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.rstrip("\n")
            section = _SECTION_RE.match(line)
            if section:
                kind = section.group("kind")
                metric_name = section.group("metric") or "TIME"
                metric = source.add_metric(metric_name)
                metric_index = metric.index
                saw_section = True
                continue
            if kind is None or not line.strip():
                continue
            if line.startswith(("-", "Name")):
                continue
            row = _ROW_RE.match(line)
            if not row:
                continue
            name = row.group("name")
            if name == "TOTAL":
                continue
            event = source.add_interval_event(name, groups.classify_event_name(name))
            profile = thread.get_or_create_function_profile(event)
            value = float(row.group("total"))
            if kind == "Exclusive":
                profile.set_exclusive(metric_index, value)
                if metric_index == 0 and profile.calls == 0:
                    profile.calls = float(row.group("calls"))
            else:
                profile.set_inclusive(metric_index, value)
    if not saw_section:
        raise ProfileParseError("no dynaprof profile sections found", path)
    # Tools sometimes emit exclusive-only tables; repair inclusives.
    for profile in thread.function_profiles.values():
        for m, inc, exc in profile.iter_metrics():
            if inc < exc:
                profile.set_inclusive(m, exc)
