"""Parallel bulk-ingest pipeline: many profile files → one database.

PerfDMF's headline scaling test (paper §3.1: "101 events on 16K
processors") stresses two distinct stages — parsing the profile files
and storing the rows.  Parsing is CPU-bound pure-Python work and
parallelises perfectly across files; storing must serialise on the
database connection.  This module wires the two together:

* a :class:`~concurrent.futures.ProcessPoolExecutor` fans profile
  parsing out across worker processes, each returning a picklable
  :class:`~repro.core.model.columnar.ColumnarTrial` payload (dense
  numpy arrays — far cheaper to pickle than the object model);
* a single writer streams the parsed payloads into the session through
  ``save_trial``'s bulk-load path (deferred index maintenance on
  minisql, ``executemany`` batching on sqlite).

``ingest_profiles`` is the one-call front end; ``parse_profiles`` is
the standalone parallel-parse stage for callers that want the payloads
without storing them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.obs.log import get_logger
from repro.obs.metrics import registry as _registry
from repro.obs.trace import tracer as _tracer

from ..parallel import TaskFailure, run_tasks

from ..model.columnar import ColumnarTrial
from .registry import load_profile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model.entities import Trial

_log = get_logger("repro.ingest")


class ProfileParseError(RuntimeError):
    """A profile file failed to parse, even after the coordinator retry.

    Carries the offending path so a batch failure names its culprit
    instead of surfacing a bare worker traceback.
    """

    def __init__(self, path: str, cause: BaseException):
        super().__init__(f"failed to parse profile {path!r}: {cause}")
        self.path = path
        self.cause = cause


def parse_columnar(
    target: str | os.PathLike, format_name: Optional[str] = None
) -> ColumnarTrial:
    """Parse one profile file/directory into a :class:`ColumnarTrial`.

    Module-level so it is picklable as a process-pool task.  The source
    path is recorded in the payload metadata under ``ingest_source``.
    """
    with _tracer.span("ingest.parse_file", target=str(target)):
        with _tracer.span("ingest.load_profile"):
            source = load_profile(target, format_name)
        with _tracer.span("ingest.columnarize"):
            columnar = ColumnarTrial.from_datasource(source)
    columnar.metadata.setdefault("ingest_source", str(target))
    return columnar


def _parse_task(spec: tuple) -> ColumnarTrial:
    """Pool entry point: one (path, format[, trace_ctx]) tuple per task.

    When a trace context ``(trace_id, parent_span_id)`` rides along, the
    worker enables its own process-local tracer, parses under that
    remote parent, and ships its finished spans back attached to the
    payload (``trace_spans``) for the coordinator to adopt — worker
    spans then nest under the coordinator's ingest span in exported
    timelines.
    """
    trace_ctx = spec[2] if len(spec) > 2 else None
    if trace_ctx is None:
        return parse_columnar(spec[0], spec[1])
    _tracer.enable()
    _tracer.clear()
    with _tracer.context(trace_ctx[0], trace_ctx[1]):
        columnar = parse_columnar(spec[0], spec[1])
    columnar.trace_spans = _tracer.drain()
    return columnar


def parse_profiles(
    targets: Sequence[str | os.PathLike],
    format_name: Optional[str] = None,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> list[ColumnarTrial]:
    """Parse many profile targets, in parallel when it can help.

    ``workers=None`` sizes the pool to ``min(len(targets), cpu_count)``;
    anything that resolves to a single worker (including a one-element
    target list) parses serially in-process — same results, no pool
    overhead.  Output order always matches input order.

    A worker task that raises or exceeds ``task_timeout`` seconds is
    retried **once**, serially in the coordinator — transient failures
    (worker OOM-killed, pool torn down, slow NFS read) don't doom a
    whole batch.  If the retry also fails, the error surfaces as a
    :class:`ProfileParseError` naming the offending file.
    """
    if workers is None:
        workers = min(len(targets), os.cpu_count() or 1)
    if workers <= 1 or len(targets) <= 1:
        # Serial path records spans directly into this process's tracer.
        out = []
        for target in targets:
            try:
                out.append(parse_columnar(str(target), format_name))
            except Exception as exc:
                raise ProfileParseError(str(target), exc) from exc
        return out
    trace_ctx = _tracer.current_context() if _tracer.enabled else None
    specs = [(str(t), format_name, trace_ctx) for t in targets]
    # Pool setup/teardown (no joining shutdown, terminate-on-timeout,
    # BrokenProcessPool fan-out) lives in repro.core.parallel; failed
    # tasks come back as TaskFailure sentinels for the serial retry.
    outcomes = run_tasks(_parse_task, specs, workers, task_timeout)
    payloads: list[Optional[ColumnarTrial]] = [None] * len(specs)
    retries: list[int] = []
    broken_logged = False
    for i, outcome in enumerate(outcomes):
        if not isinstance(outcome, TaskFailure):
            payloads[i] = outcome
            continue
        _registry.counter("ingest.parse_retries").inc()
        if not (outcome.broken_pool and broken_logged):
            _log.warning(
                "parse_retry", target=specs[i][0], error=str(outcome.error),
                error_type=type(outcome.error).__name__,
            )
        broken_logged = broken_logged or outcome.broken_pool
        retries.append(i)
    for i in retries:
        path = specs[i][0]
        try:
            payloads[i] = parse_columnar(path, format_name)
        except Exception as exc:
            raise ProfileParseError(path, exc) from exc
    if trace_ctx is not None:
        for payload in payloads:
            shipped = getattr(payload, "trace_spans", None)
            if shipped:
                _tracer.adopt(shipped)
                payload.trace_spans = None
    return payloads


@dataclass
class IngestReport:
    """What one ``ingest_profiles`` run did, stage by stage."""

    trials: list["Trial"] = field(default_factory=list)
    files: int = 0
    workers: int = 1
    rows: int = 0
    parse_seconds: float = 0.0
    store_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.parse_seconds + self.store_seconds

    @property
    def rows_per_second(self) -> float:
        return self.rows / self.total_seconds if self.total_seconds > 0 else 0.0


def ingest_profiles(
    session,
    experiment,
    targets: Iterable[str | os.PathLike],
    *,
    format_name: Optional[str] = None,
    workers: Optional[int] = None,
    names: Optional[Sequence[str]] = None,
    bulk: bool = True,
) -> IngestReport:
    """Parse ``targets`` in parallel and store each as one trial.

    The parse stage fans out over a process pool (see
    :func:`parse_profiles`); the store stage is a single writer feeding
    ``session.save_trial`` — with ``bulk`` (default) every trial goes
    through the engine's bulk-load mode.  Trial names default to each
    target's basename; pass ``names`` (same length as ``targets``) to
    override.

    Returns an :class:`IngestReport`; the pipeline's aggregate stage
    timings also replace ``session.connection.ingest_stats`` so
    ``connection.stats()`` reflects the whole run rather than just the
    last trial.
    """
    target_list = list(targets)
    if names is not None and len(names) != len(target_list):
        raise ValueError(
            f"names has {len(names)} entries for {len(target_list)} targets"
        )
    resolved_workers = (
        min(len(target_list), os.cpu_count() or 1) if workers is None else workers
    )

    report = IngestReport(files=len(target_list), workers=max(1, resolved_workers))
    with _tracer.span(
        "ingest.run", files=len(target_list), workers=report.workers
    ):
        parse_started = perf_counter()
        with _tracer.span("ingest.parse_stage"):
            payloads = parse_profiles(target_list, format_name, resolved_workers)
        report.parse_seconds = perf_counter() - parse_started

        insert = index = summary = 0.0
        store_started = perf_counter()
        conn = session.connection
        for i, payload in enumerate(payloads):
            name = names[i] if names is not None else Path(target_list[i]).name
            with _tracer.span("ingest.store_trial", trial=name):
                trial = session.save_trial(payload, experiment, name, bulk=bulk)
            report.trials.append(trial)
            report.rows += payload.num_data_points
            insert += conn.ingest_stats.get("ingest_insert_seconds", 0.0)
            index += conn.ingest_stats.get("ingest_index_seconds", 0.0)
            summary += conn.ingest_stats.get("ingest_summary_seconds", 0.0)
        report.store_seconds = perf_counter() - store_started
    _registry.counter("ingest.files").inc(report.files)
    _registry.counter("ingest.rows").inc(report.rows)
    _registry.histogram("ingest.parse_stage_seconds").observe(report.parse_seconds)
    _registry.histogram("ingest.store_stage_seconds").observe(report.store_seconds)

    conn.ingest_stats = {
        "ingest_parse_seconds": report.parse_seconds,
        "ingest_insert_seconds": insert,
        "ingest_index_seconds": index,
        "ingest_summary_seconds": summary,
        "ingest_rows": report.rows,
        "ingest_rows_per_second": report.rows_per_second,
    }
    return report
