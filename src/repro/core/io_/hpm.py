"""Importer for IBM HPMToolkit (libhpm) per-process output.

Each ``perfhpm*`` file holds one block per instrumented section with a
label, call count, wall-clock time(s) and hardware counter totals.
Counter lines have the shape ``NAME (description): value``; wall-clock
lines become the TIME metric.
"""

from __future__ import annotations

import os
import re

from ...core.model import DataSource, group as groups
from .base import ProfileParseError, discover_files, natural_sort_key

_SECTION_RE = re.compile(
    r"^Instrumented section:\s*(?P<id>\d+)\s*-\s*Label:\s*(?P<label>.+?)\s*$"
)
_COUNT_RE = re.compile(r"^\s*Count:\s*(?P<count>\d+)")
_WALL_RE = re.compile(
    r"^\s*Wall Clock Time:\s*(?P<seconds>[\d.eE+-]+)\s*seconds"
)
_EXCL_WALL_RE = re.compile(
    r"^\s*Exclusive Wall Clock Time:\s*(?P<seconds>[\d.eE+-]+)\s*seconds"
)
_COUNTER_RE = re.compile(
    r"^\s*(?P<name>[A-Z][A-Z0-9_]+)\s*\((?P<descr>[^)]*)\)\s*:\s*"
    r"(?P<value>[\d.eE+-]+)\s*$"
)
_RANK_RE = re.compile(r"perfhpm(\d+)(?:\.(\d+))?(?:\.(\d+))?")
_USEC = 1.0e6


def parse_hpm(target: str | os.PathLike) -> DataSource:
    """Parse HPMToolkit output: one file or a directory of perfhpm files."""
    files = sorted(
        discover_files(target, prefix="perfhpm") or discover_files(target),
        key=natural_sort_key,
    )
    if not files:
        raise FileNotFoundError(f"no HPMToolkit output found at {target}")
    source = DataSource()
    source.add_metric("TIME")
    for i, path in enumerate(files):
        match = _RANK_RE.search(path.name)
        if match:
            node = int(match.group(1))
            context = int(match.group(2) or 0)
            thread_id = int(match.group(3) or 0)
        else:
            node, context, thread_id = i, 0, 0
        _parse_file(path, source, node, context, thread_id)
    source.generate_statistics()
    return source


def _parse_file(path, source: DataSource, node: int, context: int, thread_id: int) -> None:
    thread = source.add_thread(node, context, thread_id)
    profile = None
    saw_section = False
    with open(path, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.rstrip("\n")
            section = _SECTION_RE.match(line)
            if section:
                label = section.group("label")
                event = source.add_interval_event(
                    label, groups.classify_event_name(label)
                )
                profile = thread.get_or_create_function_profile(event)
                saw_section = True
                continue
            if profile is None:
                continue
            count = _COUNT_RE.match(line)
            if count:
                profile.calls = float(count.group("count"))
                continue
            excl_wall = _EXCL_WALL_RE.match(line)
            if excl_wall:
                profile.set_exclusive(0, float(excl_wall.group("seconds")) * _USEC)
                continue
            wall = _WALL_RE.match(line)
            if wall:
                inclusive = float(wall.group("seconds")) * _USEC
                profile.set_inclusive(0, inclusive)
                if profile.get_exclusive(0) == 0.0:
                    profile.set_exclusive(0, inclusive)
                continue
            counter = _COUNTER_RE.match(line)
            if counter:
                metric = source.add_metric(counter.group("name"))
                if profile.num_metrics < source.num_metrics:
                    profile.add_metric_slot(source.num_metrics - profile.num_metrics)
                value = float(counter.group("value"))
                profile.set_inclusive(metric.index, value)
                profile.set_exclusive(metric.index, value)
    if not saw_section:
        raise ProfileParseError("no instrumented sections found", path)
    # exclusive wall time may exceed inclusive in degenerate blocks; clamp
    for fp in thread.function_profiles.values():
        for m, inc, exc in fp.iter_metrics():
            if exc > inc:
                fp.set_exclusive(m, inc)
