"""Shared importer utilities: file discovery and parse errors.

PerfDMF *"provides support for parsing a directory of files, or a subset
of files in a directory that start with a particular prefix or end with
a particular suffix"* (paper §4) — :func:`discover_files` implements
exactly that selection model for the importers.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Iterable, Optional


class ProfileParseError(ValueError):
    """Raised when an input file does not match its declared format."""

    def __init__(self, message: str, path: str | os.PathLike | None = None, line: int = 0):
        self.path = str(path) if path is not None else None
        self.line = line
        location = ""
        if self.path:
            location = f" in {self.path}"
            if line:
                location += f":{line}"
        super().__init__(f"{message}{location}")


def discover_files(
    target: str | os.PathLike,
    prefix: Optional[str] = None,
    suffix: Optional[str] = None,
    pattern: Optional[str] = None,
) -> list[Path]:
    """Resolve ``target`` into a sorted list of profile files.

    ``target`` may be a single file (returned as-is) or a directory, in
    which case entries are filtered by ``prefix``/``suffix`` (both may
    be given) or a regular expression ``pattern``.
    """
    path = Path(target)
    if path.is_file():
        return [path]
    if not path.is_dir():
        raise FileNotFoundError(f"no such file or directory: {target}")
    regex = re.compile(pattern) if pattern else None
    out: list[Path] = []
    for entry in sorted(path.iterdir()):
        if not entry.is_file():
            continue
        name = entry.name
        if prefix is not None and not name.startswith(prefix):
            continue
        if suffix is not None and not name.endswith(suffix):
            continue
        if regex is not None and not regex.search(name):
            continue
        out.append(entry)
    return out


def natural_sort_key(path: Path) -> tuple:
    """Sort profile.2.0.0 before profile.10.0.0."""
    parts = re.split(r"(\d+)", path.name)
    return tuple(int(p) if p.isdigit() else p for p in parts)
