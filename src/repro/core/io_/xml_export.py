"""Export of profile data to PerfDMF's common XML representation.

Paper §3.1: *"Export of profile data is also supported in a common XML
representation."*  The document is a complete, lossless rendering of a
:class:`DataSource` — metrics, events with groups, atomic events, the
thread hierarchy and every profile record — so XML round trips are exact
(tested in E6).

Schema sketch::

    <perfdmf_profile version="1.0">
      <metadata><attribute name="..." value="..."/></metadata>
      <metrics><metric id="0" name="TIME"/></metrics>
      <interval_events><event id="0" name="main" group="TAU_DEFAULT"/></interval_events>
      <atomic_events><event id="0" name="heap" group="..."/></atomic_events>
      <threads>
        <thread node="0" context="0" thread="0">
          <interval_profile event="0" calls="1" subroutines="14">
            <value metric="0" inclusive="..." exclusive="..."/>
          </interval_profile>
          <atomic_profile event="0" count="3" max="..." min="..."
                          mean="..." sumsqr="..."/>
        </thread>
      </threads>
    </perfdmf_profile>
"""

from __future__ import annotations

import os
from pathlib import Path
from xml.sax.saxutils import escape, quoteattr

from ...core.model import DataSource


def export_xml(source: DataSource, path: str | os.PathLike) -> Path:
    """Write ``source`` to ``path`` as PerfDMF common XML."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(xml_string(source))
    return out


def xml_string(source: DataSource) -> str:
    """Render ``source`` as an XML string."""
    parts: list[str] = ['<?xml version="1.0" encoding="UTF-8"?>\n']
    parts.append('<perfdmf_profile version="1.0">\n')

    parts.append("  <metadata>\n")
    for key, value in sorted(source.metadata.items()):
        parts.append(
            f"    <attribute name={quoteattr(key)} value={quoteattr(str(value))}/>\n"
        )
    parts.append("  </metadata>\n")

    parts.append("  <metrics>\n")
    for metric in source.metrics:
        derived = "true" if metric.derived else "false"
        parts.append(
            f'    <metric id="{metric.index}" name={quoteattr(metric.name)} '
            f'derived="{derived}"/>\n'
        )
    parts.append("  </metrics>\n")

    parts.append("  <interval_events>\n")
    for event in source.interval_events.values():
        parts.append(
            f'    <event id="{event.index}" name={quoteattr(event.name)} '
            f"group={quoteattr(event.group)}/>\n"
        )
    parts.append("  </interval_events>\n")

    parts.append("  <atomic_events>\n")
    for event in source.atomic_events.values():
        parts.append(
            f'    <event id="{event.index}" name={quoteattr(event.name)} '
            f"group={quoteattr(event.group)}/>\n"
        )
    parts.append("  </atomic_events>\n")

    parts.append("  <threads>\n")
    for thread in source.all_threads():
        parts.append(
            f'    <thread node="{thread.node_id}" context="{thread.context_id}" '
            f'thread="{thread.thread_id}">\n'
        )
        for profile in thread.function_profiles.values():
            parts.append(
                f'      <interval_profile event="{profile.event.index}" '
                f'calls="{profile.calls:.17g}" '
                f'subroutines="{profile.subroutines:.17g}">\n'
            )
            for m, inc, exc in profile.iter_metrics():
                parts.append(
                    f'        <value metric="{m}" inclusive="{inc:.17g}" '
                    f'exclusive="{exc:.17g}"/>\n'
                )
            parts.append("      </interval_profile>\n")
        for up in thread.user_event_profiles.values():
            parts.append(
                f'      <atomic_profile event="{up.event.index}" '
                f'count="{up.count}" max="{up.max_value:.17g}" '
                f'min="{up.min_value:.17g}" mean="{up.mean_value:.17g}" '
                f'sumsqr="{up.sumsqr:.17g}"/>\n'
            )
        parts.append("    </thread>\n")
    parts.append("  </threads>\n")
    parts.append("</perfdmf_profile>\n")
    return "".join(parts)
