"""Format registry with auto-detection.

PerfDMF's profile input component selects the right embedded translator
for a data source (paper §4: *"creating a profile DataSession object
specific to the profile format being imported"*).  The registry maps
format names to parser callables and sniffs unknown inputs by content.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable

from ...core.model import DataSource
from .base import ProfileParseError
from .cube import parse_cube
from .dynaprof import parse_dynaprof
from .gprof import parse_gprof
from .hpm import parse_hpm
from .mpip import parse_mpip
from .psrun import parse_psrun
from .svpablo import parse_svpablo
from .tau import parse_tau_profiles
from .xml_import import parse_xml

ParserFn = Callable[[os.PathLike | str], DataSource]

#: The supported formats (paper §3.1 lists the first six; SvPablo was
#: "being added"; xml is the common exchange representation).
PARSERS: dict[str, ParserFn] = {
    "tau": parse_tau_profiles,
    "gprof": parse_gprof,
    "mpip": parse_mpip,
    "dynaprof": parse_dynaprof,
    "hpmtoolkit": parse_hpm,
    "psrun": parse_psrun,
    "svpablo": parse_svpablo,
    "xml": parse_xml,
    "cube": parse_cube,
}

FORMAT_NAMES = tuple(PARSERS)


def get_parser(format_name: str) -> ParserFn:
    try:
        return PARSERS[format_name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown profile format {format_name!r}; supported: {sorted(PARSERS)}"
        ) from None


def load_profile(
    target: str | os.PathLike, format_name: str | None = None
) -> DataSource:
    """Parse ``target``, auto-detecting the format when not given."""
    if format_name is not None:
        return get_parser(format_name)(target)
    detected = detect_format(target)
    if detected is None:
        raise ProfileParseError(
            "could not auto-detect profile format", target
        )
    return PARSERS[detected](target)


def detect_format(target: str | os.PathLike) -> str | None:
    """Sniff the profile format of a file or directory, or None."""
    path = Path(target)
    if path.is_dir():
        entries = [e.name for e in path.iterdir()]
        if any(e.startswith(("profile.", "MULTI__")) for e in entries):
            return "tau"
        if any(e.startswith("perfhpm") for e in entries):
            return "hpmtoolkit"
        if any(e.startswith("psrun") and e.endswith(".xml") for e in entries):
            return "psrun"
        if any(".dynaprof." in e for e in entries):
            return "dynaprof"
        if any(e.startswith("gprof.out") for e in entries):
            return "gprof"
        if any(e.endswith(".mpiP") for e in entries):
            return "mpip"
        # fall through: sniff the first regular file
        for entry in sorted(path.iterdir()):
            if entry.is_file():
                detected = detect_format(entry)
                if detected:
                    return detected
        return None
    if not path.is_file():
        return None
    name = path.name
    if name.startswith("profile.") and name.count(".") == 3:
        return "tau"
    if name.startswith("perfhpm"):
        return "hpmtoolkit"
    head = _head(path)
    if "@ mpiP" in head:
        return "mpip"
    if "<perfdmf_profile" in head:
        return "xml"
    if "<cube" in head:
        return "cube"
    if "<hwpcreport" in head:
        return "psrun"
    if '"SvPablo profile"' in head:
        return "svpablo"
    if "Exclusive Profile" in head:
        return "dynaprof"
    if "Flat profile" in head:
        return "gprof"
    if "templated_functions" in head:
        return "tau"
    return None


def _head(path: Path, n_bytes: int = 4096) -> str:
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            return fh.read(n_bytes)
    except OSError:
        return ""
