"""Importer for PerfSuite ``psrun`` XML output.

psrun measures whole-process totals, so each per-rank XML document maps
to a single ``Entire application`` event on that rank: the wall-clock
element becomes TIME, and each ``<hwpcevent>`` becomes a counter metric.
"""

from __future__ import annotations

import os
import re
import xml.etree.ElementTree as ET

from ...core.model import DataSource, group as groups
from .base import ProfileParseError, discover_files, natural_sort_key

_RANK_RE = re.compile(r"psrun\.(\d+)")
_USEC = 1.0e6

EVENT_NAME = "Entire application"


def parse_psrun(target: str | os.PathLike) -> DataSource:
    """Parse psrun XML: one file or a directory of ``psrun.N.xml``."""
    files = sorted(
        discover_files(target, suffix=".xml") or discover_files(target),
        key=natural_sort_key,
    )
    if not files:
        raise FileNotFoundError(f"no psrun XML found at {target}")
    source = DataSource()
    source.add_metric("TIME")
    event = source.add_interval_event(EVENT_NAME, groups.DEFAULT)
    for i, path in enumerate(files):
        match = _RANK_RE.search(path.name)
        node = int(match.group(1)) if match else i
        _parse_file(path, source, event, node)
    source.generate_statistics()
    return source


def _parse_file(path, source: DataSource, event, node: int) -> None:
    try:
        tree = ET.parse(path)
    except ET.ParseError as exc:
        raise ProfileParseError(f"malformed XML: {exc}", path) from None
    root = tree.getroot()
    if root.tag != "hwpcreport":
        raise ProfileParseError(
            f"expected <hwpcreport> root, found <{root.tag}>", path
        )
    thread = source.add_thread(node, 0, 0)
    profile = thread.get_or_create_function_profile(event)
    profile.calls = 1

    wallclock = root.find("wallclock")
    if wallclock is not None and wallclock.text:
        seconds = float(wallclock.text.strip())
        profile.set_inclusive(0, seconds * _USEC)
        profile.set_exclusive(0, seconds * _USEC)

    events_el = root.find("hwpcevents")
    if events_el is not None:
        for hwpcevent in events_el.findall("hwpcevent"):
            name = hwpcevent.get("name")
            if not name or hwpcevent.text is None:
                continue
            metric = source.add_metric(name)
            if profile.num_metrics < source.num_metrics:
                profile.add_metric_slot(source.num_metrics - profile.num_metrics)
            value = float(hwpcevent.text.strip())
            profile.set_inclusive(metric.index, value)
            profile.set_exclusive(metric.index, value)
