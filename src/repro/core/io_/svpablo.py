"""Importer for the simplified SvPablo SDDF profile format.

Completes the support the paper lists as in progress.  Record syntax::

    "SvPablo profile" { "event name", rank, count, exclusive, inclusive };;
"""

from __future__ import annotations

import os
import re

from ...core.model import DataSource, group as groups
from .base import ProfileParseError, discover_files

_RECORD_RE = re.compile(
    r'^"SvPablo profile"\s*\{\s*"(?P<name>[^"]*)"\s*,\s*(?P<rank>\d+)\s*,\s*'
    r"(?P<count>\d+)\s*,\s*(?P<excl>[\d.eE+-]+)\s*,\s*(?P<incl>[\d.eE+-]+)\s*\}\s*;;\s*$"
)


def parse_svpablo(target: str | os.PathLike) -> DataSource:
    """Parse a simplified-SDDF SvPablo profile file."""
    files = discover_files(target)
    if not files:
        raise FileNotFoundError(f"no SvPablo data found at {target}")
    path = files[0]
    source = DataSource()
    source.add_metric("TIME")
    records = 0
    with open(path, encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(("/*", "#")):
                continue
            match = _RECORD_RE.match(line)
            if not match:
                if line.startswith('"SvPablo profile"'):
                    raise ProfileParseError("malformed SvPablo record", path, lineno)
                continue
            name = match.group("name")
            thread = source.add_thread(int(match.group("rank")), 0, 0)
            event = source.add_interval_event(
                name, groups.classify_event_name(name)
            )
            profile = thread.get_or_create_function_profile(event)
            profile.set_exclusive(0, float(match.group("excl")))
            profile.set_inclusive(0, float(match.group("incl")))
            profile.calls = float(match.group("count"))
            records += 1
    if records == 0:
        raise ProfileParseError("no SvPablo profile records found", path)
    source.generate_statistics()
    return source
