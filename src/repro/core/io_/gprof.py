"""Importer for gprof text output.

Parses the flat profile section (self seconds, calls) and the call
graph section (inclusive time via self+children on the primary line).
Times arrive in seconds and are converted to microseconds, PerfDMF's
canonical unit.  Groups are inferred from event names since gprof
carries no group information.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from ...core.model import DataSource, group as groups
from .base import ProfileParseError, discover_files, natural_sort_key

_FLAT_RE = re.compile(
    r"^\s*(?P<pct>[\d.]+)\s+(?P<cumulative>[\d.]+)\s+(?P<self>[\d.]+)"
    r"(?:\s+(?P<calls>\d+)\s+(?P<selfms>[\d.]+)\s+(?P<totalms>[\d.]+))?"
    r"\s+(?P<name>\S.*?)\s*$"
)
_GRAPH_PRIMARY_RE = re.compile(
    r"^\[(?P<index>\d+)\]\s+(?P<pct>[\d.]+)\s+(?P<self>[\d.]+)\s+"
    r"(?P<children>[\d.]+)\s+(?P<called>[\d+/]+)?\s+(?P<name>\S.*?)\s+\[\d+\]\s*$"
)
_TRIPLE_RE = re.compile(r"\.(\d+)\.(\d+)\.(\d+)$")
_USEC = 1.0e6


def parse_gprof(target: str | os.PathLike) -> DataSource:
    """Parse a gprof output file, or a directory of per-rank files."""
    source = DataSource()
    source.add_metric("TIME")
    files = sorted(discover_files(target), key=natural_sort_key)
    if not files:
        raise FileNotFoundError(f"no gprof output found at {target}")
    for i, path in enumerate(files):
        node = _node_of(path, default=i)
        _parse_file(path, source, node)
    source.generate_statistics()
    return source


def _node_of(path: Path, default: int) -> int:
    match = _TRIPLE_RE.search(path.name)
    if match:
        return int(match.group(1))
    return default


def _parse_file(path: Path, source: DataSource, node: int) -> None:
    thread = source.add_thread(node, 0, 0)
    in_flat = False
    in_graph = False
    saw_data = False
    with open(path, encoding="utf-8", errors="replace") as fh:
        for line in fh:
            stripped = line.rstrip("\n")
            if stripped.startswith("Flat profile"):
                in_flat = True
                in_graph = False
                continue
            if "Call graph" in stripped:
                in_flat = False
                in_graph = True
                continue
            if in_flat:
                if stripped.startswith((" %", "  %", "Each sample", "%")):
                    continue
                match = _FLAT_RE.match(stripped)
                if match and not stripped.lstrip().startswith("time"):
                    name = match.group("name")
                    event = source.add_interval_event(
                        name, groups.classify_event_name(name)
                    )
                    profile = thread.get_or_create_function_profile(event)
                    self_usec = float(match.group("self")) * _USEC
                    profile.set_exclusive(0, profile.get_exclusive(0) + self_usec)
                    calls = match.group("calls")
                    if calls:
                        profile.calls += float(calls)
                        total_ms = float(match.group("totalms"))
                        profile.set_inclusive(
                            0, total_ms * 1000.0 * float(calls)
                        )
                    else:
                        profile.set_inclusive(0, profile.get_exclusive(0))
                    if profile.get_inclusive(0) < profile.get_exclusive(0):
                        profile.set_inclusive(0, profile.get_exclusive(0))
                    saw_data = True
                continue
            if in_graph:
                match = _GRAPH_PRIMARY_RE.match(stripped)
                if match:
                    name = match.group("name").strip()
                    event = source.add_interval_event(
                        name, groups.classify_event_name(name)
                    )
                    profile = thread.get_or_create_function_profile(event)
                    inclusive = (
                        float(match.group("self")) + float(match.group("children"))
                    ) * _USEC
                    if inclusive > profile.get_inclusive(0):
                        profile.set_inclusive(0, inclusive)
                    called = match.group("called")
                    if called and profile.calls == 0:
                        profile.calls = float(called.split("/")[0])
                    saw_data = True
    if not saw_data:
        raise ProfileParseError("no gprof data found", path)
