"""CUBE 3.x export/import.

Paper §7: *"TAU already supports translation of parallel profiles to
CUBE format for presentation with the Expert tool"*, and integrating the
CUBE algebra is named future work.  This module provides the format
half of that integration (the algebra lives in
:mod:`repro.core.toolkit.cube_algebra`): structurally-faithful CUBE 3.0
XML with the metric / program(call-tree) / system(location) dimensions
and a severity matrix.

Mapping:

* each PerfDMF metric → a CUBE ``<metric>`` with exclusive severities,
  plus the standard ``visits`` metric carrying call counts;
* interval events → ``<region>``s; callpath events become proper
  ``<cnode>`` chains, flat events root-level cnodes;
* node/context/thread → machine/node/process/thread in the system tree;
* severity values are row-major per (metric, cnode) over all threads.
"""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET
from pathlib import Path
from xml.sax.saxutils import escape

from ..model import DataSource
from ..model.events import CALLPATH_SEPARATOR
from .base import ProfileParseError

VISITS_METRIC = "visits"


def export_cube(source: DataSource, path: str | os.PathLike) -> Path:
    """Write ``source`` as a CUBE 3.0 XML document."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(cube_string(source))
    return out


def cube_string(source: DataSource) -> str:
    threads = list(source.all_threads())
    events = list(source.interval_events.values())
    parts: list[str] = ['<?xml version="1.0" encoding="UTF-8"?>\n']
    parts.append('<cube version="3.0">\n')
    parts.append("  <attr key=\"generator\" value=\"repro-perfdmf\"/>\n")

    # -- metric dimension ----------------------------------------------------
    parts.append("  <metrics>\n")
    for metric in source.metrics:
        parts.append(
            f'    <metric id="{metric.index}">\n'
            f"      <disp_name>{escape(metric.name)}</disp_name>\n"
            f"      <uniq_name>{escape(metric.name)}</uniq_name>\n"
            f"      <dtype>FLOAT</dtype>\n"
            f"    </metric>\n"
        )
    visits_id = len(source.metrics)
    parts.append(
        f'    <metric id="{visits_id}">\n'
        f"      <disp_name>{VISITS_METRIC}</disp_name>\n"
        f"      <uniq_name>{VISITS_METRIC}</uniq_name>\n"
        f"      <dtype>INTEGER</dtype>\n"
        f"    </metric>\n"
    )
    parts.append("  </metrics>\n")

    # -- program dimension (regions + call tree) --------------------------------
    parts.append("  <program>\n")
    region_id_of: dict[str, int] = {}
    for event in events:
        leaf = event.name.rsplit(CALLPATH_SEPARATOR, 1)[-1].strip()
        if leaf not in region_id_of:
            region_id_of[leaf] = len(region_id_of)
    for name, region_id in region_id_of.items():
        parts.append(
            f'    <region id="{region_id}" mod="" begin="-1" end="-1">\n'
            f"      <name>{escape(name)}</name>\n"
            f"    </region>\n"
        )
    # one cnode per event; parents resolved through callpath prefixes
    cnode_id_of = {event.name: i for i, event in enumerate(events)}
    children: dict[str | None, list] = {}
    for event in events:
        parent = event.parent_name
        if parent is not None and parent not in cnode_id_of:
            parent = None  # orphan path: promote to root
        children.setdefault(parent, []).append(event)

    def emit_cnode(event, indent: str) -> None:
        leaf = event.name.rsplit(CALLPATH_SEPARATOR, 1)[-1].strip()
        parts.append(
            f'{indent}<cnode id="{cnode_id_of[event.name]}" '
            f'calleeId="{region_id_of[leaf]}">\n'
        )
        for child in children.get(event.name, []):
            emit_cnode(child, indent + "  ")
        parts.append(f"{indent}</cnode>\n")

    for root in children.get(None, []):
        emit_cnode(root, "    ")
    parts.append("  </program>\n")

    # -- system dimension -----------------------------------------------------------
    parts.append("  <system>\n")
    parts.append('    <machine id="0"><name>simulated</name>\n')
    location_id_of: dict[tuple[int, int, int], int] = {}
    by_node: dict[int, list] = {}
    for thread in threads:
        by_node.setdefault(thread.node_id, []).append(thread)
    for node_id in sorted(by_node):
        parts.append(f'      <node id="{node_id}"><name>node{node_id}</name>\n')
        for thread in by_node[node_id]:
            location = len(location_id_of)
            location_id_of[thread.triple] = location
            parts.append(
                f'        <process id="{thread.context_id}">'
                f'<thread id="{thread.thread_id}">'
                f"<rank>{location}</rank></thread></process>\n"
            )
        parts.append("      </node>\n")
    parts.append("    </machine>\n")
    parts.append("  </system>\n")

    # -- severity matrix ------------------------------------------------------------
    order = sorted(location_id_of, key=location_id_of.get)  # type: ignore[arg-type]
    parts.append("  <severity>\n")
    for metric in source.metrics:
        parts.append(f'    <matrix metricId="{metric.index}">\n')
        for event in events:
            values = []
            for triple in order:
                thread = source.get_thread(*triple)
                profile = thread.function_profiles.get(event.index)
                values.append(
                    profile.get_exclusive(metric.index) if profile else 0.0
                )
            row = " ".join(f"{v:.17g}" for v in values)
            parts.append(
                f'      <row cnodeId="{cnode_id_of[event.name]}">{row}</row>\n'
            )
        parts.append("    </matrix>\n")
    parts.append(f'    <matrix metricId="{visits_id}">\n')
    for event in events:
        values = []
        for triple in order:
            thread = source.get_thread(*triple)
            profile = thread.function_profiles.get(event.index)
            values.append(profile.calls if profile else 0.0)
        row = " ".join(f"{v:g}" for v in values)
        parts.append(
            f'      <row cnodeId="{cnode_id_of[event.name]}">{row}</row>\n'
        )
    parts.append("    </matrix>\n")
    parts.append("  </severity>\n")
    parts.append("</cube>\n")
    return "".join(parts)


def parse_cube(target: str | os.PathLike) -> DataSource:
    """Parse a CUBE 3.x document back into the common model.

    CUBE stores exclusive severities, so inclusive values are
    reconstructed bottom-up over the cnode tree (inclusive = own
    exclusive + Σ children inclusive).
    """
    try:
        tree = ET.parse(target)
    except ET.ParseError as exc:
        raise ProfileParseError(f"malformed XML: {exc}", target) from None
    root = tree.getroot()
    if root.tag != "cube":
        raise ProfileParseError(f"expected <cube> root, found <{root.tag}>", target)
    source = DataSource()

    metric_by_id: dict[int, int] = {}  # cube metric id -> model metric index
    visits_id = None
    metrics_el = root.find("metrics")
    if metrics_el is None:
        raise ProfileParseError("missing <metrics>", target)
    for metric_el in metrics_el.findall("metric"):
        cube_id = int(metric_el.get("id", "0"))
        name_el = metric_el.find("uniq_name")
        name = name_el.text if name_el is not None and name_el.text else f"m{cube_id}"
        if name == VISITS_METRIC:
            visits_id = cube_id
            continue
        metric = source.add_metric(name)
        metric_by_id[cube_id] = metric.index

    program = root.find("program")
    if program is None:
        raise ProfileParseError("missing <program>", target)
    region_name: dict[int, str] = {}
    for region_el in program.findall("region"):
        name_el = region_el.find("name")
        region_name[int(region_el.get("id", "0"))] = (
            name_el.text if name_el is not None and name_el.text else "?"
        )

    # walk cnode tree depth-first to rebuild callpath names + child map
    cnode_path: dict[int, str] = {}
    cnode_children: dict[int, list[int]] = {}

    def walk_cnode(element: ET.Element, prefix: str | None) -> None:
        cnode_id = int(element.get("id", "0"))
        callee = int(element.get("calleeId", "0"))
        leaf = region_name.get(callee, "?")
        path = leaf if prefix is None else f"{prefix}{CALLPATH_SEPARATOR}{leaf}"
        cnode_path[cnode_id] = path
        kids = []
        for child in element.findall("cnode"):
            kids.append(int(child.get("id", "0")))
            walk_cnode(child, path)
        cnode_children[cnode_id] = kids

    for cnode_el in program.findall("cnode"):
        walk_cnode(cnode_el, None)

    system = root.find("system")
    if system is None:
        raise ProfileParseError("missing <system>", target)
    locations: list[tuple[int, int, int]] = []
    machine = system.find("machine")
    if machine is not None:
        for node_el in machine.findall("node"):
            node_id = int(node_el.get("id", "0"))
            for process_el in node_el.findall("process"):
                context = int(process_el.get("id", "0"))
                for thread_el in process_el.findall("thread"):
                    locations.append(
                        (node_id, context, int(thread_el.get("id", "0")))
                    )
    for triple in locations:
        source.add_thread(*triple)

    for cnode_id, path in cnode_path.items():
        source.add_interval_event(path)

    severity = root.find("severity")
    exclusive: dict[tuple[int, int], list[float]] = {}
    visits: dict[int, list[float]] = {}
    if severity is not None:
        for matrix_el in severity.findall("matrix"):
            cube_metric = int(matrix_el.get("metricId", "0"))
            for row_el in matrix_el.findall("row"):
                cnode_id = int(row_el.get("cnodeId", "0"))
                values = [float(v) for v in (row_el.text or "").split()]
                if cube_metric == visits_id:
                    visits[cnode_id] = values
                elif cube_metric in metric_by_id:
                    exclusive[(metric_by_id[cube_metric], cnode_id)] = values

    # inclusive = exclusive + sum of children's inclusive, per location
    inclusive_cache: dict[tuple[int, int], list[float]] = {}

    def inclusive_of(metric_index: int, cnode_id: int) -> list[float]:
        key = (metric_index, cnode_id)
        if key in inclusive_cache:
            return inclusive_cache[key]
        own = list(exclusive.get(key, [0.0] * len(locations)))
        for child in cnode_children.get(cnode_id, []):
            child_inc = inclusive_of(metric_index, child)
            own = [a + b for a, b in zip(own, child_inc)]
        inclusive_cache[key] = own
        return own

    for cnode_id, path in cnode_path.items():
        event = source.get_interval_event(path)
        for metric_index in metric_by_id.values():
            exc = exclusive.get((metric_index, cnode_id), [0.0] * len(locations))
            inc = inclusive_of(metric_index, cnode_id)
            for location, triple in enumerate(locations):
                thread = source.get_thread(*triple)
                profile = thread.get_or_create_function_profile(event)
                profile.set_exclusive(metric_index, exc[location])
                profile.set_inclusive(metric_index, inc[location])
        counts = visits.get(cnode_id)
        if counts:
            for location, triple in enumerate(locations):
                thread = source.get_thread(*triple)
                profile = thread.get_or_create_function_profile(event)
                profile.calls = counts[location]
    source.generate_statistics()
    return source
