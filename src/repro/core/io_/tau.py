"""Importer for TAU's native profile format (``profile.N.C.T`` files).

Handles both single-metric directories and TAU's ``MULTI__<METRIC>``
multi-counter layout, interval events with groups, user events, and the
``<metadata>`` attribute block TAU embeds in the header comment.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

from ...core.model import DataSource
from .base import ProfileParseError, discover_files, natural_sort_key

_PROFILE_RE = re.compile(r"^profile\.(\d+)\.(\d+)\.(\d+)$")
_HEADER_RE = re.compile(r"^(\d+)\s+templated_functions(?:_MULTI_(\S+))?")
_FUNC_RE = re.compile(
    r'^"(?P<name>(?:[^"\\]|\\.)*)"\s+'
    r"(?P<calls>[-\d.eE+]+)\s+(?P<subrs>[-\d.eE+]+)\s+"
    r"(?P<excl>[-\d.eE+]+)\s+(?P<incl>[-\d.eE+]+)\s+(?P<profcalls>[-\d.eE+]+)"
    r'(?:\s+GROUP="(?P<group>[^"]*)")?'
)
_UE_RE = re.compile(
    r'^"(?P<name>(?:[^"\\]|\\.)*)"\s+'
    r"(?P<count>[-\d.eE+]+)\s+(?P<max>[-\d.eE+]+)\s+(?P<min>[-\d.eE+]+)\s+"
    r"(?P<mean>[-\d.eE+]+)\s+(?P<sumsqr>[-\d.eE+]+)"
)
_METADATA_RE = re.compile(
    r"<attribute><name>(.*?)</name><value>(.*?)</value></attribute>",
    re.DOTALL,
)


def parse_tau_profiles(target: str | os.PathLike) -> DataSource:
    """Parse a TAU profile directory (or a single profile file)."""
    root = Path(target)
    source = DataSource()
    if root.is_file():
        metric_name = _peek_metric_name(root) or "TIME"
        source.add_metric(metric_name)
        _parse_file(root, source, 0)
        source.generate_statistics()
        return source

    multi_dirs = sorted(
        d for d in root.iterdir() if d.is_dir() and d.name.startswith("MULTI__")
    )
    if multi_dirs:
        # Metric order follows directory sort order, as in real PerfDMF.
        for metric_index, metric_dir in enumerate(multi_dirs):
            source.add_metric(metric_dir.name[len("MULTI__"):])
            files = sorted(
                discover_files(metric_dir, prefix="profile."), key=natural_sort_key
            )
            if not files:
                raise ProfileParseError("empty MULTI__ directory", metric_dir)
            for path in files:
                _parse_file(path, source, metric_index)
    else:
        files = sorted(discover_files(root, prefix="profile."), key=natural_sort_key)
        if not files:
            raise ProfileParseError("no profile.N.C.T files found", root)
        metric_name = _peek_metric_name(files[0]) or "TIME"
        source.add_metric(metric_name)
        for path in files:
            _parse_file(path, source, 0)
    source.generate_statistics()
    return source


def _peek_metric_name(path: Path) -> str | None:
    with open(path, encoding="utf-8", errors="replace") as fh:
        header = fh.readline()
    match = _HEADER_RE.match(header)
    if match and match.group(2):
        return match.group(2)
    return None


def _triple_from_name(path: Path) -> tuple[int, int, int]:
    match = _PROFILE_RE.match(path.name)
    if not match:
        raise ProfileParseError("not a profile.N.C.T file name", path)
    return tuple(int(g) for g in match.groups())  # type: ignore[return-value]


def _parse_file(path: Path, source: DataSource, metric_index: int) -> None:
    node, context, thread_id = _triple_from_name(path)
    thread = source.add_thread(node, context, thread_id)
    with open(path, encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ProfileParseError("empty profile file", path)
    header = _HEADER_RE.match(lines[0])
    if not header:
        raise ProfileParseError("missing templated_functions header", path, 1)
    n_functions = int(header.group(1))

    i = 1
    # header comment (may carry <metadata>)
    if i < len(lines) and lines[i].lstrip().startswith("#"):
        for key, value in _METADATA_RE.findall(lines[i]):
            source.metadata.setdefault(_xml_unescape(key), _xml_unescape(value))
        i += 1

    parsed = 0
    while i < len(lines) and parsed < n_functions:
        line = lines[i]
        i += 1
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        match = _FUNC_RE.match(line)
        if not match:
            raise ProfileParseError(f"bad function line: {line[:60]!r}", path, i)
        name = match.group("name").strip()
        group = match.group("group") or "TAU_DEFAULT"
        event = source.add_interval_event(name, group)
        profile = thread.get_or_create_function_profile(event)
        profile.set_exclusive(metric_index, float(match.group("excl")))
        profile.set_inclusive(metric_index, float(match.group("incl")))
        if metric_index == 0:
            profile.calls = float(match.group("calls"))
            profile.subroutines = float(match.group("subrs"))
        parsed += 1
    if parsed != n_functions:
        raise ProfileParseError(
            f"expected {n_functions} functions, parsed {parsed}", path
        )

    # skip aggregates block
    while i < len(lines) and "aggregates" not in lines[i]:
        i += 1
    if i < len(lines):
        i += 1
    # user events (present once; identical across MULTI__ dirs, so only
    # ingest them for metric 0)
    if i < len(lines):
        match = re.match(r"^(\d+)\s+userevents", lines[i])
        if match:
            n_userevents = int(match.group(1))
            i += 1
            parsed_ue = 0
            while i < len(lines) and parsed_ue < n_userevents:
                line = lines[i]
                i += 1
                if not line.strip() or line.lstrip().startswith("#"):
                    continue
                ue = _UE_RE.match(line)
                if not ue:
                    raise ProfileParseError(
                        f"bad userevent line: {line[:60]!r}", path, i
                    )
                if metric_index == 0:
                    event = source.add_atomic_event(ue.group("name").strip())
                    up = thread.get_or_create_user_event_profile(event)
                    up.set_summary(
                        count=float(ue.group("count")),
                        max_value=float(ue.group("max")),
                        min_value=float(ue.group("min")),
                        mean_value=float(ue.group("mean")),
                        sumsqr=float(ue.group("sumsqr")),
                    )
                parsed_ue += 1


def _xml_unescape(text: str) -> str:
    return text.replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
