"""The PerfDMF relational schema (paper §3.2), rendered per dialect.

Tables::

    APPLICATION ── EXPERIMENT ── TRIAL ─┬─ METRIC
                                        ├─ INTERVAL_EVENT ─┬─ INTERVAL_LOCATION_PROFILE
                                        │                  ├─ INTERVAL_TOTAL_SUMMARY
                                        │                  └─ INTERVAL_MEAN_SUMMARY
                                        └─ ATOMIC_EVENT ──── ATOMIC_LOCATION_PROFILE

plus the ANALYSIS_RESULT/ANALYSIS_SETTINGS extension PerfExplorer added
(paper §5.3: *"the PerfExplorer developers were able to extend the
PerfDMF database API to support saving and retrieving analysis
results"*).

The APPLICATION / EXPERIMENT / TRIAL tables are *flexible*: the id,
name and foreign-key columns are required, and any other metadata
column may be added or removed without code changes — entity objects
discover columns through ``get_metadata`` at runtime.
"""

from __future__ import annotations

from ...db.dialects import Dialect, get_dialect

#: Columns that must exist; everything else is optional metadata.
REQUIRED_COLUMNS = {
    "application": ("id", "name"),
    "experiment": ("id", "name", "application"),
    "trial": ("id", "name", "experiment"),
}

#: Default metadata columns — the "such as" lists from paper §3.2.
#: Deployments may add/remove these freely (tested in the schema tests).
DEFAULT_METADATA = {
    "application": (
        ("version", "STRING"),
        ("description", "STRING"),
        ("language", "STRING"),
    ),
    "experiment": (
        ("system_info", "STRING"),
        ("compiler_info", "STRING"),
        ("configuration_info", "STRING"),
    ),
    "trial": (
        ("date", "TIMESTAMP"),
        ("problem_definition", "STRING"),
        ("node_count", "INT"),
        ("contexts_per_node", "INT"),
        ("max_threads_per_context", "INT"),
        # Free-form trial metadata captured by the measurement system,
        # serialised as JSON (PerfDMF's XML_METADATA column).
        ("xml_metadata", "TEXT"),
    ),
}

#: The measurement columns of INTERVAL_LOCATION_PROFILE and the two
#: summary tables (identical shape, paper §3.2).
PROFILE_VALUE_COLUMNS = (
    ("inclusive", "DOUBLE"),
    ("inclusive_percentage", "DOUBLE"),
    ("exclusive", "DOUBLE"),
    ("exclusive_percentage", "DOUBLE"),
    ("inclusive_per_call", "DOUBLE"),
    ("num_calls", "DOUBLE"),
    ("num_subrs", "DOUBLE"),
)


def _metadata_columns(table: str) -> str:
    parts = []
    for name, abstract in DEFAULT_METADATA[table]:
        parts.append(f"    {name} {{{abstract}}},\n")
    return "".join(parts)


def _value_columns() -> str:
    return "".join(f"    {name} {{{t}}},\n" for name, t in PROFILE_VALUE_COLUMNS)


#: Abstract DDL with ``{TYPE}`` placeholders and ``{SERIAL}`` markers.
_ABSTRACT_DDL = f"""
CREATE TABLE application (
    id {{SERIAL}},
    name {{STRING}} NOT NULL,
{_metadata_columns('application')}    UNIQUE (name)
);

CREATE TABLE experiment (
    id {{SERIAL}},
    name {{STRING}} NOT NULL,
    application {{INT}} NOT NULL REFERENCES application(id),
{_metadata_columns('experiment')}    UNIQUE (application, name)
);

CREATE TABLE trial (
    id {{SERIAL}},
    name {{STRING}} NOT NULL,
    experiment {{INT}} NOT NULL REFERENCES experiment(id),
{_metadata_columns('trial')}    UNIQUE (experiment, name)
);

CREATE TABLE metric (
    id {{SERIAL}},
    trial {{INT}} NOT NULL REFERENCES trial(id),
    name {{STRING}} NOT NULL,
    derived {{INT}} NOT NULL DEFAULT 0
);

CREATE TABLE interval_event (
    id {{SERIAL}},
    trial {{INT}} NOT NULL REFERENCES trial(id),
    name {{TEXT}} NOT NULL,
    group_name {{STRING}}
);

CREATE TABLE interval_location_profile (
    interval_event {{INT}} NOT NULL REFERENCES interval_event(id),
    node {{INT}} NOT NULL,
    context {{INT}} NOT NULL,
    thread {{INT}} NOT NULL,
    metric {{INT}} NOT NULL REFERENCES metric(id),
{_value_columns()}    PRIMARY KEY (interval_event, node, context, thread, metric)
);

CREATE TABLE interval_total_summary (
    interval_event {{INT}} NOT NULL REFERENCES interval_event(id),
    metric {{INT}} NOT NULL REFERENCES metric(id),
{_value_columns()}    PRIMARY KEY (interval_event, metric)
);

CREATE TABLE interval_mean_summary (
    interval_event {{INT}} NOT NULL REFERENCES interval_event(id),
    metric {{INT}} NOT NULL REFERENCES metric(id),
{_value_columns()}    PRIMARY KEY (interval_event, metric)
);

CREATE TABLE atomic_event (
    id {{SERIAL}},
    trial {{INT}} NOT NULL REFERENCES trial(id),
    name {{TEXT}} NOT NULL,
    group_name {{STRING}}
);

CREATE TABLE atomic_location_profile (
    atomic_event {{INT}} NOT NULL REFERENCES atomic_event(id),
    node {{INT}} NOT NULL,
    context {{INT}} NOT NULL,
    thread {{INT}} NOT NULL,
    sample_count {{INT}},
    maximum_value {{DOUBLE}},
    minimum_value {{DOUBLE}},
    mean_value {{DOUBLE}},
    standard_deviation {{DOUBLE}},
    PRIMARY KEY (atomic_event, node, context, thread)
);

CREATE TABLE analysis_settings (
    id {{SERIAL}},
    trial {{INT}} REFERENCES trial(id),
    name {{STRING}} NOT NULL,
    method {{STRING}},
    parameters {{TEXT}}
);

CREATE TABLE analysis_result (
    id {{SERIAL}},
    settings {{INT}} NOT NULL REFERENCES analysis_settings(id),
    result_type {{STRING}} NOT NULL,
    item_key {{STRING}},
    value {{TEXT}}
);
"""

#: ``(statement, method)`` pairs; ``method`` is "hash" for pure-equality
#: lookup columns or "btree" for columns serving range predicates and
#: ORDER BY ... LIMIT (engines without USING support ignore the method).
_INDEXES = (
    ("CREATE INDEX idx_experiment_app ON experiment (application)", "hash"),
    ("CREATE INDEX idx_trial_experiment ON trial (experiment)", "btree"),
    ("CREATE INDEX idx_metric_trial ON metric (trial)", "hash"),
    ("CREATE INDEX idx_interval_event_trial ON interval_event (trial)", "hash"),
    (
        "CREATE INDEX idx_ilp_event_metric "
        "ON interval_location_profile (interval_event, metric)",
        "btree",
    ),
    ("CREATE INDEX idx_ilp_metric ON interval_location_profile (metric)", "hash"),
    ("CREATE INDEX idx_ilp_node ON interval_location_profile (node)", "btree"),
    (
        "CREATE INDEX idx_ilp_exclusive "
        "ON interval_location_profile (exclusive)",
        "btree",
    ),
    (
        "CREATE INDEX idx_its_exclusive "
        "ON interval_total_summary (exclusive)",
        "btree",
    ),
    (
        "CREATE INDEX idx_ims_exclusive "
        "ON interval_mean_summary (exclusive)",
        "btree",
    ),
    (
        "CREATE INDEX idx_ims_inclusive "
        "ON interval_mean_summary (inclusive)",
        "btree",
    ),
    ("CREATE INDEX idx_atomic_event_trial ON atomic_event (trial)", "hash"),
    ("CREATE INDEX idx_alp_event ON atomic_location_profile (atomic_event)", "hash"),
    ("CREATE INDEX idx_result_settings ON analysis_result (settings)", "hash"),
)

TABLE_NAMES = (
    "application", "experiment", "trial", "metric",
    "interval_event", "interval_location_profile",
    "interval_total_summary", "interval_mean_summary",
    "atomic_event", "atomic_location_profile",
    "analysis_settings", "analysis_result",
)


def render_ddl(dialect: Dialect | str, with_indexes: bool = True) -> str:
    """Render the full schema DDL for ``dialect``."""
    if isinstance(dialect, str):
        dialect = get_dialect(dialect)
    text = _ABSTRACT_DDL.format(
        SERIAL=dialect.serial_column,
        INT=dialect.type_for("INT"),
        DOUBLE=dialect.type_for("DOUBLE"),
        STRING=dialect.type_for("STRING"),
        TEXT=dialect.type_for("TEXT"),
        TIMESTAMP=dialect.type_for("TIMESTAMP"),
    )
    statements = [text]
    if with_indexes:
        for stmt, method in _INDEXES:
            if dialect.supports_index_method and method != "hash":
                stmt = f"{stmt} USING {method.upper()}"
            statements.append(stmt + ";")
    return "\n".join(statements)


def ddl_statements(dialect: Dialect | str, with_indexes: bool = True) -> list[str]:
    """The schema as individual statements (for engines without scripts)."""
    rendered = render_ddl(dialect, with_indexes)
    return [s.strip() for s in rendered.split(";") if s.strip()]
