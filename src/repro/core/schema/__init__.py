"""The PerfDMF relational schema and its manager (paper §3.2)."""

from .ddl import (
    DEFAULT_METADATA, PROFILE_VALUE_COLUMNS, REQUIRED_COLUMNS, TABLE_NAMES,
    ddl_statements, render_ddl,
)
from .manager import SchemaError, SchemaManager

__all__ = [
    "render_ddl", "ddl_statements", "TABLE_NAMES", "REQUIRED_COLUMNS",
    "DEFAULT_METADATA", "PROFILE_VALUE_COLUMNS",
    "SchemaManager", "SchemaError",
]
