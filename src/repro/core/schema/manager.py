"""Schema installation and the flexible-schema management operations."""

from __future__ import annotations

from ...db.api import DBConnection
from .ddl import DEFAULT_METADATA, REQUIRED_COLUMNS, TABLE_NAMES, ddl_statements

#: abstract → concrete types accepted by add_metadata_column
_ABSTRACT_TYPES = ("INT", "DOUBLE", "STRING", "TEXT", "TIMESTAMP")


class SchemaError(RuntimeError):
    """Raised for schema installation/validation problems."""


class SchemaManager:
    """Installs and maintains the PerfDMF schema on one connection."""

    def __init__(self, connection: DBConnection):
        self.connection = connection

    # -- installation -----------------------------------------------------------

    def is_installed(self) -> bool:
        existing = {t.lower() for t in self.connection.table_names()}
        return all(t in existing for t in TABLE_NAMES)

    #: Hot tables (paper §4: the schema's volume lives here) that get
    #: MiniSQL's columnar storage at install time.
    COLUMNAR_TABLES = ("interval_location_profile", "metric", "interval_event")

    def install(self) -> None:
        """Create all schema tables and indexes (idempotent)."""
        if self.is_installed():
            return
        for statement in ddl_statements(self.connection.dialect):
            self.connection.execute(statement)
        self.connection.commit()
        if self.connection.dialect.name == "minisql":
            # Freshly created, so the conversion copies zero rows.
            for table in self.COLUMNAR_TABLES:
                self.connection.execute(f"PRAGMA columnar({table} on)")

    def verify(self) -> list[str]:
        """Check required columns; returns a list of problems."""
        problems: list[str] = []
        existing = {t.lower() for t in self.connection.table_names()}
        for table in TABLE_NAMES:
            if table not in existing:
                problems.append(f"missing table {table}")
        for table, required in REQUIRED_COLUMNS.items():
            if table not in existing:
                continue
            columns = {c.lower() for c in self.connection.column_names(table)}
            for column in required:
                if column not in columns:
                    problems.append(f"missing required column {table}.{column}")
        return problems

    # -- flexible schema (paper §3.2) -----------------------------------------------

    def add_metadata_column(
        self, table: str, column: str, abstract_type: str = "STRING"
    ) -> None:
        """Add a metadata column to APPLICATION/EXPERIMENT/TRIAL.

        *"The schema is designed such that if capturing such data as
        compiler names and versions, operating system attributes, etc. is
        important for analysis, then those columns can be added to the
        database"* — no code change needed; entity objects pick the new
        column up automatically via ``get_metadata``.
        """
        table = table.lower()
        if table not in REQUIRED_COLUMNS:
            raise SchemaError(
                f"metadata columns may only be added to "
                f"{sorted(REQUIRED_COLUMNS)}, not {table!r}"
            )
        abstract_type = abstract_type.upper()
        if abstract_type not in _ABSTRACT_TYPES:
            raise SchemaError(
                f"unknown abstract type {abstract_type!r}; "
                f"use one of {_ABSTRACT_TYPES}"
            )
        if not _safe_identifier(column):
            raise SchemaError(f"invalid column name {column!r}")
        concrete = self.connection.dialect.type_for(abstract_type)
        self.connection.execute(f"ALTER TABLE {table} ADD COLUMN {column} {concrete}")
        self.connection.commit()

    def metadata_columns(self, table: str) -> list[str]:
        """The table's non-required columns, discovered at runtime."""
        table = table.lower()
        if table not in REQUIRED_COLUMNS:
            raise SchemaError(f"not a flexible table: {table!r}")
        required = set(REQUIRED_COLUMNS[table])
        return [
            c.name
            for c in self.connection.get_metadata(table)
            if c.name.lower() not in required
        ]


def _safe_identifier(name: str) -> bool:
    return bool(name) and name[0].isalpha() and all(
        c.isalnum() or c == "_" for c in name
    )
