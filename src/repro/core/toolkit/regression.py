"""Performance-regression detection over a trial history.

Paper §7: the PerfDMF infrastructure is aimed at *"automated performance
regression analysis and diagnosis"* and *"efficiently tracking the
performance history of a single application code."*  This module
implements that future-work feature: given a chronological series of
trials of the same experiment, flag events whose cost moved
significantly against their own history.

Detection rule: an event regresses at trial *i* when its mean exclusive
value exceeds ``baseline_mean + threshold_sigmas × baseline_std`` where
the baseline is the preceding window of trials, and the relative change
also exceeds ``min_relative`` (guards against flagging noise on
microsecond-scale events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..model import DataSource
from .stats import event_statistics


@dataclass(frozen=True)
class Regression:
    """One detected regression."""

    event: str
    trial_index: int
    trial_label: str
    baseline_mean: float
    observed_mean: float

    @property
    def factor(self) -> float:
        return (
            self.observed_mean / self.baseline_mean
            if self.baseline_mean > 0
            else float("inf")
        )


def detect_regressions(
    history: Sequence[tuple[str, DataSource]],
    metric: int = 0,
    window: int = 3,
    threshold_sigmas: float = 3.0,
    min_relative: float = 0.15,
) -> list[Regression]:
    """Scan a chronological (label, trial) history for regressions."""
    if len(history) < 2:
        return []
    events: list[str] = []
    seen: set[str] = set()
    for _label, source in history:
        for name in source.interval_events:
            if name not in seen:
                seen.add(name)
                events.append(name)

    # per-event mean series
    series: dict[str, list[float]] = {name: [] for name in events}
    for _label, source in history:
        for name in events:
            if name in source.interval_events:
                series[name].append(event_statistics(source, name, metric).mean)
            else:
                series[name].append(np.nan)

    regressions: list[Regression] = []
    for name in events:
        values = np.asarray(series[name])
        for i in range(1, len(values)):
            if np.isnan(values[i]):
                continue
            start = max(0, i - window)
            baseline = values[start:i]
            baseline = baseline[~np.isnan(baseline)]
            if len(baseline) == 0:
                continue
            mean = float(baseline.mean())
            std = float(baseline.std(ddof=1)) if len(baseline) > 1 else 0.0
            # Guard floor: with a tiny window the std underestimates
            # run-to-run noise, so require a minimum relative change too.
            if mean <= 0:
                continue
            limit = mean + threshold_sigmas * std
            if values[i] > limit and (values[i] - mean) / mean >= min_relative:
                regressions.append(
                    Regression(
                        event=name,
                        trial_index=i,
                        trial_label=history[i][0],
                        baseline_mean=mean,
                        observed_mean=float(values[i]),
                    )
                )
    return regressions


def regression_report(regressions: Sequence[Regression]) -> str:
    if not regressions:
        return "No regressions detected."
    lines = [
        "Detected regressions:",
        "%-32s %-12s %14s %14s %8s"
        % ("event", "trial", "baseline", "observed", "factor"),
    ]
    for r in sorted(regressions, key=lambda r: r.factor, reverse=True):
        lines.append(
            "%-32s %-12s %14.2f %14.2f %7.2fx"
            % (r.event[:32], r.trial_label[:12], r.baseline_mean,
               r.observed_mean, r.factor)
        )
    return "\n".join(lines)
