"""Descriptive statistics over trials — toolkit base routines.

The profile analysis toolkit is *"an extensible suite of common base
analysis routines that can be reused across performance analysis
programs"* (paper §3.1).  These functions consume either model
representation and return plain numpy/dict results so analysis programs
(ParaProf displays, the speedup analyzer, PerfExplorer) stay free of
data-management code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..model import ColumnarTrial, DataSource


@dataclass(frozen=True)
class EventStatistics:
    """min/mean/max/stddev of one event's values across threads."""

    event: str
    n_threads: int
    minimum: float
    mean: float
    maximum: float
    stddev: float
    total: float

    @property
    def imbalance(self) -> float:
        """max/mean ratio — 1.0 means perfectly balanced."""
        return self.maximum / self.mean if self.mean > 0 else 1.0


def event_values(
    source: DataSource, event_name: str, metric: int = 0, inclusive: bool = False
) -> np.ndarray:
    """Per-thread values of one event (0.0 where the event never ran)."""
    event = source.get_interval_event(event_name)
    if event is None:
        raise KeyError(f"no such interval event: {event_name}")
    values = np.zeros(source.num_threads)
    for i, thread in enumerate(source.all_threads()):
        profile = thread.function_profiles.get(event.index)
        if profile is not None:
            values[i] = (
                profile.get_inclusive(metric)
                if inclusive
                else profile.get_exclusive(metric)
            )
    return values


def event_statistics(
    source: DataSource, event_name: str, metric: int = 0, inclusive: bool = False
) -> EventStatistics:
    values = event_values(source, event_name, metric, inclusive)
    return EventStatistics(
        event=event_name,
        n_threads=len(values),
        minimum=float(values.min()) if len(values) else 0.0,
        mean=float(values.mean()) if len(values) else 0.0,
        maximum=float(values.max()) if len(values) else 0.0,
        stddev=float(values.std(ddof=1)) if len(values) > 1 else 0.0,
        total=float(values.sum()),
    )


def all_event_statistics(
    source: DataSource, metric: int = 0, inclusive: bool = False
) -> list[EventStatistics]:
    return [
        event_statistics(source, name, metric, inclusive)
        for name in source.interval_events
    ]


def top_events(
    source: DataSource,
    n: int = 10,
    metric: int = 0,
    by: str = "mean_exclusive",
) -> list[EventStatistics]:
    """The n most expensive events, ranked by ``by``.

    ``by`` ∈ {'mean_exclusive', 'max_exclusive', 'total_exclusive',
    'mean_inclusive'}.
    """
    inclusive = by.endswith("inclusive")
    stats = all_event_statistics(source, metric, inclusive)
    key = {
        "mean_exclusive": lambda s: s.mean,
        "mean_inclusive": lambda s: s.mean,
        "max_exclusive": lambda s: s.maximum,
        "total_exclusive": lambda s: s.total,
    }.get(by)
    if key is None:
        raise ValueError(f"unknown ranking {by!r}")
    return sorted(stats, key=key, reverse=True)[:n]


def thread_metric_matrix(
    source: DataSource | ColumnarTrial, metric: int = 0, inclusive: bool = False
) -> tuple[np.ndarray, list[str]]:
    """(threads × events) value matrix plus event names.

    The input shape for PerfExplorer's clustering (§5.3).
    """
    if isinstance(source, ColumnarTrial):
        matrix = (
            source.inclusive[metric] if inclusive else source.exclusive[metric]
        )
        return matrix.copy(), list(source.event_names)
    names = list(source.interval_events)
    matrix = np.zeros((source.num_threads, len(names)))
    index_of = {
        event.index: j for j, event in enumerate(source.interval_events.values())
    }
    for i, thread in enumerate(source.all_threads()):
        for event_index, profile in thread.function_profiles.items():
            j = index_of[event_index]
            matrix[i, j] = (
                profile.get_inclusive(metric)
                if inclusive
                else profile.get_exclusive(metric)
            )
    return matrix, names


def group_breakdown(source: DataSource, metric: int = 0) -> dict[str, float]:
    """Total exclusive value per event group (compute/MPI/IO/...)."""
    totals: dict[str, float] = {}
    for thread in source.all_threads():
        for profile in thread.function_profiles.values():
            for g in profile.event.groups:
                totals[g] = totals.get(g, 0.0) + profile.get_exclusive(metric)
    return totals


def load_imbalance(source: DataSource, metric: int = 0) -> float:
    """Trial-level imbalance: max/mean of per-thread run duration."""
    durations = np.array(
        [t.max_inclusive(metric) for t in source.all_threads()]
    )
    if len(durations) == 0 or durations.mean() == 0:
        return 1.0
    return float(durations.max() / durations.mean())
