"""Scaling-model fitting and prediction (the Prophesy integration, §6).

Paper §6: *"PerfDMF follows in the spirit of Prophesy ... This could
allow Prophesy's modeling algorithms to be captured as part of a broader
analysis library.  In this way, several performance tools could benefit
from the advanced modeling analysis Prophesy provides."*

This module captures the core Prophesy capability: fit analytic scaling
models to a processor sweep and predict performance at unmeasured
scales.  Three model families cover the routine behaviours the synthetic
applications (and real codes) exhibit:

* **Amdahl** — ``t(P) = serial + parallel / P`` (strong scaling with a
  serial fraction);
* **power law** — ``t(P) = a · P^b`` (catches both sublinear compute,
  b≈−1, and growing communication, b>0);
* **logP** — ``t(P) = a + b·log2(P)`` (tree-structured collectives).

Fits are least-squares (scipy); model selection by adjusted R² with a
complexity tie-break.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np
from scipy import optimize

from ..model import DataSource
from .stats import event_statistics


@dataclass(frozen=True)
class ScalingModel:
    """One fitted model: ``predict(P)`` estimates the per-thread value."""

    name: str
    parameters: tuple[float, ...]
    r_squared: float
    _predict: Callable[[float, tuple[float, ...]], float]

    def predict(self, processors: float) -> float:
        return self._predict(processors, self.parameters)

    def describe(self) -> str:
        params = ", ".join(f"{p:.4g}" for p in self.parameters)
        return f"{self.name}({params}) R²={self.r_squared:.4f}"

    @property
    def serial_fraction(self) -> Optional[float]:
        """For Amdahl fits: the serial fraction of total t(1)."""
        if self.name != "amdahl":
            return None
        serial, parallel = self.parameters
        total = serial + parallel
        return serial / total if total > 0 else None


def _amdahl(p, params):
    serial, parallel = params
    return serial + parallel / p


def _power(p, params):
    a, b = params
    return a * p**b


def _logp(p, params):
    a, b = params
    return a + b * math.log2(max(p, 1.0))


def _fit(
    name: str,
    fn,
    p0: Sequence[float],
    processors: np.ndarray,
    values: np.ndarray,
    bounds=(-np.inf, np.inf),
) -> Optional[ScalingModel]:
    def vector_fn(p, *params):
        return np.array([fn(pi, params) for pi in p])

    try:
        # sigma=values -> minimise *relative* residuals, so the large-P
        # points (smallest absolute values) carry equal weight; without
        # this, extrapolation beyond the sweep is systematically biased
        # toward the P=1 behaviour.
        params, _cov = optimize.curve_fit(
            vector_fn, processors, values, p0=p0, bounds=bounds,
            sigma=values, absolute_sigma=False, maxfev=10000,
        )
    except (RuntimeError, ValueError):
        return None
    predictions = vector_fn(processors, *params)
    residual = float(((values - predictions) ** 2).sum())
    total = float(((values - values.mean()) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return ScalingModel(
        name=name,
        parameters=tuple(float(x) for x in params),
        r_squared=r_squared,
        _predict=fn,
    )


def fit_scaling_models(
    processors: Sequence[int], values: Sequence[float]
) -> list[ScalingModel]:
    """Fit every model family; returns successful fits, best first."""
    p = np.asarray(processors, dtype=float)
    v = np.asarray(values, dtype=float)
    if len(p) < 3:
        raise ValueError("need >= 3 sweep points to fit scaling models")
    if (v <= 0).any():
        raise ValueError("values must be positive")
    t1 = float(v[0])
    candidates = [
        _fit("amdahl", _amdahl, [t1 * 0.1, t1 * 0.9], p, v,
             bounds=([0.0, 0.0], [np.inf, np.inf])),
        _fit("power", _power, [t1, -1.0], p, v),
        _fit("logp", _logp, [t1, 0.0], p, v),
    ]
    models = [m for m in candidates if m is not None]
    models.sort(key=lambda m: m.r_squared, reverse=True)
    return models


def best_model(
    processors: Sequence[int], values: Sequence[float], min_r2: float = 0.0
) -> ScalingModel:
    models = fit_scaling_models(processors, values)
    if not models or models[0].r_squared < min_r2:
        raise ValueError(
            f"no model reached R² >= {min_r2}; best was "
            f"{models[0].describe() if models else 'none'}"
        )
    return models[0]


@dataclass(frozen=True)
class RoutinePrediction:
    event: str
    model: ScalingModel
    predicted: float


def predict_routines(
    trials: Sequence[tuple[int, DataSource]],
    target_processors: int,
    metric: int = 0,
    min_r2: float = 0.9,
) -> list[RoutinePrediction]:
    """Per-routine predictions at an unmeasured processor count.

    Fits each routine's mean-inclusive sweep; routines whose best fit
    fails ``min_r2`` are skipped (Prophesy reported fit quality the same
    way).  Returns predictions sorted by predicted cost, descending —
    the expected bottleneck list at the target scale.
    """
    ordered = sorted(trials, key=lambda t: t[0])
    processors = [p for p, _s in ordered]
    baseline = ordered[0][1]
    out: list[RoutinePrediction] = []
    for name in baseline.interval_events:
        values = []
        for _p, source in ordered:
            if name not in source.interval_events:
                break
            values.append(
                event_statistics(source, name, metric, inclusive=True).mean
            )
        if len(values) != len(ordered) or min(values) <= 0:
            continue
        try:
            model = best_model(processors, values, min_r2=min_r2)
        except ValueError:
            continue
        out.append(
            RoutinePrediction(
                event=name,
                model=model,
                predicted=model.predict(target_processors),
            )
        )
    out.sort(key=lambda r: r.predicted, reverse=True)
    return out


def prediction_report(
    predictions: Sequence[RoutinePrediction], target_processors: int
) -> str:
    lines = [
        f"Predicted per-routine mean inclusive time at P={target_processors}",
        "%-28s %14s  %s" % ("routine", "predicted", "model"),
    ]
    for prediction in predictions:
        lines.append(
            "%-28s %14.1f  %s"
            % (
                prediction.event[:28],
                prediction.predicted,
                prediction.model.describe(),
            )
        )
    return "\n".join(lines)
