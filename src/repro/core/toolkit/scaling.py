"""Scaling-study helpers built on the speedup analyzer.

Runs an application (or accepts pre-existing trials) across a processor
sweep and produces the series the paper's §5.2 analyzer prints, plus
efficiency curves and a crossover finder (where communication overtakes
computation — the SMG2000 signature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..model import DataSource, group as groups
from .stats import group_breakdown


@dataclass(frozen=True)
class ScalingPoint:
    """Aggregate behaviour of one trial in a sweep."""

    processors: int
    mean_duration: float  #: mean per-thread run duration (usec)
    compute_fraction: float
    communication_fraction: float
    io_fraction: float


def scaling_profile(
    trials: Sequence[tuple[int, DataSource]], metric: int = 0
) -> list[ScalingPoint]:
    """Group-level breakdown across a processor sweep."""
    points = []
    for processors, source in sorted(trials, key=lambda t: t[0]):
        breakdown = group_breakdown(source, metric)
        total = sum(breakdown.values()) or 1.0
        durations = [t.max_inclusive(metric) for t in source.all_threads()]
        mean_duration = sum(durations) / len(durations) if durations else 0.0
        comm = breakdown.get(groups.COMMUNICATION, 0.0)
        io = breakdown.get(groups.IO, 0.0)
        points.append(
            ScalingPoint(
                processors=processors,
                mean_duration=mean_duration,
                compute_fraction=1.0 - (comm + io) / total,
                communication_fraction=comm / total,
                io_fraction=io / total,
            )
        )
    return points


def communication_crossover(points: Sequence[ScalingPoint]) -> Optional[int]:
    """The smallest processor count where communication ≥ computation,
    or None if it never crosses within the sweep."""
    for point in points:
        if point.communication_fraction >= point.compute_fraction:
            return point.processors
    return None


def strong_scaling_efficiency(
    trials: Sequence[tuple[int, DataSource]], metric: int = 0
) -> list[tuple[int, float]]:
    """(processors, efficiency) pairs relative to the smallest count."""
    ordered = sorted(trials, key=lambda t: t[0])
    if len(ordered) < 2:
        raise ValueError("need >= 2 trials for a scaling study")
    base_p, base_source = ordered[0]
    base_durations = [t.max_inclusive(metric) for t in base_source.all_threads()]
    base_time = sum(base_durations) / len(base_durations)
    out = []
    for p, source in ordered:
        durations = [t.max_inclusive(metric) for t in source.all_threads()]
        time = sum(durations) / len(durations)
        speedup = base_time / time if time > 0 else 0.0
        out.append((p, speedup / (p / base_p)))
    return out


def run_sweep(
    run: Callable[[int], DataSource], processor_counts: Sequence[int]
) -> list[tuple[int, DataSource]]:
    """Execute ``run(P)`` for each count; returns (P, trial) pairs."""
    return [(p, run(p)) for p in processor_counts]
