"""Multi-trial comparison routines.

The toolkit's *"rudimentary multi-trial analysis, including performance
comparisons"* (paper §4): align two trials by event name and report
per-event deltas, plus a text rendering ParaProf-style tools can show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..model import DataSource
from .stats import event_statistics


@dataclass(frozen=True)
class EventComparison:
    """One event's mean values in two trials."""

    event: str
    left_mean: float
    right_mean: float

    @property
    def delta(self) -> float:
        return self.right_mean - self.left_mean

    @property
    def ratio(self) -> float:
        """right/left; inf when the event is new, 0 when it vanished."""
        if self.left_mean == 0:
            return float("inf") if self.right_mean > 0 else 1.0
        return self.right_mean / self.left_mean

    @property
    def percent_change(self) -> float:
        if self.left_mean == 0:
            return float("inf") if self.right_mean > 0 else 0.0
        return 100.0 * self.delta / self.left_mean


def compare_trials(
    left: DataSource,
    right: DataSource,
    metric: int = 0,
    inclusive: bool = False,
) -> list[EventComparison]:
    """Per-event mean comparison of two trials (union of event sets)."""
    names = list(dict.fromkeys(list(left.interval_events) + list(right.interval_events)))
    out = []
    for name in names:
        left_mean = (
            event_statistics(left, name, metric, inclusive).mean
            if name in left.interval_events
            else 0.0
        )
        right_mean = (
            event_statistics(right, name, metric, inclusive).mean
            if name in right.interval_events
            else 0.0
        )
        out.append(EventComparison(name, left_mean, right_mean))
    return out


def biggest_changes(
    left: DataSource,
    right: DataSource,
    n: int = 10,
    metric: int = 0,
    min_value: float = 0.0,
) -> list[EventComparison]:
    """The n events with the largest absolute mean delta."""
    comparisons = [
        c
        for c in compare_trials(left, right, metric)
        if max(c.left_mean, c.right_mean) >= min_value
    ]
    return sorted(comparisons, key=lambda c: abs(c.delta), reverse=True)[:n]


def comparison_report(
    left: DataSource,
    right: DataSource,
    left_label: str = "left",
    right_label: str = "right",
    metric: int = 0,
    n: int = 20,
) -> str:
    """Text table of the biggest per-event changes."""
    rows = biggest_changes(left, right, n, metric)
    lines = [
        f"Trial comparison: {left_label} vs {right_label} (mean exclusive)",
        "%-36s %14s %14s %10s" % ("event", left_label[:14], right_label[:14], "change"),
    ]
    for c in rows:
        change = (
            f"{c.percent_change:+9.1f}%"
            if c.percent_change != float("inf")
            else "      new"
        )
        lines.append(
            "%-36s %14.2f %14.2f %10s"
            % (c.event[:36], c.left_mean, c.right_mean, change)
        )
    return "\n".join(lines)
