"""The profile analysis toolkit (paper §3.1's fourth component)."""

from .comparison import (
    EventComparison, biggest_changes, compare_trials, comparison_report,
)
from .cube_algebra import diff, mean, merge
from .modeling import (
    RoutinePrediction, ScalingModel, best_model, fit_scaling_models,
    predict_routines, prediction_report,
)
from .regression import Regression, detect_regressions, regression_report
from .scaling import (
    ScalingPoint, communication_crossover, run_sweep, scaling_profile,
    strong_scaling_efficiency,
)
from .speedup import RoutineSpeedup, SpeedupAnalyzer, SpeedupPoint
from .stats import (
    EventStatistics, all_event_statistics, event_statistics, event_values,
    group_breakdown, load_imbalance, thread_metric_matrix, top_events,
)

__all__ = [
    "EventStatistics", "event_statistics", "all_event_statistics",
    "event_values", "top_events", "thread_metric_matrix",
    "group_breakdown", "load_imbalance",
    "SpeedupAnalyzer", "SpeedupPoint", "RoutineSpeedup",
    "EventComparison", "compare_trials", "biggest_changes", "comparison_report",
    "diff", "merge", "mean",
    "Regression", "detect_regressions", "regression_report",
    "ScalingModel", "fit_scaling_models", "best_model",
    "RoutinePrediction", "predict_routines", "prediction_report",
    "ScalingPoint", "scaling_profile", "communication_crossover",
    "strong_scaling_efficiency", "run_sweep",
]
