"""Speedup analysis — the §5.2 trial browser / speedup analyzer.

*"Given performance data from experiments with varying numbers of
processors, the tool automatically calculates the minimum, mean and
maximum values for the speedup [of] every profiled routine."*

Inputs are (processor count, DataSource) pairs; speedups are computed
per routine against the smallest processor count as the baseline, using
per-thread inclusive times:

* min speedup  = base_time / max-over-threads(time)  (slowest thread)
* max speedup  = base_time / min-over-threads(time)  (fastest thread)
* mean speedup = base_time / mean-over-threads(time)

where ``base_time`` is the mean per-thread time at the baseline count.
Routines absent from a trial are skipped for that point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..model import DataSource
from .stats import event_values


@dataclass(frozen=True)
class SpeedupPoint:
    """Speedup of one routine at one processor count."""

    processors: int
    minimum: float
    mean: float
    maximum: float

    @property
    def efficiency(self) -> float:
        """Parallel efficiency from the mean speedup."""
        return self.mean / self.processors if self.processors else 0.0


@dataclass
class RoutineSpeedup:
    """The full speedup curve of one routine."""

    event: str
    baseline_processors: int
    points: list[SpeedupPoint] = field(default_factory=list)

    def classify(self, threshold: float = 0.7) -> str:
        """'scalable', 'saturating' or 'degrading' from the curve tail."""
        if len(self.points) < 2:
            return "scalable"
        last = self.points[-1]
        if last.efficiency >= threshold:
            return "scalable"
        prev = self.points[-2]
        if last.mean < prev.mean * 0.95:  # clearly worse, not just noise
            return "degrading"
        return "saturating"


class SpeedupAnalyzer:
    """Accumulates trials at several processor counts; computes curves."""

    def __init__(self, metric: int = 0, inclusive: bool = True):
        self.metric = metric
        self.inclusive = inclusive
        self._trials: dict[int, DataSource] = {}

    def add_trial(self, processors: int, source: DataSource) -> None:
        if processors in self._trials:
            raise ValueError(f"trial for P={processors} already added")
        self._trials[processors] = source

    @property
    def processor_counts(self) -> list[int]:
        return sorted(self._trials)

    def routines(self) -> list[str]:
        """Routines present in the baseline trial."""
        if not self._trials:
            return []
        baseline = self._trials[self.processor_counts[0]]
        return list(baseline.interval_events)

    def analyze(self, events: Optional[list[str]] = None) -> list[RoutineSpeedup]:
        """Speedup curves for every (or the given) profiled routine."""
        counts = self.processor_counts
        if len(counts) < 2:
            raise ValueError("need trials at >= 2 processor counts")
        base_p = counts[0]
        baseline = self._trials[base_p]
        targets = events if events is not None else self.routines()
        out: list[RoutineSpeedup] = []
        for event_name in targets:
            try:
                base_values = event_values(
                    baseline, event_name, self.metric, self.inclusive
                )
            except KeyError:
                continue
            base_time = float(base_values.mean())
            if base_time <= 0:
                continue
            curve = RoutineSpeedup(event=event_name, baseline_processors=base_p)
            for p in counts:
                source = self._trials[p]
                try:
                    values = event_values(
                        source, event_name, self.metric, self.inclusive
                    )
                except KeyError:
                    continue
                values = values[values > 0]
                if len(values) == 0:
                    continue
                # relative speedup: normalised to the baseline count
                scale = p / base_p
                curve.points.append(
                    SpeedupPoint(
                        processors=p,
                        minimum=base_time / float(values.max()),
                        mean=base_time / float(values.mean()),
                        maximum=base_time / float(values.min()),
                    )
                )
            out.append(curve)
        return out

    def application_speedup(self) -> list[SpeedupPoint]:
        """Whole-application speedup from per-thread run durations."""
        counts = self.processor_counts
        if len(counts) < 2:
            raise ValueError("need trials at >= 2 processor counts")
        base = self._trials[counts[0]]
        base_durations = np.array(
            [t.max_inclusive(self.metric) for t in base.all_threads()]
        )
        base_time = float(base_durations.mean())
        points = []
        for p in counts:
            source = self._trials[p]
            durations = np.array(
                [t.max_inclusive(self.metric) for t in source.all_threads()]
            )
            points.append(
                SpeedupPoint(
                    processors=p,
                    minimum=base_time / float(durations.max()),
                    mean=base_time / float(durations.mean()),
                    maximum=base_time / float(durations.min()),
                )
            )
        return points

    def report(self, top: int = 0) -> str:
        """Text table of per-routine min/mean/max speedups (§5.2 output)."""
        curves = self.analyze()
        if top:
            curves = sorted(
                curves, key=lambda c: c.points[-1].mean if c.points else 0
            )[:top]
        counts = self.processor_counts
        lines = [
            "Speedup analysis (baseline P=%d)" % counts[0],
            "%-32s %6s %10s %10s %10s  %s"
            % ("routine", "P", "min", "mean", "max", "class"),
        ]
        for curve in curves:
            classification = curve.classify()
            for point in curve.points:
                lines.append(
                    "%-32s %6d %10.2f %10.2f %10.2f  %s"
                    % (
                        curve.event[:32], point.processors,
                        point.minimum, point.mean, point.maximum,
                        classification if point is curve.points[-1] else "",
                    )
                )
        return "\n".join(lines)
