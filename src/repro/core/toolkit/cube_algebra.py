"""CUBE-style trial algebra: difference, merge, mean of trials.

Paper §7 (future work): *"We hope to work with the University of
Tennessee to integrate the CUBE algebra with PerfDMF to implement
high-level comparative queries and analysis operations."*  This module
implements that integration: the algebra of Song et al. (ICPP'04)
operates on performance *cubes* (metric × event × location); our
operations act on :class:`DataSource` objects aligned by metric name,
event name, and (node, context, thread).

Closure property: every operation returns another DataSource, so
operations compose (e.g. ``mean(diff(a, b), diff(c, d))``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..model import DataSource


def _binary(
    left: DataSource, right: DataSource, op: Callable[[float, float], float]
) -> DataSource:
    """Apply ``op`` location-wise over the union of both trials."""
    out = DataSource()
    metric_names = list(
        dict.fromkeys([m.name for m in left.metrics] + [m.name for m in right.metrics])
    )
    for name in metric_names:
        out.add_metric(name)
    left_metric = {m.name: m.index for m in left.metrics}
    right_metric = {m.name: m.index for m in right.metrics}

    def emit(source: DataSource, other: DataSource, flip: bool) -> None:
        metric_of = left_metric if not flip else right_metric
        other_metric = right_metric if not flip else left_metric
        for thread in source.all_threads():
            other_thread = other.get_thread(*thread.triple)
            out_thread = out.add_thread(*thread.triple)
            for profile in thread.function_profiles.values():
                event_name = profile.event.name
                event = out.add_interval_event(event_name, profile.event.group)
                target = out_thread.get_or_create_function_profile(event)
                other_profile = None
                if other_thread is not None:
                    other_event = other.get_interval_event(event_name)
                    if other_event is not None:
                        other_profile = other_thread.function_profiles.get(
                            other_event.index
                        )
                if flip and other_profile is not None:
                    continue  # already handled from the left side
                for out_index, metric_name in enumerate(metric_names):
                    a = b = 0.0
                    my_index = metric_of.get(metric_name)
                    if my_index is not None:
                        a_inc = profile.get_inclusive(my_index)
                        a_exc = profile.get_exclusive(my_index)
                    else:
                        a_inc = a_exc = 0.0
                    if other_profile is not None:
                        oi = other_metric.get(metric_name)
                        b_inc = other_profile.get_inclusive(oi) if oi is not None else 0.0
                        b_exc = other_profile.get_exclusive(oi) if oi is not None else 0.0
                    else:
                        b_inc = b_exc = 0.0
                    if flip:
                        a_inc, b_inc = b_inc, a_inc
                        a_exc, b_exc = b_exc, a_exc
                    target.set_inclusive(out_index, op(a_inc, b_inc))
                    target.set_exclusive(out_index, op(a_exc, b_exc))
                if not flip:
                    target.calls = op(
                        profile.calls,
                        other_profile.calls if other_profile else 0.0,
                    )
                    target.subroutines = op(
                        profile.subroutines,
                        other_profile.subroutines if other_profile else 0.0,
                    )
                else:
                    target.calls = op(0.0, profile.calls)
                    target.subroutines = op(0.0, profile.subroutines)

    emit(left, right, flip=False)
    emit(right, left, flip=True)
    out.generate_statistics()
    return out


def diff(left: DataSource, right: DataSource) -> DataSource:
    """CUBE difference: left − right, location-wise.

    Positive values mean the left trial was more expensive.  Events or
    locations present on only one side are treated as zero on the other
    — new routines show up positive, removed ones negative.
    """
    return _binary(left, right, lambda a, b: a - b)


def merge(left: DataSource, right: DataSource) -> DataSource:
    """CUBE merge: the union trial, summing overlapping locations."""
    return _binary(left, right, lambda a, b: a + b)


def mean(trials: Sequence[DataSource]) -> DataSource:
    """CUBE mean over N trials (e.g. repeated runs of one experiment)."""
    if not trials:
        raise ValueError("mean() of no trials")
    total = trials[0]
    for other in trials[1:]:
        total = merge(total, other)
    n = float(len(trials))
    out = DataSource()
    for metric in total.metrics:
        out.add_metric(metric.name)
    for thread in total.all_threads():
        out_thread = out.add_thread(*thread.triple)
        for profile in thread.function_profiles.values():
            event = out.add_interval_event(profile.event.name, profile.event.group)
            target = out_thread.get_or_create_function_profile(event)
            for m, inc, exc in profile.iter_metrics():
                target.set_inclusive(m, inc / n)
                target.set_exclusive(m, exc / n)
            target.calls = profile.calls / n
            target.subroutines = profile.subroutines / n
    out.generate_statistics()
    return out
