"""Shared process-pool plumbing for CPU-bound fan-out stages.

Two subsystems fan work out across worker processes: the bulk-ingest
parse stage (:mod:`repro.core.io_.bulk`) and the MiniSQL shard executor
(:mod:`repro.db.minisql.shard`).  Both need the same careful lifecycle
that PR 2/PR 4 hardened by hand in ``bulk.py``:

* **no ``with`` block** around the executor — the context manager's
  exit calls ``shutdown(wait=True)``, which joins the workers and would
  stall the whole batch behind one hung task despite its timeout having
  fired;
* **per-task result timeouts**, with ``terminate()`` on the worker
  processes when any task timed out (a stuck worker cannot be
  cancelled, only killed — otherwise it outlives the batch and wedges
  interpreter shutdown's executor join);
* **BrokenProcessPool fan-out** — once the pool dies, every remaining
  future fails the same way, so they are all marked failed at once
  instead of surfacing one confusing traceback per task.

This module extracts that pattern.  :func:`run_tasks` is the one-shot
form (submit, collect, tear down); :class:`WorkerPool` keeps a pool
alive across calls for callers with a long-lived worker set (the shard
executor forks once per shard generation and reuses the workers for
every query).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence


@dataclass
class TaskFailure:
    """Sentinel result for one failed pool task.

    ``error`` is the exception the future raised; ``timed_out`` marks a
    per-task timeout (the pool's workers were terminated afterwards).
    """

    error: BaseException
    timed_out: bool = False

    @property
    def broken_pool(self) -> bool:
        return isinstance(self.error, BrokenProcessPool)


def default_workers(n_tasks: int) -> int:
    return min(n_tasks, os.cpu_count() or 1)


class WorkerPool:
    """A lazily-created ProcessPoolExecutor with hardened teardown.

    ``run`` submits one task per spec and returns results in spec
    order, substituting :class:`TaskFailure` for tasks that raised or
    timed out — the caller decides whether a failure dooms the batch or
    is retried elsewhere.  ``shutdown`` never joins hung workers; with
    ``terminate=True`` it kills them outright.
    """

    def __init__(
        self,
        workers: int,
        mp_context: Optional[str] = None,
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple = (),
    ):
        self.workers = max(1, workers)
        self._mp_context = mp_context
        self._initializer = initializer
        self._initargs = initargs
        self._pool: Optional[ProcessPoolExecutor] = None

    # -------------------------------------------------------------- lifecycle --

    @property
    def active(self) -> bool:
        return self._pool is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = (
                multiprocessing.get_context(self._mp_context)
                if self._mp_context is not None else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._pool

    def shutdown(self, terminate: bool = False) -> None:
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)
        if terminate:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except OSError:
                    pass

    # -------------------------------------------------------------- execution --

    def run(
        self,
        fn: Callable[..., Any],
        specs: Sequence[Any],
        task_timeout: Optional[float] = None,
    ) -> list[Any]:
        """Run ``fn(spec)`` for every spec; results in spec order.

        Failed or timed-out tasks yield :class:`TaskFailure` entries.
        After any timeout the pool is torn down with ``terminate`` so a
        genuinely stuck worker cannot wedge shutdown; after a
        BrokenProcessPool all remaining tasks are marked failed at once
        and the dead pool is discarded (the next ``run`` re-forks).
        """
        pool = self._ensure_pool()
        results: list[Any] = [None] * len(specs)
        timed_out = False
        broken: Optional[BaseException] = None
        futures = [pool.submit(fn, spec) for spec in specs]
        for i, future in enumerate(futures):
            if broken is not None:
                results[i] = TaskFailure(broken)
                continue
            try:
                results[i] = future.result(timeout=task_timeout)
            except FutureTimeout as exc:
                future.cancel()
                timed_out = True
                results[i] = TaskFailure(exc, timed_out=True)
            except BrokenProcessPool as exc:
                # The pool is gone; every remaining future fails the
                # same way — mark them all without waiting on each.
                broken = exc
                results[i] = TaskFailure(exc)
            except BaseException as exc:
                results[i] = TaskFailure(exc)
        if timed_out or broken is not None:
            self.shutdown(terminate=timed_out)
        return results


def run_tasks(
    fn: Callable[..., Any],
    specs: Sequence[Any],
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    mp_context: Optional[str] = None,
) -> list[Any]:
    """One-shot fan-out: pool up, run every spec, tear the pool down.

    The pool is always shut down without joining (and with worker
    termination after a timeout) before returning.
    """
    if workers is None:
        workers = default_workers(len(specs))
    pool = WorkerPool(workers, mp_context=mp_context)
    try:
        return pool.run(fn, specs, task_timeout=task_timeout)
    finally:
        pool.shutdown()
