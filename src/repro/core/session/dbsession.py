"""``PerfDMFSession`` — the database-backed DataSession.

Implements the paper's database-only access method: selective queries
against stored trials without loading entire (possibly large) profiles,
plus bulk trial storage with the two precomputed summary views, derived
metrics on stored trials, and SQL aggregate operations (min / max /
mean / stddev — §5.2).

Storage layout and units follow :mod:`repro.core.schema.ddl`; time
values are stored in microseconds exactly as TAU records them.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.obs.metrics import registry as _registry
from repro.obs.trace import traced as _traced, tracer as _tracer

from ...db.api import DBConnection, connect
from ..api.entities import Application, Experiment, Trial
from ..model import ColumnarTrial, DataSource
from ..model.derived_expr import evaluate_metric_expression, metric_names_in
from ..schema.manager import SchemaManager
from .datasession import DataSession

_ILP_COLUMNS = (
    "interval_event, node, context, thread, metric, inclusive, "
    "inclusive_percentage, exclusive, exclusive_percentage, "
    "inclusive_per_call, num_calls, num_subrs"
)
_ILP_PLACEHOLDERS = ", ".join("?" * 12)
_ILP_COLUMN_LIST = tuple(c.strip() for c in _ILP_COLUMNS.split(","))
_SUMMARY_COLUMNS = (
    "interval_event, metric, inclusive, inclusive_percentage, exclusive, "
    "exclusive_percentage, inclusive_per_call, num_calls, num_subrs"
)
_SUMMARY_PLACEHOLDERS = ", ".join("?" * 9)


class PerfDMFSession(DataSession):
    """A live session against a PerfDMF database."""

    def __init__(self, url_or_connection: str | DBConnection, create: bool = True):
        super().__init__()
        if isinstance(url_or_connection, DBConnection):
            self.connection = url_or_connection
            self._owns_connection = False
        else:
            self.connection = connect(url_or_connection)
            self._owns_connection = True
        self.schema = SchemaManager(self.connection)
        if create:
            self.schema.install()

    def close(self) -> None:
        if self._owns_connection:
            self.connection.close()

    # ------------------------------------------------------------------ entities --

    def create_application(self, name: str, **fields: Any) -> Application:
        app = Application(self.connection, name=name, **fields)
        app.save()
        return app

    def create_experiment(
        self, application: Application | int, name: str, **fields: Any
    ) -> Experiment:
        app_id = application.id if isinstance(application, Application) else application
        exp = Experiment(self.connection, name=name, application=app_id, **fields)
        exp.save()
        return exp

    def get_application(self, name: str) -> Optional[Application]:
        columns = self.connection.column_names("application")
        row = self.connection.query_one(
            f"SELECT {', '.join(columns)} FROM application WHERE name = ?", (name,)
        )
        if row is None:
            return None
        return Application.from_row(self.connection, columns, row)  # type: ignore[return-value]

    def get_or_create_application(self, name: str, **fields: Any) -> Application:
        existing = self.get_application(name)
        return existing if existing is not None else self.create_application(name, **fields)

    def get_application_list(self) -> list[Application]:
        columns = self.connection.column_names("application")
        rows = self.connection.query(
            f"SELECT {', '.join(columns)} FROM application ORDER BY id"
        )
        return [
            Application.from_row(self.connection, columns, row)  # type: ignore[misc]
            for row in rows
        ]

    def get_experiment_list(self) -> list[Experiment]:
        columns = self.connection.column_names("experiment")
        sql = f"SELECT {', '.join(columns)} FROM experiment"
        params: list[Any] = []
        if self.selection.application_id is not None:
            sql += " WHERE application = ?"
            params.append(self.selection.application_id)
        sql += " ORDER BY id"
        return [
            Experiment.from_row(self.connection, columns, row)  # type: ignore[misc]
            for row in self.connection.query(sql, params)
        ]

    def get_trial_list(self) -> list[Trial]:
        columns = self.connection.column_names("trial")
        sql = f"SELECT {', '.join(columns)} FROM trial"
        params: list[Any] = []
        conditions = []
        if self.selection.experiment_id is not None:
            conditions.append("experiment = ?")
            params.append(self.selection.experiment_id)
        elif self.selection.application_id is not None:
            conditions.append(
                "experiment IN (SELECT id FROM experiment WHERE application = ?)"
            )
            params.append(self.selection.application_id)
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        sql += " ORDER BY id"
        return [
            Trial.from_row(self.connection, columns, row)  # type: ignore[misc]
            for row in self.connection.query(sql, params)
        ]

    # ------------------------------------------------------------------ storage --

    def save_trial(
        self,
        source: DataSource | ColumnarTrial,
        experiment: Experiment | int,
        name: str,
        *,
        bulk: bool = True,
        **trial_fields: Any,
    ) -> Trial:
        """Store a trial's complete profile.

        Accepts either model representation.  Derives the topology
        columns (node_count, contexts_per_node, max_threads_per_context
        — paper §3.2) from the data, bulk-inserts location profiles with
        ``executemany``, and precomputes both summary tables.

        With ``bulk`` (the default) the whole profile is streamed through
        the connection's bulk-load mode: on minisql, secondary index
        maintenance and per-row undo records are deferred to one rebuild
        at the end of the batch; on sqlite the same code path is plain
        ``executemany`` batching.  Per-stage timings land in
        ``connection.ingest_stats`` (surfaced by ``connection.stats()``).
        ``bulk=False`` keeps the per-row legacy path for comparison.
        """
        started = perf_counter()
        if isinstance(source, DataSource):
            columnar = ColumnarTrial.from_datasource(source)
            atomic_source: Optional[DataSource] = source
        else:
            columnar = source
            atomic_source = None
        parse_seconds = perf_counter() - started

        exp_id = experiment.id if isinstance(experiment, Experiment) else experiment
        triples = columnar.thread_triples
        fields = dict(trial_fields)
        if columnar.metadata and "xml_metadata" not in fields:
            fields["xml_metadata"] = json.dumps(
                columnar.metadata, sort_keys=True
            )
        fields.setdefault("node_count", int(triples[:, 0].max()) + 1 if len(triples) else 0)
        fields.setdefault(
            "contexts_per_node", int(triples[:, 1].max()) + 1 if len(triples) else 0
        )
        fields.setdefault(
            "max_threads_per_context",
            int(triples[:, 2].max()) + 1 if len(triples) else 0,
        )
        trial = Trial(self.connection, name=name, experiment=exp_id, **fields)
        trial.save()
        assert trial.id is not None

        conn = self.connection
        if bulk:
            conn.begin_bulk()
        try:
            insert_started = perf_counter()
            metric_ids = self._insert_named_rows(
                "INSERT INTO metric (trial, name, derived) VALUES (?, ?, 0)",
                [(trial.id, n) for n in columnar.metric_names],
                "metric", trial.id,
            )
            event_ids = self._insert_named_rows(
                "INSERT INTO interval_event (trial, name, group_name) "
                "VALUES (?, ?, ?)",
                [
                    (trial.id, n, g)
                    for n, g in zip(columnar.event_names, columnar.event_groups)
                ],
                "interval_event", trial.id,
            )
            ilp_sql = (
                f"INSERT INTO interval_location_profile ({_ILP_COLUMNS}) "
                f"VALUES ({_ILP_PLACEHOLDERS})"
            )
            # When a shard manager is attached to a file-backed minisql
            # target, location profiles go to the per-shard archives via
            # parallel writers instead of the single-writer executemany;
            # rows buffer in the handle until the catalog transaction
            # commits (so a rollback discards them with it).
            shard_handle = conn.shard_ingest_handle(
                "interval_location_profile", _ILP_COLUMN_LIST
            )
            for m, metric_id in enumerate(metric_ids):
                if bulk:
                    rows: Iterable[tuple] = _location_rows_bulk(
                        columnar, m, metric_id, event_ids
                    )
                else:
                    rows = _location_rows(columnar, m, metric_id, event_ids)
                if shard_handle is not None:
                    shard_handle.add_rows(rows)
                else:
                    conn.executemany(ilp_sql, rows)
            insert_seconds = perf_counter() - insert_started

            index_started = perf_counter()
            if bulk:
                conn.end_bulk()  # the one secondary-index rebuild
            index_seconds = perf_counter() - index_started

            summary_started = perf_counter()
            for m, metric_id in enumerate(metric_ids):
                self._insert_summaries(columnar, m, metric_id, event_ids)
            if atomic_source is not None:
                self._save_atomic(atomic_source, trial.id)
            summary_seconds = perf_counter() - summary_started
            conn.commit()
        except BaseException:
            conn.rollback()
            if bulk:
                conn.end_bulk()
            raise
        if shard_handle is not None:
            # Catalog rows are committed; ship the buffered location
            # profiles to the shard files (parallel writers, one per
            # shard).  Flush falls back to executemany on refusal.
            insert_started = perf_counter()
            shard_handle.flush(conn)
            insert_seconds += perf_counter() - insert_started

        rows_stored = columnar.num_data_points
        total_seconds = perf_counter() - started
        conn.ingest_stats = {
            "ingest_parse_seconds": parse_seconds,
            "ingest_insert_seconds": insert_seconds,
            "ingest_index_seconds": index_seconds,
            "ingest_summary_seconds": summary_seconds,
            "ingest_rows": rows_stored,
            "ingest_rows_per_second": (
                rows_stored / total_seconds if total_seconds > 0 else 0.0
            ),
        }
        if _tracer.enabled:
            _tracer.record(
                "session.save_trial", total_seconds,
                trial=name, rows=rows_stored,
            )
        _registry.counter("session.trials_saved").inc()
        _registry.absorb("db", conn.ingest_stats)
        return trial

    def _insert_named_rows(
        self, sql: str, rows: list[tuple], table: str, trial_id: int
    ) -> list[int]:
        """Batch-insert per-trial catalog rows and return their ids.

        One ``executemany`` instead of a per-row ``insert`` loop; both
        engines assign autoincrement ids in insertion order, so querying
        them back ordered by id reproduces the insertion sequence.
        """
        if not rows:
            return []
        self.connection.executemany(sql, rows)
        return [
            r[0]
            for r in self.connection.query(
                f"SELECT id FROM {table} WHERE trial = ? ORDER BY id", (trial_id,)
            )
        ]

    def _insert_summaries(
        self, columnar: ColumnarTrial, m: int, metric_id: int, event_ids: list[int]
    ) -> None:
        totals = columnar.total_summary(m)
        means = columnar.mean_summary(m)
        n = max(1, columnar.num_threads)
        # reference for summary percentages: total/mean of the longest event
        for table, summary in (
            ("interval_total_summary", totals),
            ("interval_mean_summary", means),
        ):
            inclusive = summary["inclusive"]
            exclusive = summary["exclusive"]
            calls = summary["calls"]
            subrs = summary["subroutines"]
            reference = float(inclusive.max()) if len(inclusive) else 0.0
            rows = []
            for e, event_id in enumerate(event_ids):
                inc = float(inclusive[e])
                exc = float(exclusive[e])
                ncalls = float(calls[e])
                rows.append(
                    (
                        event_id, metric_id, inc,
                        100.0 * inc / reference if reference > 0 else 0.0,
                        exc,
                        100.0 * exc / reference if reference > 0 else 0.0,
                        inc / ncalls if ncalls > 0 else 0.0,
                        ncalls, float(subrs[e]),
                    )
                )
            self.connection.executemany(
                f"INSERT INTO {table} ({_SUMMARY_COLUMNS}) "
                f"VALUES ({_SUMMARY_PLACEHOLDERS})",
                rows,
            )

    def _save_atomic(self, source: DataSource, trial_id: int) -> None:
        conn = self.connection
        atomic_ids: dict[int, int] = {}
        for event in source.atomic_events.values():
            atomic_ids[event.index] = conn.insert(
                "INSERT INTO atomic_event (trial, name, group_name) VALUES (?, ?, ?)",
                (trial_id, event.name, event.group),
            )
        rows = []
        for thread in source.all_threads():
            for up in thread.user_event_profiles.values():
                rows.append(
                    (
                        atomic_ids[up.event.index],
                        thread.node_id, thread.context_id, thread.thread_id,
                        up.count, up.max_value, up.min_value, up.mean_value,
                        up.stddev,
                    )
                )
        if rows:
            conn.executemany(
                "INSERT INTO atomic_location_profile (atomic_event, node, "
                "context, thread, sample_count, maximum_value, minimum_value, "
                "mean_value, standard_deviation) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )

    # ------------------------------------------------------------------ queries --

    def _selected_trial_id(self, trial: Trial | int | None = None) -> int:
        if trial is not None:
            return trial.id if isinstance(trial, Trial) else trial
        if self.selection.trial_id is None:
            raise ValueError("no trial selected; call set_trial() first")
        return self.selection.trial_id

    def get_metrics(self, trial: Trial | int | None = None) -> list[str]:
        trial_id = self._selected_trial_id(trial)
        rows = self.connection.query(
            "SELECT name FROM metric WHERE trial = ? ORDER BY id", (trial_id,)
        )
        return [r[0] for r in rows]

    def get_interval_events(self, trial: Trial | int | None = None) -> list[dict[str, Any]]:
        trial_id = self._selected_trial_id(trial)
        sql = "SELECT id, name, group_name FROM interval_event WHERE trial = ?"
        params: list[Any] = [trial_id]
        if self.selection.event_name is not None:
            sql += " AND name = ?"
            params.append(self.selection.event_name)
        rows = self.connection.query(sql + " ORDER BY id", params)
        return [{"id": r[0], "name": r[1], "group": r[2]} for r in rows]

    def get_atomic_events(self, trial: Trial | int | None = None) -> list[dict[str, Any]]:
        trial_id = self._selected_trial_id(trial)
        rows = self.connection.query(
            "SELECT id, name, group_name FROM atomic_event WHERE trial = ? ORDER BY id",
            (trial_id,),
        )
        return [{"id": r[0], "name": r[1], "group": r[2]} for r in rows]

    def get_interval_event_data(
        self, trial: Trial | int | None = None
    ) -> list[tuple]:
        """Location-profile rows honouring the node/context/thread/metric
        selection — the *selective query* path for large trials.

        Row shape: (event name, node, context, thread, metric name,
        inclusive, exclusive, calls, subroutines).
        """
        trial_id = self._selected_trial_id(trial)
        sql = (
            "SELECT e.name, p.node, p.context, p.thread, m.name, "
            "p.inclusive, p.exclusive, p.num_calls, p.num_subrs "
            "FROM interval_location_profile p "
            "JOIN interval_event e ON p.interval_event = e.id "
            "JOIN metric m ON p.metric = m.id "
            "WHERE e.trial = ?"
        )
        params: list[Any] = [trial_id]
        for clause, value in (
            ("p.node = ?", self.selection.node),
            ("p.context = ?", self.selection.context),
            ("p.thread = ?", self.selection.thread),
            ("m.name = ?", self.selection.metric_name),
            ("e.name = ?", self.selection.event_name),
        ):
            if value is not None:
                sql += f" AND {clause}"
                params.append(value)
        sql += " ORDER BY e.id, p.node, p.context, p.thread"
        return self.connection.query(sql, params)

    def get_summary(
        self,
        kind: str = "mean",
        trial: Trial | int | None = None,
        metric_name: Optional[str] = None,
    ) -> list[tuple]:
        """Precomputed summary rows: (event name, inclusive, exclusive,
        calls, subroutines).  ``kind`` is 'mean' or 'total'."""
        if kind not in ("mean", "total"):
            raise ValueError("kind must be 'mean' or 'total'")
        trial_id = self._selected_trial_id(trial)
        metric_name = metric_name or self.selection.metric_name
        table = f"interval_{kind}_summary"
        sql = (
            f"SELECT e.name, s.inclusive, s.exclusive, s.num_calls, s.num_subrs "
            f"FROM {table} s "
            "JOIN interval_event e ON s.interval_event = e.id "
            "JOIN metric m ON s.metric = m.id WHERE e.trial = ?"
        )
        params: list[Any] = [trial_id]
        if metric_name is not None:
            sql += " AND m.name = ?"
            params.append(metric_name)
        return self.connection.query(sql + " ORDER BY e.id", params)

    def count_data_points(self, trial: Trial | int | None = None) -> int:
        """Number of stored location-profile rows for the trial."""
        trial_id = self._selected_trial_id(trial)
        return int(
            self.connection.scalar(
                "SELECT count(*) FROM interval_location_profile p "
                "JOIN interval_event e ON p.interval_event = e.id "
                "WHERE e.trial = ?",
                (trial_id,),
            )
        )

    # -- SQL aggregate pass-through (paper §5.2) -------------------------------------

    _AGGREGATES = ("min", "max", "avg", "sum", "count", "stddev", "variance")

    @_traced("session.aggregate")
    def aggregate(
        self,
        operation: str,
        column: str = "exclusive",
        trial: Trial | int | None = None,
        event_name: Optional[str] = None,
        metric_name: Optional[str] = None,
    ) -> Optional[float]:
        """Standard SQL aggregate over location-profile rows.

        *"including requesting standard SQL aggregate operations such as
        minimum, maximum, mean, standard deviation and others"* (§5.2).
        """
        op = operation.lower()
        if op == "mean":
            op = "avg"
        if op not in self._AGGREGATES:
            raise ValueError(
                f"unsupported aggregate {operation!r}; use one of "
                f"{self._AGGREGATES}"
            )
        if column not in (
            "inclusive", "exclusive", "num_calls", "num_subrs",
            "inclusive_per_call", "inclusive_percentage", "exclusive_percentage",
        ):
            raise ValueError(f"unknown profile column {column!r}")
        trial_id = self._selected_trial_id(trial)
        sql = (
            f"SELECT {op}(p.{column}) FROM interval_location_profile p "
            "JOIN interval_event e ON p.interval_event = e.id "
            "JOIN metric m ON p.metric = m.id WHERE e.trial = ?"
        )
        params: list[Any] = [trial_id]
        event_name = event_name or self.selection.event_name
        metric_name = metric_name or self.selection.metric_name
        if event_name is not None:
            sql += " AND e.name = ?"
            params.append(event_name)
        if metric_name is not None:
            sql += " AND m.name = ?"
            params.append(metric_name)
        value = self.connection.scalar(sql, params)
        return None if value is None else float(value)

    # ------------------------------------------------------------------ loading --

    @_traced("session.load_datasource")
    def load_datasource(self, trial: Trial | int | None = None) -> DataSource:
        """Materialise a stored trial back into a DataSource."""
        trial_id = self._selected_trial_id(trial)
        if self.connection.scalar(
            "SELECT count(*) FROM trial WHERE id = ?", (trial_id,)
        ) == 0:
            raise LookupError(f"no trial id {trial_id} in this database")
        source = DataSource()
        if "xml_metadata" in {
            c.lower() for c in self.connection.column_names("trial")
        }:
            blob = self.connection.scalar(
                "SELECT xml_metadata FROM trial WHERE id = ?", (trial_id,)
            )
            if blob:
                import json

                try:
                    source.metadata.update(json.loads(blob))
                except (ValueError, TypeError):
                    pass  # deployment stored non-JSON content; ignore
        metric_rows = self.connection.query(
            "SELECT id, name, derived FROM metric WHERE trial = ? ORDER BY id",
            (trial_id,),
        )
        metric_index: dict[int, int] = {}
        for db_id, name, derived in metric_rows:
            metric = source.add_metric(name, derived=bool(derived))
            metric.db_id = db_id
            metric_index[db_id] = metric.index
        event_rows = self.connection.query(
            "SELECT id, name, group_name FROM interval_event WHERE trial = ? "
            "ORDER BY id",
            (trial_id,),
        )
        event_index: dict[int, Any] = {}
        for db_id, name, group_name in event_rows:
            event = source.add_interval_event(name, group_name or "TAU_DEFAULT")
            event.db_id = db_id
            event_index[db_id] = event
        profile_rows = self.connection.query(
            "SELECT p.interval_event, p.node, p.context, p.thread, p.metric, "
            "p.inclusive, p.exclusive, p.num_calls, p.num_subrs "
            "FROM interval_location_profile p "
            "JOIN interval_event e ON p.interval_event = e.id WHERE e.trial = ?",
            (trial_id,),
        )
        for event_id, node, ctx, thr, metric_id, inc, exc, calls, subrs in profile_rows:
            thread = source.add_thread(node, ctx, thr)
            profile = thread.get_or_create_function_profile(event_index[event_id])
            m = metric_index[metric_id]
            profile.set_inclusive(m, inc)
            profile.set_exclusive(m, exc)
            if m == 0:
                profile.calls = calls
                profile.subroutines = subrs
        atomic_rows = self.connection.query(
            "SELECT id, name, group_name FROM atomic_event WHERE trial = ? ORDER BY id",
            (trial_id,),
        )
        atomic_index = {}
        for db_id, name, group_name in atomic_rows:
            event = source.add_atomic_event(name, group_name or "TAU_DEFAULT")
            event.db_id = db_id
            atomic_index[db_id] = event
        if atomic_index:
            alp_rows = self.connection.query(
                "SELECT p.atomic_event, p.node, p.context, p.thread, "
                "p.sample_count, p.maximum_value, p.minimum_value, "
                "p.mean_value, p.standard_deviation "
                "FROM atomic_location_profile p "
                "JOIN atomic_event a ON p.atomic_event = a.id WHERE a.trial = ?",
                (trial_id,),
            )
            for event_id, node, ctx, thr, count, vmax, vmin, mean, std in alp_rows:
                thread = source.add_thread(node, ctx, thr)
                up = thread.get_or_create_user_event_profile(atomic_index[event_id])
                up.set_summary(count, vmax, vmin, mean, stddev=std)
        source.generate_statistics()
        return source

    @_traced("session.load_columnar")
    def load_columnar(self, trial: Trial | int | None = None) -> ColumnarTrial:
        """Materialise a stored trial as a :class:`ColumnarTrial`.

        The vectorised twin of :meth:`load_datasource`: rows land
        directly in numpy arrays instead of per-profile objects, which
        is ~20× faster and far smaller at the paper's 1.6M-data-point
        scale.  PerfExplorer's clustering consumes this form natively.
        """
        trial_id = self._selected_trial_id(trial)
        conn = self.connection
        metric_rows = conn.query(
            "SELECT id, name FROM metric WHERE trial = ? ORDER BY id",
            (trial_id,),
        )
        event_rows = conn.query(
            "SELECT id, name, group_name FROM interval_event WHERE trial = ? "
            "ORDER BY id",
            (trial_id,),
        )
        if not metric_rows or not event_rows:
            raise ValueError(f"trial {trial_id} has no stored profile data")
        metric_pos = {db_id: i for i, (db_id, _n) in enumerate(metric_rows)}
        event_pos = {db_id: i for i, (db_id, _n, _g) in enumerate(event_rows)}

        triples = conn.query(
            "SELECT DISTINCT p.node, p.context, p.thread "
            "FROM interval_location_profile p "
            "JOIN interval_event e ON p.interval_event = e.id "
            "WHERE e.trial = ? ORDER BY p.node, p.context, p.thread",
            (trial_id,),
        )
        thread_pos = {triple: i for i, triple in enumerate(triples)}
        columnar = ColumnarTrial.allocate(
            event_names=[r[1] for r in event_rows],
            metric_names=[r[1] for r in metric_rows],
            thread_triples=np.asarray(triples, dtype=np.int32).reshape(-1, 3),
            event_groups=[r[2] or "TAU_DEFAULT" for r in event_rows],
        )
        rows = conn.query(
            "SELECT p.interval_event, p.node, p.context, p.thread, p.metric, "
            "p.inclusive, p.exclusive, p.num_calls, p.num_subrs "
            "FROM interval_location_profile p "
            "JOIN interval_event e ON p.interval_event = e.id WHERE e.trial = ?",
            (trial_id,),
        )
        data = np.asarray(rows, dtype=np.float64)
        event_ids = data[:, 0].astype(np.int64)
        metric_ids = data[:, 4].astype(np.int64)
        e_index = np.array([event_pos[i] for i in event_ids])
        m_index = np.array([metric_pos[i] for i in metric_ids])
        t_index = np.array(
            [
                thread_pos[(int(n), int(c), int(t))]
                for n, c, t in data[:, 1:4].astype(np.int64)
            ]
        )
        for m in range(columnar.num_metrics):
            mask = m_index == m
            columnar.inclusive[m][t_index[mask], e_index[mask]] = data[mask, 5]
            columnar.exclusive[m][t_index[mask], e_index[mask]] = data[mask, 6]
            if m == 0:
                columnar.calls[t_index[mask], e_index[mask]] = data[mask, 7]
                columnar.subroutines[t_index[mask], e_index[mask]] = data[mask, 8]
        return columnar

    # ------------------------------------------------------------------ derived --

    def save_derived_metric(
        self,
        name: str,
        expression: str,
        trial: Trial | int | None = None,
    ) -> int:
        """Compute a derived metric on a *stored* trial and save it.

        Paper §4: *"The Trial object also has support for adding new,
        possibly derived, metrics to an existing trial in the
        database."*  The source metric rows are fetched, combined per
        (event, node, context, thread) with :mod:`derived_expr`, and the
        result inserted as a new METRIC plus its location profiles and
        summaries.
        """
        trial_id = self._selected_trial_id(trial)
        conn = self.connection
        existing = {
            row[1]: row[0]
            for row in conn.query(
                "SELECT id, name FROM metric WHERE trial = ?", (trial_id,)
            )
        }
        if name in existing:
            raise ValueError(f"metric {name!r} already exists on trial {trial_id}")
        needed = metric_names_in(expression)
        for metric_name in needed:
            if metric_name not in existing:
                raise ValueError(
                    f"expression references unknown metric {metric_name!r}"
                )
        # Pull the needed metrics' rows keyed by location.
        inclusive: dict[tuple, dict[str, float]] = {}
        exclusive: dict[tuple, dict[str, float]] = {}
        base: dict[tuple, tuple] = {}
        for metric_name in needed:
            rows = conn.query(
                "SELECT p.interval_event, p.node, p.context, p.thread, "
                "p.inclusive, p.exclusive, p.num_calls, p.num_subrs "
                "FROM interval_location_profile p WHERE p.metric = ?",
                (existing[metric_name],),
            )
            for event_id, node, ctx, thr, inc, exc, calls, subrs in rows:
                key = (event_id, node, ctx, thr)
                inclusive.setdefault(key, {})[metric_name] = inc
                exclusive.setdefault(key, {})[metric_name] = exc
                base[key] = (calls, subrs)
        metric_id = conn.insert(
            "INSERT INTO metric (trial, name, derived) VALUES (?, ?, 1)",
            (trial_id, name),
        )
        out_rows = []
        for key, inc_values in inclusive.items():
            exc_values = exclusive[key]
            calls, subrs = base[key]
            inc = evaluate_metric_expression(expression, lambda n: inc_values[n])
            exc = evaluate_metric_expression(expression, lambda n: exc_values[n])
            event_id, node, ctx, thr = key
            out_rows.append(
                (
                    event_id, node, ctx, thr, metric_id,
                    inc, 0.0, exc, 0.0,
                    inc / calls if calls else 0.0, calls, subrs,
                )
            )
        conn.executemany(
            f"INSERT INTO interval_location_profile ({_ILP_COLUMNS}) "
            f"VALUES ({_ILP_PLACEHOLDERS})",
            out_rows,
        )
        # summaries for the derived metric
        conn.execute(
            f"INSERT INTO interval_total_summary ({_SUMMARY_COLUMNS}) "
            "SELECT interval_event, metric, sum(inclusive), 0, sum(exclusive), 0, "
            "0, sum(num_calls), sum(num_subrs) "
            "FROM interval_location_profile WHERE metric = ? "
            "GROUP BY interval_event, metric",
            (metric_id,),
        )
        n_threads = conn.scalar(
            "SELECT count(DISTINCT node || '.' || context || '.' || thread) "
            "FROM interval_location_profile WHERE metric = ?",
            (metric_id,),
        ) or 1
        conn.execute(
            f"INSERT INTO interval_mean_summary ({_SUMMARY_COLUMNS}) "
            "SELECT interval_event, metric, sum(inclusive) / ?, 0, "
            "sum(exclusive) / ?, 0, 0, sum(num_calls) / ?, sum(num_subrs) / ? "
            "FROM interval_location_profile WHERE metric = ? "
            "GROUP BY interval_event, metric",
            (n_threads, n_threads, n_threads, n_threads, metric_id),
        )
        conn.commit()
        return metric_id


def _location_rows(
    columnar: ColumnarTrial, m: int, metric_id: int, event_ids: list[int]
) -> Iterable[tuple]:
    """Adapt ColumnarTrial.iter_location_rows to database event/metric ids."""
    for row in columnar.iter_location_rows(m):
        event_index = row[0]
        yield (event_ids[event_index],) + row[1:4] + (metric_id,) + row[4:]


def _location_rows_bulk(
    columnar: ColumnarTrial, m: int, metric_id: int, event_ids: list[int]
) -> list[tuple]:
    """Vectorised interval_location_profile rows for one metric.

    Same 12-column layout as ``_location_rows`` but assembled with numpy
    flattening and one ``zip`` — no per-cell Python ``float()`` calls,
    which dominate ingest time at 4K+ ranks.
    """
    inc = columnar.inclusive[m]
    n_threads, n_events = inc.shape
    triples = columnar.thread_triples
    total = n_threads * n_events
    event_id_column = np.tile(np.asarray(event_ids, dtype=np.int64), n_threads)
    return list(zip(
        event_id_column.tolist(),
        np.repeat(triples[:, 0], n_events).tolist(),
        np.repeat(triples[:, 1], n_events).tolist(),
        np.repeat(triples[:, 2], n_events).tolist(),
        [metric_id] * total,
        inc.ravel().tolist(),
        columnar.inclusive_percent(m).ravel().tolist(),
        columnar.exclusive[m].ravel().tolist(),
        columnar.exclusive_percent(m).ravel().tolist(),
        columnar.inclusive_per_call(m).ravel().tolist(),
        columnar.calls.ravel().tolist(),
        columnar.subroutines.ravel().tolist(),
    ))
