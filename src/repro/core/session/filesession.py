"""``FileDataSession`` — the flat-file DataSession.

Implements the paper's first access method: profile data straight from
profiling tools *"in the form of flat files, and/or [without] database
support"* (§4).  One session wraps one parsed trial; the application /
experiment / trial lists expose a single virtual hierarchy so code
written against :class:`DataSession` works unchanged on files.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from ..io_.registry import load_profile
from ..model import DataSource
from .datasession import DataSession


class FileDataSession(DataSession):
    """A DataSession over one flat-file profile dataset."""

    def __init__(
        self,
        target: str | os.PathLike | DataSource,
        format_name: Optional[str] = None,
        application_name: str = "default_app",
        experiment_name: str = "default_exp",
        trial_name: str = "trial",
    ):
        super().__init__()
        if isinstance(target, DataSource):
            self.datasource = target
        else:
            self.datasource = load_profile(target, format_name)
        self.application_name = application_name
        self.experiment_name = experiment_name
        self.trial_name = trial_name
        self.selection.application_id = 0
        self.selection.experiment_id = 0
        self.selection.trial_id = 0

    # The virtual entity hierarchy ------------------------------------------------

    def get_application_list(self) -> list[dict[str, Any]]:  # type: ignore[override]
        return [{"id": 0, "name": self.application_name}]

    def get_experiment_list(self) -> list[dict[str, Any]]:  # type: ignore[override]
        return [{"id": 0, "name": self.experiment_name, "application": 0}]

    def get_trial_list(self) -> list[dict[str, Any]]:  # type: ignore[override]
        return [
            {
                "id": 0,
                "name": self.trial_name,
                "experiment": 0,
                "node_count": self.datasource.node_count,
                "contexts_per_node": self.datasource.contexts_per_node,
                "max_threads_per_context": self.datasource.max_threads_per_context,
            }
        ]

    # Queries over the in-memory model ----------------------------------------------

    def get_metrics(self) -> list[str]:
        return [m.name for m in self.datasource.metrics]

    def get_interval_events(self) -> list[dict[str, Any]]:
        events = self.datasource.interval_events.values()
        out = []
        for event in events:
            if (
                self.selection.event_name is not None
                and event.name != self.selection.event_name
            ):
                continue
            out.append({"id": event.index, "name": event.name, "group": event.group})
        return out

    def get_atomic_events(self) -> list[dict[str, Any]]:
        return [
            {"id": e.index, "name": e.name, "group": e.group}
            for e in self.datasource.atomic_events.values()
        ]

    def get_interval_event_data(self) -> list[tuple]:
        """Rows in the same shape as PerfDMFSession.get_interval_event_data,
        honouring the node/context/thread/metric/event selection."""
        sel = self.selection
        metric_names = [m.name for m in self.datasource.metrics]
        rows: list[tuple] = []
        for thread in self.datasource.all_threads():
            if sel.node is not None and thread.node_id != sel.node:
                continue
            if sel.context is not None and thread.context_id != sel.context:
                continue
            if sel.thread is not None and thread.thread_id != sel.thread:
                continue
            for profile in thread.function_profiles.values():
                if (
                    sel.event_name is not None
                    and profile.event.name != sel.event_name
                ):
                    continue
                for m, inc, exc in profile.iter_metrics():
                    if m >= len(metric_names):
                        continue
                    if (
                        sel.metric_name is not None
                        and metric_names[m] != sel.metric_name
                    ):
                        continue
                    rows.append(
                        (
                            profile.event.name,
                            thread.node_id, thread.context_id, thread.thread_id,
                            metric_names[m], inc, exc,
                            profile.calls, profile.subroutines,
                        )
                    )
        return rows

    def load_datasource(self) -> DataSource:
        return self.datasource
