"""The abstract ``DataSession`` — PerfDMF's query/management interface.

Paper §4: *"The DataSession object forms the core abstract object by
which interactions with data sources take place. ... Once the session
has been initialized, a call to getApplicationList() will return a list
of Application objects, from which the desired application is selected
and set as a filter for subsequent queries. ... Once an object is
selected, all further query operations are filtered based on that
particular context."*

Two concrete sessions exist, mirroring the paper's two access methods:

* :class:`~repro.core.session.filesession.FileDataSession` — flat-file
  profiles straight from profiling tools (no database needed);
* :class:`~repro.core.session.dbsession.PerfDMFSession` — the
  database-only interface for selective queries without loading whole
  trials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..api.entities import Application, Experiment, Trial
from ..model import DataSource


@dataclass
class Selection:
    """The session's current query filters."""

    application_id: Optional[int] = None
    experiment_id: Optional[int] = None
    trial_id: Optional[int] = None
    node: Optional[int] = None
    context: Optional[int] = None
    thread: Optional[int] = None
    metric_name: Optional[str] = None
    event_name: Optional[str] = None

    def clear(self) -> None:
        for f in (
            "application_id", "experiment_id", "trial_id",
            "node", "context", "thread", "metric_name", "event_name",
        ):
            setattr(self, f, None)


class DataSession:
    """Abstract base; concrete sessions implement the ``_do`` methods."""

    def __init__(self) -> None:
        self.selection = Selection()

    # -- selection (filters for all subsequent queries) ------------------------------

    def set_application(self, application: Application | int | None) -> None:
        self.selection.application_id = _entity_id(application)
        # narrowing resets the finer-grained selections
        self.selection.experiment_id = None
        self.selection.trial_id = None

    def set_experiment(self, experiment: Experiment | int | None) -> None:
        self.selection.experiment_id = _entity_id(experiment)
        self.selection.trial_id = None

    def set_trial(self, trial: Trial | int | None) -> None:
        self.selection.trial_id = _entity_id(trial)

    def set_node(self, node: Optional[int]) -> None:
        self.selection.node = node

    def set_context(self, context: Optional[int]) -> None:
        self.selection.context = context

    def set_thread(self, thread: Optional[int]) -> None:
        self.selection.thread = thread

    def set_metric(self, metric_name: Optional[str]) -> None:
        self.selection.metric_name = metric_name

    def set_event(self, event_name: Optional[str]) -> None:
        self.selection.event_name = event_name

    def reset_selection(self) -> None:
        self.selection.clear()

    # -- queries (to implement) ------------------------------------------------------

    def get_application_list(self) -> list[Application]:
        raise NotImplementedError

    def get_experiment_list(self) -> list[Experiment]:
        raise NotImplementedError

    def get_trial_list(self) -> list[Trial]:
        raise NotImplementedError

    def get_metrics(self) -> list[str]:
        """Metric names of the selected trial."""
        raise NotImplementedError

    def get_interval_events(self) -> list[dict[str, Any]]:
        """Interval events of the selected trial (id/name/group dicts)."""
        raise NotImplementedError

    def get_atomic_events(self) -> list[dict[str, Any]]:
        raise NotImplementedError

    def load_datasource(self) -> DataSource:
        """Materialise the selected trial as an in-memory DataSource."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self) -> "DataSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _entity_id(value) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, int):
        return value
    if getattr(value, "id", None) is None:
        raise ValueError("entity has not been saved; call save() first")
    return value.id
