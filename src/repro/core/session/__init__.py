"""DataSession implementations: the PerfDMF query/management API (§4)."""

from .datasession import DataSession, Selection
from .dbsession import PerfDMFSession
from .filesession import FileDataSession

__all__ = ["DataSession", "Selection", "PerfDMFSession", "FileDataSession"]
