"""Application / Experiment / Trial entity objects.

These are the Java ``Application``/``Experiment``/``Trial`` objects of
the paper's API (§4): rows of the three flexible tables materialised as
objects whose field set is *discovered at runtime* from the database
metadata — adding a metadata column to the schema immediately surfaces
it on the objects, with no code change.  Each object has a ``save()``
method that inserts or updates its row.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ...db.api import DBConnection


class Entity:
    """Base class: a row of one flexible table with dynamic fields."""

    TABLE: str = ""
    #: required columns handled specially (not free-form metadata)
    _FIXED = ("id",)

    def __init__(self, connection: "DBConnection", **fields: Any):
        self._connection = connection
        self.id: Optional[int] = fields.pop("id", None)
        self._fields: dict[str, Any] = {}
        columns = {c.name.lower() for c in connection.get_metadata(self.TABLE)}
        for key, value in fields.items():
            if key.lower() not in columns:
                raise KeyError(
                    f"{self.TABLE} has no column {key!r}; available: "
                    f"{sorted(columns)}"
                )
            self._fields[key.lower()] = value

    # -- dynamic field access -----------------------------------------------------

    @property
    def name(self) -> Optional[str]:
        return self._fields.get("name")

    @name.setter
    def name(self, value: str) -> None:
        self._fields["name"] = value

    def get(self, field: str, default: Any = None) -> Any:
        """Read a (possibly deployment-specific) column value."""
        if field == "id":
            return self.id
        return self._fields.get(field.lower(), default)

    def set(self, field: str, value: Any) -> None:
        """Set a column value; the column must exist in the schema."""
        columns = {c.name.lower() for c in self._connection.get_metadata(self.TABLE)}
        key = field.lower()
        if key not in columns:
            raise KeyError(f"{self.TABLE} has no column {field!r}")
        self._fields[key] = value

    def fields(self) -> dict[str, Any]:
        return dict(self._fields)

    # -- persistence -----------------------------------------------------------------

    def save(self) -> int:
        """Insert or update this row; returns the database id."""
        items = sorted(self._fields.items())
        if not items:
            raise ValueError(f"cannot save an empty {self.TABLE} row")
        columns = [k for k, _ in items]
        values = [v for _, v in items]
        if self.id is None:
            placeholders = ", ".join("?" for _ in columns)
            sql = (
                f"INSERT INTO {self.TABLE} ({', '.join(columns)}) "
                f"VALUES ({placeholders})"
            )
            self.id = self._connection.insert(sql, values)
        else:
            assignments = ", ".join(f"{c} = ?" for c in columns)
            self._connection.execute(
                f"UPDATE {self.TABLE} SET {assignments} WHERE id = ?",
                values + [self.id],
            )
        self._connection.commit()
        assert self.id is not None
        return self.id

    def refresh(self) -> None:
        """Reload every column from the database (picks up new columns)."""
        if self.id is None:
            raise ValueError("cannot refresh an unsaved entity")
        meta = self._connection.get_metadata(self.TABLE)
        columns = [c.name for c in meta]
        row = self._connection.query_one(
            f"SELECT {', '.join(columns)} FROM {self.TABLE} WHERE id = ?",
            (self.id,),
        )
        if row is None:
            raise LookupError(f"{self.TABLE} id {self.id} no longer exists")
        for column, value in zip(columns, row):
            if column.lower() == "id":
                continue
            self._fields[column.lower()] = value

    @classmethod
    def from_row(
        cls, connection: "DBConnection", columns: list[str], row: tuple
    ) -> "Entity":
        fields = dict(zip((c.lower() for c in columns), row))
        entity = cls.__new__(cls)
        entity._connection = connection
        entity.id = fields.pop("id", None)
        entity._fields = fields
        return entity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.id}, name={self.name!r})"


class Application(Entity):
    """A row of APPLICATION: one application under study."""

    TABLE = "application"


class Experiment(Entity):
    """A row of EXPERIMENT: one experimental configuration of an app."""

    TABLE = "experiment"

    @property
    def application_id(self) -> Optional[int]:
        return self._fields.get("application")


class Trial(Entity):
    """A row of TRIAL: one execution of an experiment."""

    TABLE = "trial"

    @property
    def experiment_id(self) -> Optional[int]:
        return self._fields.get("experiment")
