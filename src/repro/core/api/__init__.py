"""Entity objects for the flexible APPLICATION/EXPERIMENT/TRIAL tables."""

from .entities import Application, Entity, Experiment, Trial

__all__ = ["Entity", "Application", "Experiment", "Trial"]
