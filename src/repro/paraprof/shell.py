"""Interactive ParaProf shell — the terminal-mode browsing session.

ParaProf is a GUI; the reproduction's equivalent is a small command
interpreter over the same archive/browser objects, suitable both for a
human at a terminal and for scripted (tested) sessions::

    paraprof> tree
    paraprof> open evh1 scaling P=8
    paraprof> aggregate
    paraprof> thread 0
    paraprof> event riemann
    paraprof> summary
    paraprof> callgraph
    paraprof> quit

Built on :mod:`cmd` from the standard library; every command delegates
to the display functions, so behaviour is identical to the programmatic
API.
"""

from __future__ import annotations

import cmd
import shlex
import sys
from typing import Optional

from .browser import ProfileBrowser
from .callgraph import call_tree_view
from .manager import ArchiveManager


class ParaProfShell(cmd.Cmd):
    """The interactive browsing loop."""

    intro = "ParaProf archive shell. Type help or ? for commands.\n"
    prompt = "paraprof> "

    def __init__(self, manager: ArchiveManager, stdout=None):
        super().__init__(stdout=stdout or sys.stdout)
        self.manager = manager
        self.browser = ProfileBrowser(manager)

    # -- helpers --------------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.stdout.write(text + "\n")

    def _require_open(self) -> bool:
        try:
            self.browser.current
            return True
        except RuntimeError:
            self._emit("no trial open; use: open <app> <experiment> <trial>")
            return False

    # -- commands ----------------------------------------------------------------

    def do_tree(self, _arg: str) -> None:
        """tree — show the application/experiment/trial archive tree."""
        self._emit(self.browser.render_tree())

    def do_open(self, arg: str) -> None:
        """open <app> <experiment> <trial> — load a trial from the archive."""
        parts = shlex.split(arg)
        if len(parts) != 3:
            self._emit("usage: open <app> <experiment> <trial>")
            return
        try:
            self.browser.open_trial(*parts)
            source = self.browser.current
            self._emit(
                f"opened {'/'.join(parts)}: {source.num_threads} threads, "
                f"{source.num_interval_events} events, "
                f"{source.num_metrics} metric(s)"
            )
        except LookupError as exc:
            self._emit(f"error: {exc}")

    def do_aggregate(self, arg: str) -> None:
        """aggregate [top] — mean-exclusive bar chart over all threads."""
        if not self._require_open():
            return
        top = int(arg) if arg.strip() else 20
        self._emit(self.browser.show_aggregate(top=top))

    def do_thread(self, arg: str) -> None:
        """thread <node> [context] [thread] — one thread's profile."""
        if not self._require_open():
            return
        parts = arg.split()
        if not parts:
            self._emit("usage: thread <node> [context] [thread]")
            return
        node = int(parts[0])
        context = int(parts[1]) if len(parts) > 1 else 0
        thread_id = int(parts[2]) if len(parts) > 2 else 0
        try:
            self._emit(self.browser.show_thread(node, context, thread_id))
        except KeyError as exc:
            self._emit(f"error: {exc}")

    def do_event(self, arg: str) -> None:
        """event <name> — compare one event across all threads."""
        if not self._require_open():
            return
        name = arg.strip()
        if not name:
            self._emit("usage: event <name>")
            return
        try:
            self._emit(self.browser.show_event(name))
        except KeyError as exc:
            self._emit(f"error: {exc}")

    def do_summary(self, _arg: str) -> None:
        """summary — group breakdown + highlighted event table."""
        if self._require_open():
            self._emit(self.browser.show_summary())

    def do_userevents(self, _arg: str) -> None:
        """userevents — atomic (user-defined) event summary."""
        if self._require_open():
            self._emit(self.browser.show_userevents())

    def do_callgraph(self, _arg: str) -> None:
        """callgraph — annotated call tree (needs callpath events)."""
        if self._require_open():
            self._emit(call_tree_view(self.browser.current))

    def do_metrics(self, _arg: str) -> None:
        """metrics — list the open trial's metrics."""
        if self._require_open():
            names = [m.name for m in self.browser.current.metrics]
            self._emit(", ".join(names))

    def do_quit(self, _arg: str) -> bool:
        """quit — leave the shell."""
        return True

    do_exit = do_quit
    do_EOF = do_quit

    def emptyline(self) -> None:  # don't repeat the last command
        pass

    def default(self, line: str) -> None:
        self._emit(f"unknown command: {line.split()[0]!r} (try help)")


def run_shell(database_url: str) -> None:  # pragma: no cover - interactive
    """Launch an interactive shell on an archive."""
    ParaProfShell(ArchiveManager(database_url)).cmdloop()
