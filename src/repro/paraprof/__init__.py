"""``repro.paraprof`` — ParaProf as a text-mode analyzer (paper §5.1)."""

from .barchart import bar_table, format_value, horizontal_bar
from .browser import ProfileBrowser
from .federate import synchronize, transfer_trial
from .htmlreport import html_report, write_html_report
from .callgraph import call_graph_dot, call_graph_stats, call_tree_view
from .shell import ParaProfShell, run_shell
from .displays import (
    aggregate_view, comparative_event_view, summary_text_view,
    thread_profile_view, userevent_view,
)
from .manager import ArchiveManager

__all__ = [
    "ArchiveManager", "ProfileBrowser",
    "aggregate_view", "thread_profile_view", "comparative_event_view",
    "summary_text_view", "userevent_view",
    "bar_table", "horizontal_bar", "format_value",
    "call_tree_view", "call_graph_dot", "call_graph_stats",
    "ParaProfShell", "run_shell",
    "transfer_trial", "synchronize",
    "html_report", "write_html_report",
]
