"""Archive federation: moving trials between PerfDMF repositories.

Paper §5.1: *"This archive could be made available in one physical
location for all analysts within an organization"* — and §7 plans
interchange with other repositories (PPerfDB/PPerfXchange).  These
helpers implement the local half of that story: copying trials (with
their application/experiment context and metadata) between any two
PerfDMF databases, regardless of backend, plus whole-archive
synchronisation.
"""

from __future__ import annotations

from typing import Optional

from ..core.api.entities import Trial
from ..core.session.dbsession import PerfDMFSession


def transfer_trial(
    source: PerfDMFSession,
    destination: PerfDMFSession,
    trial_id: int,
    rename: Optional[str] = None,
) -> Trial:
    """Copy one trial (and its app/experiment context) between archives.

    The application and experiment rows are created in the destination
    when missing (matched by name, metadata copied on first creation);
    the trial's profile moves through the columnar fast path, and its
    metadata columns are carried over.  Atomic events travel via the
    object model when present.
    """
    # locate the trial's context in the source
    row = source.connection.query_one(
        "SELECT t.name, t.experiment, e.name, e.application, a.name "
        "FROM trial t JOIN experiment e ON t.experiment = e.id "
        "JOIN application a ON e.application = a.id WHERE t.id = ?",
        (trial_id,),
    )
    if row is None:
        raise LookupError(f"no trial id {trial_id} in source archive")
    trial_name, exp_id, exp_name, app_id, app_name = row

    dst_app = destination.get_application(app_name)
    if dst_app is None:
        src_app_fields = _entity_fields(source, "application", app_id)
        dst_app = destination.create_application(app_name, **src_app_fields)
    destination.set_application(dst_app)
    dst_exp = None
    for candidate in destination.get_experiment_list():
        if candidate.name == exp_name:
            dst_exp = candidate
            break
    if dst_exp is None:
        src_exp_fields = _entity_fields(source, "experiment", exp_id)
        dst_exp = destination.create_experiment(
            dst_app, exp_name, **src_exp_fields
        )
    destination.reset_selection()

    new_name = rename or trial_name
    # has the trial an atomic-event payload?  (columnar carries only
    # interval data, so fall back to the object model when needed)
    has_atomic = bool(
        source.connection.scalar(
            "SELECT count(*) FROM atomic_event WHERE trial = ?", (trial_id,)
        )
    )
    trial_fields = _entity_fields(source, "trial", trial_id)
    trial_fields.pop("experiment", None)
    trial_fields.pop("name", None)
    if has_atomic:
        payload = source.load_datasource(trial_id)
    else:
        payload = source.load_columnar(trial_id)
    return destination.save_trial(payload, dst_exp, new_name, **trial_fields)


def synchronize(
    source: PerfDMFSession, destination: PerfDMFSession
) -> list[Trial]:
    """Copy every trial missing from the destination archive.

    Trials are matched by (application, experiment, trial) name triple —
    the archive's natural key under its UNIQUE constraints.  Returns the
    trials created.
    """
    existing = {
        tuple(row)
        for row in destination.connection.query(
            "SELECT a.name, e.name, t.name FROM trial t "
            "JOIN experiment e ON t.experiment = e.id "
            "JOIN application a ON e.application = a.id"
        )
    }
    created = []
    rows = source.connection.query(
        "SELECT t.id, a.name, e.name, t.name FROM trial t "
        "JOIN experiment e ON t.experiment = e.id "
        "JOIN application a ON e.application = a.id ORDER BY t.id"
    )
    for trial_id, app_name, exp_name, trial_name in rows:
        if (app_name, exp_name, trial_name) in existing:
            continue
        created.append(transfer_trial(source, destination, trial_id))
    return created


def _entity_fields(session: PerfDMFSession, table: str, entity_id: int) -> dict:
    """Every non-required column value of one row (the metadata payload)."""
    from ..core.schema.ddl import REQUIRED_COLUMNS

    columns = session.connection.column_names(table)
    row = session.connection.query_one(
        f"SELECT {', '.join(columns)} FROM {table} WHERE id = ?", (entity_id,)
    )
    if row is None:
        return {}
    skip = set(REQUIRED_COLUMNS[table])
    return {
        column.lower(): value
        for column, value in zip(columns, row)
        if column.lower() not in skip and value is not None
    }
