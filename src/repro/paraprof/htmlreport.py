"""Static HTML report generation for a trial.

ParaProf's displays are interactive; for sharing (the paper's *"shared
data repository ... for all analysts within an organization"* use case)
a static artifact travels better.  This module renders one trial into a
single self-contained HTML file: trial header, group breakdown, the
aggregate bar chart (inline SVG), the per-event statistics table with
imbalance highlighting, and the user-event table.  No external assets,
no JavaScript — it opens anywhere.
"""

from __future__ import annotations

import html
import os
from pathlib import Path
from typing import Optional

from ..core.model import DataSource
from ..core.toolkit.stats import (
    all_event_statistics, group_breakdown, load_imbalance, top_events,
)
from .barchart import format_value

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #1a1a2e; max-width: 70em; }
h1 { font-size: 1.4em; border-bottom: 2px solid #4a6fa5; padding-bottom: .3em; }
h2 { font-size: 1.1em; margin-top: 1.6em; color: #2e4a6f; }
table { border-collapse: collapse; width: 100%; font-size: .9em; }
th { text-align: left; background: #eef2f7; padding: .4em .6em; }
td { padding: .3em .6em; border-bottom: 1px solid #e3e8ef; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.hot td { background: #fdeaea; }
.meta { color: #555; font-size: .9em; }
svg text { font-size: 11px; font-family: inherit; }
"""


def html_report(
    source: DataSource,
    title: str = "PerfDMF trial report",
    metric: Optional[int] = None,
    top: int = 15,
) -> str:
    """Render ``source`` as a self-contained HTML document string."""
    if metric is None:
        time_metric = source.time_metric()
        metric = time_metric.index if time_metric is not None else 0
    metric_name = source.metrics[metric].name if source.metrics else "TIME"

    parts: list[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<p class='meta'>",
        f"{source.num_threads} threads &middot; "
        f"{source.num_interval_events} events &middot; "
        f"{source.num_metrics} metric(s) &middot; "
        f"displayed metric: {html.escape(metric_name)} &middot; "
        f"load imbalance {load_imbalance(source, metric):.2f}",
        "</p>",
    ]
    if source.metadata:
        parts.append("<h2>Trial metadata</h2><table>")
        for key in sorted(source.metadata):
            parts.append(
                f"<tr><th>{html.escape(key)}</th>"
                f"<td>{html.escape(str(source.metadata[key]))}</td></tr>"
            )
        parts.append("</table>")

    # group breakdown
    breakdown = group_breakdown(source, metric)
    total = sum(breakdown.values()) or 1.0
    parts.append("<h2>Group breakdown (total exclusive)</h2><table>")
    parts.append("<tr><th>group</th><th>total</th><th>fraction</th></tr>")
    for group, value in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        parts.append(
            f"<tr><td>{html.escape(group)}</td>"
            f"<td class='num'>{format_value(value)}</td>"
            f"<td class='num'>{100.0 * value / total:.1f}%</td></tr>"
        )
    parts.append("</table>")

    # aggregate bar chart (inline SVG)
    stats = top_events(source, n=top, metric=metric, by="mean_exclusive")
    parts.append(f"<h2>Mean exclusive {html.escape(metric_name)} (top {top})</h2>")
    parts.append(_svg_bars([(s.event, s.mean) for s in stats]))

    # per-event table with highlighting (imbalance > 1.5, like the text view)
    parts.append("<h2>Per-event statistics</h2><table>")
    parts.append(
        "<tr><th>event</th><th>mean excl</th><th>max excl</th>"
        "<th>total</th><th>imbalance</th></tr>"
    )
    for s in sorted(all_event_statistics(source, metric), key=lambda s: -s.mean):
        hot = " class='hot'" if s.imbalance > 1.5 else ""
        parts.append(
            f"<tr{hot}><td>{html.escape(s.event)}</td>"
            f"<td class='num'>{format_value(s.mean)}</td>"
            f"<td class='num'>{format_value(s.maximum)}</td>"
            f"<td class='num'>{format_value(s.total)}</td>"
            f"<td class='num'>{s.imbalance:.2f}</td></tr>"
        )
    parts.append("</table>")

    # user events
    if source.atomic_events:
        parts.append("<h2>User events</h2><table>")
        parts.append(
            "<tr><th>event</th><th>samples</th><th>min</th><th>mean</th>"
            "<th>max</th></tr>"
        )
        for event in source.atomic_events.values():
            count = 0
            vmin = float("inf")
            vmax = 0.0
            weighted = 0.0
            for thread in source.all_threads():
                up = thread.user_event_profiles.get(event.index)
                if up is None or up.count == 0:
                    continue
                count += up.count
                vmin = min(vmin, up.min_value)
                vmax = max(vmax, up.max_value)
                weighted += up.mean_value * up.count
            if count == 0:
                continue
            parts.append(
                f"<tr><td>{html.escape(event.name)}</td>"
                f"<td class='num'>{count}</td>"
                f"<td class='num'>{vmin:.4g}</td>"
                f"<td class='num'>{weighted / count:.4g}</td>"
                f"<td class='num'>{vmax:.4g}</td></tr>"
            )
        parts.append("</table>")

    parts.append("</body></html>")
    return "".join(parts)


def _svg_bars(rows: list[tuple[str, float]], width: int = 760) -> str:
    if not rows:
        return "<p>(no data)</p>"
    bar_height = 20
    gap = 6
    label_width = 240
    height = len(rows) * (bar_height + gap)
    scale = max(value for _l, value in rows) or 1.0
    out = [
        f"<svg width='{width}' height='{height}' "
        "xmlns='http://www.w3.org/2000/svg'>"
    ]
    for i, (label, value) in enumerate(rows):
        y = i * (bar_height + gap)
        bar = (width - label_width - 90) * value / scale
        out.append(
            f"<text x='{label_width - 8}' y='{y + 14}' text-anchor='end'>"
            f"{html.escape(label[:34])}</text>"
        )
        out.append(
            f"<rect x='{label_width}' y='{y}' width='{bar:.1f}' "
            f"height='{bar_height}' fill='#4a6fa5'/>"
        )
        out.append(
            f"<text x='{label_width + bar + 6:.1f}' y='{y + 14}'>"
            f"{html.escape(format_value(value))}</text>"
        )
    out.append("</svg>")
    return "".join(out)


def write_html_report(
    source: DataSource,
    path: str | os.PathLike,
    title: str = "PerfDMF trial report",
    metric: Optional[int] = None,
) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html_report(source, title, metric), encoding="utf-8")
    return out
