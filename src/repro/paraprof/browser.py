"""The ParaProf archive browser: the Figure 2 tree + display windows.

Renders the application → experiment → trial tree of a PerfDMF archive
(the left pane of Figure 2) and opens "windows" (text displays) on
selected trials, exactly the workflow the paper demonstrates with
HPMToolkit, mpiP and TAU trials side by side in one database.
"""

from __future__ import annotations

from typing import Optional

from ..core.model import DataSource
from .displays import (
    aggregate_view, comparative_event_view, summary_text_view,
    thread_profile_view, userevent_view,
)
from .manager import ArchiveManager


class ProfileBrowser:
    """Interactive-style browser over a PerfDMF archive."""

    def __init__(self, manager: ArchiveManager):
        self.manager = manager
        self._open_trial: Optional[DataSource] = None
        self._open_label = ""

    # -- tree -------------------------------------------------------------------

    def render_tree(self) -> str:
        """The archive tree, ParaProf's left-hand pane."""
        tree = self.manager.tree()
        lines = ["Performance Data Archive"]
        for app_name, experiments in tree.items():
            lines.append(f"└─ {app_name}")
            for exp_name, trials in experiments.items():
                lines.append(f"   └─ {exp_name}")
                for trial_name in trials:
                    lines.append(f"      └─ {trial_name}")
        return "\n".join(lines)

    # -- selection -----------------------------------------------------------------

    def open_trial(self, application: str, experiment: str, trial: str) -> DataSource:
        """Load a trial from the archive into the browser."""
        record = self.manager.find_trial(application, experiment, trial)
        if record is None:
            raise LookupError(
                f"no trial {application}/{experiment}/{trial} in archive"
            )
        self._open_trial = self.manager.load_trial(record)
        self._open_label = f"{application}/{experiment}/{trial}"
        return self._open_trial

    @property
    def current(self) -> DataSource:
        if self._open_trial is None:
            raise RuntimeError("no trial open; call open_trial() first")
        return self._open_trial

    # -- windows ----------------------------------------------------------------------

    def show_aggregate(self, metric: int | None = None, top: int = 20) -> str:
        return f"[{self._open_label}]\n" + aggregate_view(self.current, metric, top)

    def show_thread(
        self, node: int, context: int = 0, thread_id: int = 0, metric: int | None = None
    ) -> str:
        return f"[{self._open_label}]\n" + thread_profile_view(
            self.current, node, context, thread_id, metric
        )

    def show_event(self, event_name: str, metric: int | None = None) -> str:
        return f"[{self._open_label}]\n" + comparative_event_view(
            self.current, event_name, metric
        )

    def show_summary(self, metric: int | None = None) -> str:
        return f"[{self._open_label}]\n" + summary_text_view(self.current, metric)

    def show_userevents(self) -> str:
        return f"[{self._open_label}]\n" + userevent_view(self.current)
