"""ParaProf-style profile displays, rendered to text.

ParaProf *"implements graphical displays of all performance analysis
results in aggregate and single node/context/thread forms ... the
ability to compare the behavior of one instrumented event across all
threads of execution, and offers summary text views of performance
data, with various groupings and contextual highlighting"* (paper
§5.1).  Each display here is one of those views: a deterministic text
rendering that tests can assert on and terminals can show.
"""

from __future__ import annotations

from typing import Optional

from ..core.model import DataSource, Thread
from ..core.toolkit.stats import (
    all_event_statistics, event_values, group_breakdown, top_events,
)
from .barchart import bar_table, format_value


def _resolve_metric(source: DataSource, metric: int | None) -> int:
    """Default to the wall-clock metric (ParaProf's behaviour) — after a
    multi-counter import metric 0 is merely alphabetically first."""
    if metric is not None:
        return metric
    time_metric = source.time_metric()
    return time_metric.index if time_metric is not None else 0



def thread_profile_view(
    source: DataSource,
    node: int,
    context: int = 0,
    thread_id: int = 0,
    metric: int | None = None,
    top: int = 20,
) -> str:
    """Single node/context/thread display: exclusive-time bars."""
    metric = _resolve_metric(source, metric)
    thread = source.get_thread(node, context, thread_id)
    if thread is None:
        raise KeyError(f"no thread ({node},{context},{thread_id}) in trial")
    metric_name = source.metrics[metric].name if source.metrics else "TIME"
    rows = sorted(
        (
            (p.event.name, p.get_exclusive(metric))
            for p in thread.function_profiles.values()
        ),
        key=lambda r: r[1],
        reverse=True,
    )[:top]
    header = (
        f"node {node}, context {context}, thread {thread_id} — "
        f"exclusive {metric_name}\n"
    )
    return header + bar_table(rows)


def aggregate_view(source: DataSource, metric: int | None = None, top: int = 20) -> str:
    """Mean-over-threads display (the ParaProf default window)."""
    metric = _resolve_metric(source, metric)
    stats = top_events(source, n=top, metric=metric, by="mean_exclusive")
    metric_name = source.metrics[metric].name if source.metrics else "TIME"
    rows = [(s.event, s.mean) for s in stats]
    return f"mean exclusive {metric_name} over {source.num_threads} threads\n" + bar_table(rows)


def comparative_event_view(
    source: DataSource, event_name: str, metric: int | None = None, inclusive: bool = False
) -> str:
    """One event across all threads — ParaProf's comparison window."""
    metric = _resolve_metric(source, metric)
    values = event_values(source, event_name, metric, inclusive)
    kind = "inclusive" if inclusive else "exclusive"
    rows = []
    for thread, value in zip(source.all_threads(), values):
        node, ctx, thr = thread.triple
        rows.append((f"n,c,t {node},{ctx},{thr}", float(value)))
    return f"{event_name} — {kind} per thread\n" + bar_table(rows)


def summary_text_view(source: DataSource, metric: int | None = None) -> str:
    """Summary text view with group breakdown and event table.

    Events whose max/mean imbalance exceeds 1.5 are highlighted with a
    ``*`` marker (ParaProf's "contextual highlighting").
    """
    metric = _resolve_metric(source, metric)
    metric_name = source.metrics[metric].name if source.metrics else "TIME"
    lines = [
        f"Trial summary — {source.num_threads} threads, "
        f"{source.num_interval_events} events, metric {metric_name}",
        "",
        "Group breakdown (total exclusive):",
    ]
    breakdown = group_breakdown(source, metric)
    total = sum(breakdown.values()) or 1.0
    for group, value in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        lines.append(
            f"  {group:<16} {format_value(value)}  ({100.0 * value / total:.1f}%)"
        )
    lines.append("")
    lines.append(
        "%-36s %12s %12s %12s %8s" % ("event", "mean excl", "max excl", "total", "imbal")
    )
    for stats in sorted(
        all_event_statistics(source, metric), key=lambda s: -s.mean
    ):
        marker = "*" if stats.imbalance > 1.5 else " "
        lines.append(
            "%-36s %12s %12s %12s %7.2f%s"
            % (
                stats.event[:36],
                format_value(stats.mean),
                format_value(stats.maximum),
                format_value(stats.total),
                stats.imbalance,
                marker,
            )
        )
    return "\n".join(lines)


def userevent_view(source: DataSource, top: int = 20) -> str:
    """Atomic (user-defined) event summary across threads."""
    lines = ["User events", "%-32s %10s %12s %12s %12s %12s" % (
        "event", "samples", "min", "mean", "max", "stddev")]
    rows = []
    for event in source.atomic_events.values():
        count = 0
        vmin = float("inf")
        vmax = 0.0
        total = 0.0
        sumsq = 0.0
        for thread in source.all_threads():
            up = thread.user_event_profiles.get(event.index)
            if up is None or up.count == 0:
                continue
            count += up.count
            vmin = min(vmin, up.min_value)
            vmax = max(vmax, up.max_value)
            total += up.mean_value * up.count
            sumsq += up.sumsqr
        if count == 0:
            continue
        mean = total / count
        variance = max(sumsq / count - mean * mean, 0.0)
        rows.append((event.name, count, vmin, mean, vmax, variance**0.5))
    for name, count, vmin, mean, vmax, std in sorted(rows, key=lambda r: -r[1])[:top]:
        lines.append(
            "%-32s %10d %12.4g %12.4g %12.4g %12.4g"
            % (name[:32], count, vmin, mean, vmax, std)
        )
    return "\n".join(lines)
