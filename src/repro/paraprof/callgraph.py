"""Text rendering of the trial call graph (ParaProf's callgraph window).

Requires callpath events (``a => b``) in the trial; the graph itself is
built by :func:`repro.core.model.build_call_graph` on networkx.  The
display annotates each call-tree node with its mean inclusive time and
fraction of the root, indented by depth::

    main                      100.0%     1.203 s
    ├─ solve                   62.1%   746.90 ms
    │  └─ MPI_Send()           11.4%   136.73 ms
    └─ io                      20.3%   244.21 ms
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from ..core.model import DataSource, build_call_graph
from ..core.model.events import CALLPATH_SEPARATOR
from ..core.toolkit.stats import event_statistics
from .barchart import format_value


def call_tree_view(
    source: DataSource, metric: int = 0, max_depth: int = 6
) -> str:
    """Render the callpath profile as an annotated tree."""
    callpath_events = [
        e for e in source.interval_events.values() if e.is_callpath()
    ]
    flat_roots = _find_roots(source)
    if not callpath_events and not flat_roots:
        return "(no callpath data in this trial)"

    # mean inclusive per full path (flat roots use their own name)
    mean_of: dict[str, float] = {}
    for event in source.interval_events.values():
        mean_of[event.name] = event_statistics(
            source, event.name, metric, inclusive=True
        ).mean

    # children per path prefix
    children: dict[str, list[str]] = {}
    for event in callpath_events:
        parent = event.parent_name
        if parent is not None:
            children.setdefault(parent, []).append(event.name)

    reference = max((mean_of.get(r, 0.0) for r in flat_roots), default=0.0)
    if reference <= 0:
        reference = max(mean_of.values(), default=1.0)

    lines: list[str] = []

    def emit(path: str, depth: int, prefix: str, is_last: bool) -> None:
        if depth > max_depth:
            return
        label = path.rsplit(CALLPATH_SEPARATOR, 1)[-1].strip()
        mean = mean_of.get(path, 0.0)
        pct = 100.0 * mean / reference if reference > 0 else 0.0
        connector = "" if depth == 0 else ("└─ " if is_last else "├─ ")
        text = f"{prefix}{connector}{label}"
        lines.append(f"{text:<44} {pct:5.1f}%  {format_value(mean):>12}")
        kids = sorted(
            children.get(path, []), key=lambda k: -mean_of.get(k, 0.0)
        )
        child_prefix = prefix if depth == 0 else prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(kids):
            emit(child, depth + 1, child_prefix, i == len(kids) - 1)

    for root in sorted(flat_roots, key=lambda r: -mean_of.get(r, 0.0)):
        emit(root, 0, "", True)
    return "\n".join(lines)


def _find_roots(source: DataSource) -> list[str]:
    """Flat events that never appear as callees in any callpath."""
    callees: set[str] = set()
    has_callpath = False
    for event in source.interval_events.values():
        if event.is_callpath():
            has_callpath = True
            for component in event.path_components()[1:]:
                callees.add(component)
    roots = [
        e.name
        for e in source.interval_events.values()
        if not e.is_callpath() and e.name not in callees
    ]
    if not has_callpath:
        return []
    return roots


def call_graph_dot(source: DataSource) -> str:
    """The call graph in Graphviz DOT form (for external rendering)."""
    graph = build_call_graph(source)
    lines = ["digraph callgraph {"]
    for node in graph.nodes:
        lines.append(f'  "{node}";')
    for a, b, data in graph.edges(data=True):
        lines.append(f'  "{a}" -> "{b}" [label="{data.get("paths", 1)}"];')
    lines.append("}")
    return "\n".join(lines)


def call_graph_stats(source: DataSource) -> dict[str, float]:
    """Structural statistics of the call graph (networkx-powered)."""
    graph = build_call_graph(source)
    if graph.number_of_nodes() == 0:
        return {"nodes": 0, "edges": 0, "depth": 0, "is_dag": True}
    is_dag = nx.is_directed_acyclic_graph(graph)
    depth = nx.dag_longest_path_length(graph) if is_dag else -1
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "depth": depth,
        "is_dag": is_dag,
    }
