"""Text bar-chart rendering primitives for the ParaProf displays."""

from __future__ import annotations

from typing import Sequence


def format_value(value: float, unit: str = "usec") -> str:
    """Human-readable rendering of a microsecond (or plain) value."""
    if unit == "usec":
        if value >= 6.0e7:
            return f"{value / 6.0e7:.2f} min"
        if value >= 1.0e6:
            return f"{value / 1.0e6:.3f} s"
        if value >= 1.0e3:
            return f"{value / 1.0e3:.2f} ms"
        return f"{value:.1f} us"
    if abs(value) >= 1.0e9:
        return f"{value / 1.0e9:.2f}G"
    if abs(value) >= 1.0e6:
        return f"{value / 1.0e6:.2f}M"
    if abs(value) >= 1.0e3:
        return f"{value / 1.0e3:.2f}K"
    return f"{value:.1f}"


def horizontal_bar(
    fraction: float, width: int = 40, fill: str = "█", empty: str = " "
) -> str:
    """A fixed-width bar filled proportionally to ``fraction`` ∈ [0, 1]."""
    fraction = min(max(fraction, 0.0), 1.0)
    n = round(fraction * width)
    return fill * n + empty * (width - n)


def bar_table(
    rows: Sequence[tuple[str, float]],
    width: int = 40,
    label_width: int = 32,
    unit: str = "usec",
    reference: float | None = None,
) -> str:
    """Render (label, value) rows as aligned bars scaled to the max."""
    if not rows:
        return "(no data)"
    scale = reference if reference is not None else max(v for _, v in rows)
    lines = []
    for label, value in rows:
        fraction = value / scale if scale > 0 else 0.0
        lines.append(
            f"{label[:label_width]:<{label_width}} "
            f"|{horizontal_bar(fraction, width)}| {format_value(value, unit)}"
        )
    return "\n".join(lines)
