"""ParaProf's database-manager role: feeding the shared archive.

Paper §5.1: *"ParaProf can also be used to input data into the database
... providing a graphical user interface which analysts can use to
store and view performance profiles in a shared data repository."*

:class:`ArchiveManager` is that ingestion/retrieval surface: import any
supported profile format into an application/experiment/trial slot,
list the archive, and pull trials back out.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from ..core.io_.registry import load_profile
from ..core.model import DataSource
from ..core.session.dbsession import PerfDMFSession
from ..core.api.entities import Application, Experiment, Trial


class ArchiveManager:
    """Store/retrieve profiles in a shared PerfDMF archive."""

    def __init__(self, session: PerfDMFSession | str):
        if isinstance(session, str):
            session = PerfDMFSession(session)
        self.session = session

    # -- ingestion -------------------------------------------------------------

    def import_profile(
        self,
        target: str | os.PathLike | DataSource,
        application: str,
        experiment: str,
        trial: str,
        format_name: Optional[str] = None,
        **trial_fields: Any,
    ) -> Trial:
        """Parse ``target`` (any supported format) and store it.

        Creates the application and experiment rows on first use, so an
        analyst can drop trials from different profiling tools into one
        shared archive — the Figure 2 scenario.
        """
        source = (
            target
            if isinstance(target, DataSource)
            else load_profile(target, format_name)
        )
        app = self.session.get_or_create_application(application)
        exp = self._get_or_create_experiment(app, experiment)
        return self.session.save_trial(source, exp, trial, **trial_fields)

    def _get_or_create_experiment(self, app: Application, name: str) -> Experiment:
        self.session.set_application(app)
        for exp in self.session.get_experiment_list():
            if exp.name == name:
                return exp
        return self.session.create_experiment(app, name)

    # -- retrieval ----------------------------------------------------------------

    def load_trial(self, trial: Trial | int) -> DataSource:
        return self.session.load_datasource(trial)

    def tree(self) -> dict[str, dict[str, list[str]]]:
        """The archive as {application: {experiment: [trial, ...]}}."""
        out: dict[str, dict[str, list[str]]] = {}
        self.session.reset_selection()
        for app in self.session.get_application_list():
            self.session.set_application(app)
            experiments: dict[str, list[str]] = {}
            for exp in self.session.get_experiment_list():
                self.session.set_experiment(exp)
                experiments[exp.name or "?"] = [
                    t.name or "?" for t in self.session.get_trial_list()
                ]
            out[app.name or "?"] = experiments
        self.session.reset_selection()
        return out

    def find_trial(
        self, application: str, experiment: str, trial: str
    ) -> Optional[Trial]:
        self.session.reset_selection()
        app = self.session.get_application(application)
        if app is None:
            return None
        self.session.set_application(app)
        for exp in self.session.get_experiment_list():
            if exp.name != experiment:
                continue
            self.session.set_experiment(exp)
            for t in self.session.get_trial_list():
                if t.name == trial:
                    self.session.reset_selection()
                    return t
        self.session.reset_selection()
        return None
