"""Command-line tools for the PerfDMF framework.

The original PerfDMF distribution shipped shell tools
(``perfdmf_configure``, ``perfdmf_createapp``, ``perfdmf_loadtrial``)
so analysts could drive the framework without writing Java.  This module
is their Python equivalent: one entry point with subcommands::

    python -m repro.cli configure  --db sqlite:///tmp/perf.db
    python -m repro.cli load       --db ... --app evh1 --exp scaling \\
                                   --trial P=8 /path/to/profiles
    python -m repro.cli list       --db ...
    python -m repro.cli show       --db ... --trial-id 3 [--view summary]
    python -m repro.cli export     --db ... --trial-id 3 -o trial.xml
    python -m repro.cli aggregate  --db ... --trial-id 3 --event riemann \\
                                   --op mean
    python -m repro.cli derive     --db ... --trial-id 3 --name FLOPS \\
                                   --expr "PAPI_FP_OPS / TIME"
    python -m repro.cli speedup    --db ... --app evh1 --exp scaling
    python -m repro.cli cluster    --db ... --trial-id 3 --metric PAPI_FP_OPS

Every subcommand returns a process exit code and prints plain text, so
the tools compose in shell pipelines; all database work goes through the
same public API the library exposes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .core.io_ import export_xml
from .core.session import PerfDMFSession
from .core.toolkit import SpeedupAnalyzer
from .paraprof import (
    ArchiveManager, ProfileBrowser, aggregate_view, summary_text_view,
    comparative_event_view, userevent_view,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="perfdmf",
        description="PerfDMF performance data management tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_db(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--db", required=True,
            help="database URL, e.g. sqlite:///path/archive.db, "
                 "minisql://name (in-memory), or minisql:///path/archive.mdb "
                 "(durable file archive with WAL crash recovery)",
        )

    p = sub.add_parser("configure", help="create the PerfDMF schema")
    add_db(p)

    def add_trace(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", metavar="FILE", default=None,
            help="record trace spans and write them to FILE on exit "
                 "(Chrome trace-event format; .jsonl for JSON lines)",
        )

    p = sub.add_parser("load", help="import a profile into the archive")
    add_db(p)
    p.add_argument("target", help="profile file or directory")
    p.add_argument("--app", required=True, help="application name")
    p.add_argument("--exp", required=True, help="experiment name")
    p.add_argument("--trial", required=True, help="trial name")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="shard the archive N ways before loading (minisql "
                        "file archives: parallel per-shard ingest writers)")
    p.add_argument("--format", dest="format_name", default=None,
                   help="profile format (default: auto-detect)")
    p.add_argument("--stats", action="store_true",
                   help="print per-stage ingest timings after the load")
    add_trace(p)

    p = sub.add_parser("list", help="list the application/experiment/trial tree")
    add_db(p)

    p = sub.add_parser("show", help="display a stored trial")
    add_db(p)
    p.add_argument("--trial-id", type=int, required=True)
    p.add_argument("--view", default="aggregate",
                   choices=("aggregate", "summary", "userevents", "event"))
    p.add_argument("--event", default=None, help="event name for --view event")
    p.add_argument("--top", type=int, default=20)

    p = sub.add_parser("export", help="export a trial to common XML")
    add_db(p)
    p.add_argument("--trial-id", type=int, required=True)
    p.add_argument("-o", "--output", required=True)

    p = sub.add_parser("aggregate", help="run a SQL aggregate on a trial")
    add_db(p)
    p.add_argument("--trial-id", type=int, required=True)
    p.add_argument("--op", default="mean",
                   choices=("min", "max", "mean", "sum", "count", "stddev"))
    p.add_argument("--column", default="exclusive")
    p.add_argument("--event", default=None)
    p.add_argument("--metric", default=None)
    add_trace(p)

    p = sub.add_parser("derive", help="add a derived metric to a stored trial")
    add_db(p)
    p.add_argument("--trial-id", type=int, required=True)
    p.add_argument("--name", required=True)
    p.add_argument("--expr", required=True,
                   help='e.g. "PAPI_FP_OPS / TIME"')

    p = sub.add_parser("speedup", help="speedup analysis over an experiment")
    add_db(p)
    p.add_argument("--app", required=True)
    p.add_argument("--exp", required=True)
    p.add_argument("--top", type=int, default=0,
                   help="limit report to the N worst-scaling routines")

    p = sub.add_parser("cluster", help="k-means cluster analysis of a trial")
    add_db(p)
    p.add_argument("--trial-id", type=int, required=True)
    p.add_argument("--metric", default=None)
    p.add_argument("-k", type=int, default=None,
                   help="cluster count (default: silhouette-selected)")
    p.add_argument("--max-k", type=int, default=6)

    p = sub.add_parser("transfer", help="copy trials between archives")
    p.add_argument("--from-db", required=True, dest="from_db")
    p.add_argument("--to-db", required=True, dest="to_db")
    p.add_argument("--trial-id", type=int, default=None,
                   help="one trial (default: synchronise everything missing)")
    p.add_argument("--rename", default=None)

    p = sub.add_parser("workflow", help="run a JSON analysis workflow")
    add_db(p)
    p.add_argument("file", help="path to the workflow JSON file")

    p = sub.add_parser("serve", help="start a PerfExplorer analysis server")
    # --db is not required here: a --replica-of server gets its database
    # from the primary's checkpoint + WAL, not from a URL.
    p.add_argument(
        "--db", default=None,
        help="database URL, e.g. sqlite:///path/archive.db, "
             "minisql://name (in-memory), or minisql:///path/archive.mdb "
             "(durable file archive with WAL crash recovery); required "
             "unless --replica-of is given",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--once", action="store_true",
                   help="print the address and exit (testing)")
    p.add_argument("--telemetry-port", type=int, default=0, metavar="PORT",
                   help="HTTP port for /metrics, /healthz and /stats.json "
                        "(default: any free port)")
    p.add_argument("--no-telemetry", action="store_true",
                   help="do not start the HTTP telemetry endpoint")
    p.add_argument("--replica-of", default=None, metavar="HOST:PORT",
                   help="serve as a read-only replica of this primary: "
                        "bootstrap from its checkpoint, tail its WAL, "
                        "reject mutating methods (--db is ignored)")
    p.add_argument("--replica-name", default=None,
                   help="replica identity reported to the primary "
                        "(default: replica-<pid>)")
    p.add_argument("--max-in-flight", type=int, default=None, metavar="N",
                   help="admission control: shed requests (RETRY_LATER) "
                        "past N concurrent dispatches")
    p.add_argument("--core", default="async", choices=("async", "threaded"),
                   help="serving core: 'async' (event-loop multiplexer, "
                        "default) or 'threaded' (one thread per "
                        "connection, the pre-rebuild engine)")
    p.add_argument("--max-connections", type=int, default=None, metavar="N",
                   help="async core: refuse connections past N concurrent "
                        "clients (counted in "
                        "server.connections_refused_total)")
    p.add_argument("--executor-threads", type=int, default=8, metavar="N",
                   help="async core: worker threads executing dispatched "
                        "requests (default 8)")
    p.add_argument("--idle-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="async core: reap connections idle this long with "
                        "no request in flight (default: never)")
    p.add_argument("--partial-frame-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="async core: reap connections stalled mid-frame "
                        "this long — the slowloris guard (default 30)")
    add_trace(p)

    p = sub.add_parser(
        "replicas",
        help="show a live server's replication role, attached replicas "
             "and lag",
    )
    p.add_argument("server", metavar="HOST:PORT",
                   help="address of the primary or replica to inspect")
    p.add_argument("--format", default="text", choices=("text", "json"))

    p = sub.add_parser(
        "stats", help="dump/reset/watch the observability metrics registry"
    )
    p.add_argument(
        "--db", default=None,
        help="absorb this database's counters into the registry first",
    )
    p.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="read a live PerfExplorer server's registry over RPC "
             "instead of this process's (tolerates server restarts "
             "under --watch)",
    )
    p.add_argument("--format", default="text",
                   choices=("text", "json", "prometheus"))
    p.add_argument("--reset", action="store_true",
                   help="zero every metric after printing")
    p.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                   help="re-print every SECONDS until interrupted")
    p.add_argument("--watch-count", type=int, default=None,
                   help=argparse.SUPPRESS)  # bounded watch, for tests

    p = sub.add_parser(
        "bench",
        help="continuous benchmarking: archive BENCH_*.json runs, "
             "report history, detect regressions",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    def add_history(bp: argparse.ArgumentParser) -> None:
        bp.add_argument(
            "--history", default="bench_history.mdb",
            help="bench history archive: a .mdb path or any database "
                 "URL (default: ./bench_history.mdb)",
        )

    bp = bench_sub.add_parser(
        "ingest", help="store BENCH_*.json payloads as trials"
    )
    add_history(bp)
    bp.add_argument("files", nargs="+", help="BENCH_*.json files to ingest")
    bp.add_argument("--sha", default=None,
                    help="git SHA for files missing an envelope")
    bp.add_argument("--timestamp", default=None,
                    help="ISO timestamp for files missing an envelope")

    bp = bench_sub.add_parser("report", help="print the stored history")
    add_history(bp)
    bp.add_argument("--key", default=None, metavar="GLOB",
                    help="only series matching this experiment.metric glob")
    bp.add_argument("--last", type=int, default=8,
                    help="show at most the last N runs per series")

    bp = bench_sub.add_parser(
        "regress",
        help="windowed change-point detection (Welch's t-test + "
             "median-shift guard); exits 2 when a regression is found",
    )
    add_history(bp)
    bp.add_argument("--key", default=None, metavar="GLOB",
                    help="only test series matching this glob")
    bp.add_argument("--policy", default=None, metavar="FILE",
                    help="JSON policy with per-key threshold overrides")
    bp.add_argument("--threshold", type=float, default=None,
                    help="minimum worse-direction median shift "
                         "(default 0.25)")
    bp.add_argument("--alpha", type=float, default=None,
                    help="Welch p-value cut (default 0.01)")
    bp.add_argument("--recent", type=int, default=None,
                    help="runs in the regression window (default 3)")
    bp.add_argument("--baseline", type=int, default=None,
                    help="max runs in the baseline window (default 12)")
    bp.add_argument("--min-runs", type=int, default=None,
                    help="series shorter than this are skipped (default 6)")
    bp.add_argument("--report", default=None, metavar="FILE",
                    help="also write the report to FILE")
    bp.add_argument("--strict", action="store_true",
                    help="also fail when the archive is missing or empty")

    p = sub.add_parser(
        "sql", help="run one SQL statement (e.g. EXPLAIN ANALYZE) and "
                    "print the result rows"
    )
    add_db(p)
    p.add_argument("statement", help="the SQL statement to execute")

    p = sub.add_parser("shell", help="interactive ParaProf archive shell")
    add_db(p)

    p = sub.add_parser("report", help="write a static HTML report of a trial")
    add_db(p)
    p.add_argument("--trial-id", type=int, required=True)
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--title", default=None)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "configure": _cmd_configure,
        "load": _cmd_load,
        "list": _cmd_list,
        "show": _cmd_show,
        "export": _cmd_export,
        "aggregate": _cmd_aggregate,
        "derive": _cmd_derive,
        "speedup": _cmd_speedup,
        "cluster": _cmd_cluster,
        "transfer": _cmd_transfer,
        "workflow": _cmd_workflow,
        "serve": _cmd_serve,
        "replicas": _cmd_replicas,
        "shell": _cmd_shell,
        "report": _cmd_report,
        "stats": _cmd_stats,
        "sql": _cmd_sql,
        "bench": _cmd_bench,
    }[args.command]
    tracing = _start_trace(args)
    try:
        return handler(args)
    except (ValueError, LookupError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if tracing:
            _finish_trace(args)


# -- tracing plumbing ---------------------------------------------------------


def _start_trace(args) -> bool:
    """Enable span collection when the subcommand got ``--trace FILE``."""
    if getattr(args, "trace", None) is None:
        return False
    from .obs import tracer

    tracer.clear()
    tracer.enable()
    return True


def _finish_trace(args) -> None:
    from .obs import tracer

    tracer.disable()
    path = args.trace
    if str(path).endswith(".jsonl"):
        count = tracer.export_jsonl(path)
    else:
        count = tracer.export_chrome(path)
    print(f"wrote {count} trace span(s) to {path}")


# -- handlers ----------------------------------------------------------------


def _cmd_configure(args) -> int:
    session = PerfDMFSession(args.db)
    problems = session.schema.verify()
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    print(f"PerfDMF schema ready at {args.db}")
    session.close()
    return 0


def _cmd_load(args) -> int:
    manager = ArchiveManager(args.db)
    if args.shards is not None:
        manager.session.connection.execute(f"PRAGMA shards({args.shards})")
    trial = manager.import_profile(
        args.target, args.app, args.exp, args.trial,
        format_name=args.format_name,
    )
    session = manager.session
    session.set_trial(trial)
    points = session.count_data_points()
    print(
        f"loaded trial '{args.trial}' (id={trial.id}) into "
        f"{args.app}/{args.exp}: {points:,} data points, "
        f"metrics: {', '.join(session.get_metrics())}"
    )
    if args.stats:
        _print_ingest_stats(session.connection.stats())
    session.close()
    return 0


def _print_ingest_stats(stats: dict) -> None:
    """Per-stage ingest timings collected by ``save_trial``."""
    stages = (
        ("parse", "ingest_parse_seconds"),
        ("insert", "ingest_insert_seconds"),
        ("index rebuild", "ingest_index_seconds"),
        ("summaries", "ingest_summary_seconds"),
    )
    print("ingest stage timings:")
    for label, key in stages:
        if key in stats:
            print(f"  {label:<14} {stats[key] * 1000.0:>10.1f} ms")
    if "ingest_rows" in stats:
        print(f"  {'rows':<14} {int(stats['ingest_rows']):>10,}")
    if "ingest_rows_per_second" in stats:
        print(f"  {'rows/second':<14} {stats['ingest_rows_per_second']:>10,.0f}")


def _cmd_list(args) -> int:
    manager = ArchiveManager(args.db)
    browser = ProfileBrowser(manager)
    print(browser.render_tree())
    # trial ids, for the --trial-id options
    session = manager.session
    session.reset_selection()
    rows = session.connection.query(
        "SELECT t.id, a.name, e.name, t.name FROM trial t "
        "JOIN experiment e ON t.experiment = e.id "
        "JOIN application a ON e.application = a.id ORDER BY t.id"
    )
    if rows:
        print("\ntrial ids:")
        for trial_id, app, exp, trial in rows:
            print(f"  {trial_id:>4}  {app}/{exp}/{trial}")
    session.close()
    return 0


def _cmd_show(args) -> int:
    session = PerfDMFSession(args.db)
    source = session.load_datasource(args.trial_id)
    if args.view == "aggregate":
        print(aggregate_view(source, top=args.top))
    elif args.view == "summary":
        print(summary_text_view(source))
    elif args.view == "userevents":
        print(userevent_view(source, top=args.top))
    elif args.view == "event":
        if not args.event:
            print("error: --view event requires --event", file=sys.stderr)
            return 1
        print(comparative_event_view(source, args.event))
    session.close()
    return 0


def _cmd_export(args) -> int:
    session = PerfDMFSession(args.db)
    source = session.load_datasource(args.trial_id)
    path = export_xml(source, args.output)
    print(f"exported trial {args.trial_id} to {path}")
    session.close()
    return 0


def _cmd_aggregate(args) -> int:
    session = PerfDMFSession(args.db)
    session.set_trial(args.trial_id)
    value = session.aggregate(
        args.op, args.column, event_name=args.event, metric_name=args.metric
    )
    label = args.event or "all events"
    print(f"{args.op}({args.column}) over {label}: {value}")
    session.close()
    return 0


def _cmd_derive(args) -> int:
    session = PerfDMFSession(args.db)
    session.set_trial(args.trial_id)
    session.save_derived_metric(args.name, args.expr)
    print(f"added derived metric {args.name} = {args.expr} "
          f"to trial {args.trial_id}")
    session.close()
    return 0


def _cmd_speedup(args) -> int:
    session = PerfDMFSession(args.db)
    app = session.get_application(args.app)
    if app is None:
        print(f"error: no application {args.app!r}", file=sys.stderr)
        return 1
    session.set_application(app)
    experiment = None
    for exp in session.get_experiment_list():
        if exp.name == args.exp:
            experiment = exp
            break
    if experiment is None:
        print(f"error: no experiment {args.exp!r}", file=sys.stderr)
        return 1
    session.set_experiment(experiment)
    analyzer = SpeedupAnalyzer()
    for trial in session.get_trial_list():
        processors = trial.get("node_count") or 1
        analyzer.add_trial(processors, session.load_datasource(trial))
    print(analyzer.report(top=args.top))
    session.close()
    return 0


def _cmd_cluster(args) -> int:
    from .explorer import cluster_trial, summarize_clusters

    session = PerfDMFSession(args.db)
    source = session.load_datasource(args.trial_id)
    metric_index = 0
    if args.metric is not None:
        names = [m.name for m in source.metrics]
        if args.metric not in names:
            print(f"error: trial has no metric {args.metric!r}; "
                  f"available: {names}", file=sys.stderr)
            return 1
        metric_index = names.index(args.metric)
    result = cluster_trial(source, k=args.k, metric=metric_index,
                           max_k=args.max_k)
    print(f"k = {result.k}  sizes = {result.sizes}  "
          f"silhouette = {result.silhouette:.3f}")
    for summary in summarize_clusters(result):
        features = ", ".join(
            f"{f['name']} ({f['deviation']:+.3g})"
            for f in summary["features"][:3]
        )
        print(f"cluster {summary['cluster']} "
              f"({summary['size']} threads): {features}")
    session.close()
    return 0


def _cmd_transfer(args) -> int:
    from .paraprof import synchronize, transfer_trial

    source = PerfDMFSession(args.from_db)
    destination = PerfDMFSession(args.to_db)
    if args.trial_id is not None:
        trial = transfer_trial(
            source, destination, args.trial_id, rename=args.rename
        )
        print(f"transferred trial {args.trial_id} -> "
              f"'{trial.name}' (id={trial.id}) in {args.to_db}")
    else:
        created = synchronize(source, destination)
        print(f"synchronised {len(created)} trial(s) into {args.to_db}")
        for trial in created:
            print(f"  {trial.name} (id={trial.id})")
    source.close()
    destination.close()
    return 0


def _cmd_workflow(args) -> int:
    import json

    from .explorer import WorkflowError, run_workflow

    with open(args.file, encoding="utf-8") as fh:
        steps = json.load(fh)
    session = PerfDMFSession(args.db)
    try:
        slots = run_workflow(session, steps)
    except WorkflowError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        session.close()
    printable = {
        name: value
        for name, value in slots.items()
        if not hasattr(value, "interval_events")
    }
    print(json.dumps(printable, indent=2, default=str))
    return 0


def _parse_host_port(text: str, flag: str) -> tuple[str, int]:
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        raise ValueError(f"{flag} expects HOST:PORT, got {text!r}")
    return host, int(port_text)


def _cmd_serve(args) -> int:
    from .explorer import AnalysisServer, SocketServer, ThreadedSocketServer
    from .obs import configure_logging

    # Surface the per-request structured log on stderr.
    configure_logging(level="info")
    replica = None
    if args.replica_of:
        import os as _os

        from .db.minisql.replica import RemoteWalSource, Replica

        phost, pport = _parse_host_port(args.replica_of, "--replica-of")
        name = args.replica_name or f"replica-{_os.getpid()}"
        replica = Replica(RemoteWalSource(phost, pport, replica_id=name), name=name)
        replica.start()
        try:
            replica.catch_up(timeout=30.0)
            print(f"replica {name} caught up with {phost}:{pport} "
                  f"at lsn {replica.applied_lsn}")
        except Exception as exc:
            # Keep serving: the tail loop retries in the background and
            # the health endpoint reports the (growing) lag meanwhile.
            print(f"replica {name} still syncing with {phost}:{pport}: {exc}")
        analysis = AnalysisServer(
            replica.shared_url(), read_only=True, replica=replica
        )
    else:
        if not args.db:
            print("serve: --db is required unless --replica-of is given",
                  file=sys.stderr)
            return 2
        analysis = AnalysisServer(args.db)
    telemetry_port = None if args.no_telemetry else args.telemetry_port
    if args.core == "threaded":
        server = ThreadedSocketServer(
            analysis, host=args.host, port=args.port,
            telemetry_port=telemetry_port, max_in_flight=args.max_in_flight,
        )
    else:
        server = SocketServer(
            analysis, host=args.host, port=args.port,
            telemetry_port=telemetry_port, max_in_flight=args.max_in_flight,
            executor_threads=args.executor_threads,
            max_connections=args.max_connections,
            idle_timeout=args.idle_timeout,
            partial_frame_timeout=args.partial_frame_timeout,
        )
    host, port = server.start()
    role = "read-only replica" if replica is not None else "analysis"
    print(f"PerfExplorer {role} server listening on {host}:{port}")
    if server.telemetry_address is not None:
        thost, tport = server.telemetry_address
        print(
            f"telemetry endpoint on http://{thost}:{tport} "
            "(/metrics /healthz /stats.json)"
        )
    if args.once:
        server.stop()
        if replica is not None:
            replica.stop()
        return 0
    try:  # pragma: no cover - interactive
        import time

        while True:
            time.sleep(1)
    except KeyboardInterrupt:  # pragma: no cover
        server.stop()
        if replica is not None:
            replica.stop()
    return 0


def _cmd_replicas(args) -> int:
    import json

    from .explorer.client import PerfExplorerClient

    host, port = _parse_host_port(args.server, "server")
    with PerfExplorerClient(host, port, timeout=10.0) as client:
        status = client.replication_status()
    if args.format == "json":
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    role = status.get("role", "unknown")
    print(f"role: {role}")
    if role == "primary":
        print(f"last_lsn: {status.get('last_lsn')}")
        print(f"checkpoint_lsn: {status.get('checkpoint_lsn')}")
        replicas = status.get("replicas", {})
        if not replicas:
            print("replicas: none attached")
        for name, info in sorted(replicas.items()):
            lag = status.get("last_lsn", 0) - info.get("lsn", 0)
            print(
                f"  {name}: lsn {info.get('lsn')} "
                f"(behind by {max(0, lag)} records, last fetch "
                f"{info.get('seconds_since_fetch', '?')}s ago)"
            )
    elif role == "replica":
        for key in (
            "name", "state", "applied_lsn", "primary_lsn",
            "replication_lag_records", "replication_lag_seconds",
            "batches_applied", "resyncs", "errors",
        ):
            print(f"{key}: {status.get(key)}")
    else:
        print("(no WAL configured; replication unavailable)")
    return 0


def _cmd_report(args) -> int:
    from .paraprof import write_html_report

    session = PerfDMFSession(args.db)
    source = session.load_datasource(args.trial_id)
    title = args.title or f"PerfDMF trial {args.trial_id}"
    path = write_html_report(source, args.output, title=title)
    print(f"wrote HTML report to {path}")
    session.close()
    return 0


def _render_stats_text(snapshot: dict) -> None:
    if not snapshot:
        print("(metrics registry is empty)")
    for name, snap in snapshot.items():
        if snap["type"] == "histogram":
            if snap["count"]:
                line = (
                    f"{name}: count={snap['count']} "
                    f"sum={snap['sum']:.6g} mean={snap['mean']:.6g} "
                    f"min={snap['min']:.6g} max={snap['max']:.6g}"
                )
                if snap.get("p50") is not None:
                    line += (
                        f" p50={snap['p50']:.6g} p95={snap['p95']:.6g} "
                        f"p99={snap['p99']:.6g}"
                    )
                print(line)
            else:
                print(f"{name}: count=0")
        else:
            print(f"{name}: {snap['value']}")


def _cmd_stats(args) -> int:
    import json as _json

    from .obs import registry

    remote = None
    if args.server:
        host, _, port_text = args.server.rpartition(":")
        if not host or not port_text.isdigit():
            print(f"error: --server expects HOST:PORT, got {args.server!r}",
                  file=sys.stderr)
            return 1
        remote = (host, int(port_text))

    client_box: list = [None]

    def fetch_snapshot() -> dict:
        """The registry snapshot — local, or a live server's via RPC."""
        if remote is None:
            if args.db:
                from .db.api import connect

                # stats() publishes the database's counters into the
                # registry; re-absorbed every tick so --watch stays live.
                conn = connect(args.db)
                conn.stats()
                conn.close()
            return registry.snapshot()
        from .explorer.client import PerfExplorerClient
        from .explorer.protocol import ConnectTimeout, ProtocolError

        try:
            if client_box[0] is None:
                client_box[0] = PerfExplorerClient(remote[0], remote[1])
            return client_box[0].get_stats()["metrics"]
        except (ConnectTimeout, ProtocolError, OSError):
            # Drop the dead connection; the next attempt redials with
            # the client's own backoff.
            if client_box[0] is not None:
                client_box[0].close()
                client_box[0] = None
            raise

    def emit(snapshot: dict) -> None:
        if args.format == "json":
            import time as _time

            print(_json.dumps(
                {"ts": _time.time(), "metrics": snapshot},
                sort_keys=True, default=str,
            ))
        elif args.format == "prometheus":
            from .obs.metrics import render_prometheus

            print(render_prometheus(snapshot), end="")
        else:
            _render_stats_text(snapshot)

    if args.watch is not None:
        import time

        from .explorer.protocol import ConnectTimeout, ProtocolError

        remaining = args.watch_count
        try:
            while True:
                try:
                    emit(fetch_snapshot())
                except (ConnectTimeout, ProtocolError, OSError) as exc:
                    # A restarting server must not kill the watch loop.
                    print(f"(server unavailable: {exc}; retrying)",
                          file=sys.stderr)
                print("--", flush=True)
                if remaining is not None:
                    remaining -= 1
                    if remaining <= 0:
                        break
                time.sleep(args.watch)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            if client_box[0] is not None:
                client_box[0].close()
        return 0
    try:
        emit(fetch_snapshot())
    finally:
        if client_box[0] is not None:
            client_box[0].close()
    if args.reset:
        registry.reset()
        print("metrics registry reset", file=sys.stderr)
    return 0


def _cmd_sql(args) -> int:
    from .db.api import DatabaseError, connect

    conn = connect(args.db)
    try:
        cursor = conn.execute(args.statement)
        if cursor.description:
            headers = [d[0] for d in cursor.description]
            print("\t".join(headers))
            for row in cursor.fetchall():
                print("\t".join(str(value) for value in row))
        else:
            print(f"ok ({cursor.rowcount} row(s) affected)")
        conn.commit()
    except DatabaseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        conn.close()
    return 0


def _cmd_bench(args) -> int:
    return {
        "ingest": _cmd_bench_ingest,
        "report": _cmd_bench_report,
        "regress": _cmd_bench_regress,
    }[args.bench_command](args)


def _cmd_bench_ingest(args) -> int:
    from .obs.bench import BenchArchive, tidy_archive

    archive = BenchArchive(args.history)
    total = 0
    try:
        for path in args.files:
            runs = archive.ingest_file(
                path, default_sha=args.sha, default_timestamp=args.timestamp
            )
            total += len(runs)
            sections = ", ".join(r.experiment for r in runs) or "nothing new"
            print(f"{path}: stored {len(runs)} run(s) ({sections})")
    finally:
        archive.close()
    tidy_archive(args.history)
    print(f"ingested {total} new run(s) into {args.history}")
    return 0


def _cmd_bench_report(args) -> int:
    import fnmatch

    from .obs.bench import exact_quantile, median, open_for_reading

    archive = open_for_reading(args.history)
    try:
        experiments = archive.experiments()
        if not experiments:
            print("(bench history is empty)")
            return 0
        for name, trial_count in experiments:
            series = archive.series(name)
            keys = sorted(
                key for key in series
                if args.key is None
                or fnmatch.fnmatchcase(f"{name}.{key}", args.key)
                or fnmatch.fnmatchcase(key, args.key)
            )
            if not keys:
                continue
            print(f"{name} ({trial_count} runs)")
            for key in keys:
                points = series[key][-args.last:]
                values = [value for _, value in points]
                trend = " -> ".join(f"{value:.6g}" for value in values)
                print(
                    f"  {key}: {trend}  "
                    f"(n={len(series[key])} p50={median(values):.6g} "
                    f"p95={exact_quantile(values, 0.95):.6g})"
                )
            last_run = series[keys[0]][-1][0]
            print(f"  last run: {last_run.timestamp} @ {last_run.sha12}")
    finally:
        archive.close()
    return 0


def _cmd_bench_regress(args) -> int:
    import dataclasses
    import os

    from .obs.bench import (
        RegressPolicy, detect_regressions, format_regress_report,
        open_for_reading,
    )

    missing = "://" not in args.history and not os.path.exists(args.history)
    if missing:
        print(f"bench history {args.history} does not exist", file=sys.stderr)
        return 2 if args.strict else 0

    policy = (
        RegressPolicy.from_file(args.policy) if args.policy else RegressPolicy()
    )
    overrides = {
        field: getattr(args, field)
        for field in ("threshold", "alpha", "recent", "baseline", "min_runs")
        if getattr(args, field) is not None
    }
    if overrides:
        policy = dataclasses.replace(
            policy, defaults=dataclasses.replace(policy.defaults, **overrides)
        )

    archive = open_for_reading(args.history)
    try:
        report = detect_regressions(archive, policy, key_filter=args.key)
    finally:
        archive.close()
    text = format_regress_report(report)
    print(text)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote report to {args.report}", file=sys.stderr)
    if args.strict and not report.checked:
        print("--strict: no series had enough history to test",
              file=sys.stderr)
        return 2
    return 2 if report.regressed else 0


def _cmd_shell(args) -> int:  # pragma: no cover - interactive
    from .paraprof import run_shell

    run_shell(args.db)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
