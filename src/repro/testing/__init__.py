"""Testing infrastructure shared by the suite and by subprocess harnesses.

Currently home to :mod:`repro.testing.faults`, the deterministic
fault-injection registry the crash-recovery tests drive MiniSQL's
write-ahead log with.
"""

from . import faults

__all__ = ["faults"]
