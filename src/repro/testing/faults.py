"""Deterministic fault injection: named crash points and an IO shim.

Durability claims are only as good as the failures they were tested
against, so the WAL code is laced with *named crash points* — calls to
:func:`crash_point` at every interesting moment of the log/checkpoint
protocol ("after the commit record", "between checkpoint rename and WAL
truncation", ...).  In production these are a dict lookup and return.
A test arms one by name and the process dies there with ``os._exit``,
exactly like ``kill -9`` — no atexit handlers, no buffered writes
beyond what already reached the OS.

Arming works two ways:

* programmatically: ``faults.arm("wal.commit.after_record")`` (same
  process, used by the torn-tail property test);
* via the ``REPRO_FAULTS`` environment variable, read at import time,
  so subprocess crash-matrix tests arm the child without code changes::

      REPRO_FAULTS="wal.commit.after_record"        # die at first hit
      REPRO_FAULTS="wal.append.payload@3"           # die at third hit
      REPRO_FAULTS="torn:wal.append.payload:17"     # write 17 bytes, die
      REPRO_FAULTS="point-a,point-b"                # several, comma-split

The ``torn:`` form drives the injectable write shim: the WAL routes
every file write through :func:`write` and every fsync through
:func:`fsync`, so a torn-write fault flushes a prefix of the record to
the OS and then kills the process — producing exactly the
partially-written tail a real crash can leave.

Network faults work the same way one layer up: the wire protocol
routes every socket send through :func:`net_send` and marks every
receive with :func:`net_point`, each tagged with a named point
(``net.client.send``, ``net.server.recv``, ...).  A test arms a fault
and the shim misbehaves exactly once, at exactly that point::

    faults.arm_net("net.client.send", "drop")          # swallow a message
    faults.arm_net("net.server.send", "trunc", arg=7)  # send 7 bytes, stop
    faults.arm_net("net.client.recv", "delay", arg=0.5)
    faults.arm_net("net.server.send", "reset")         # RST the connection

or via ``REPRO_FAULTS`` for subprocess harnesses::

    REPRO_FAULTS="net:drop:net.client.send@2"     # drop the 2nd send
    REPRO_FAULTS="net:trunc:net.server.send:7"    # truncate to 7 bytes
    REPRO_FAULTS="net:reset:net.server.send"
"""

from __future__ import annotations

import os
import socket as _socket
import struct as _struct
import time as _time
from dataclasses import dataclass
from typing import IO, Optional

NET_MODES = ("drop", "delay", "trunc", "reset")

#: Exit status used when a crash point fires; chosen to match the shell
#: status of a SIGKILLed process so harnesses treat both alike.
CRASH_EXIT_STATUS = 137

ENV_VAR = "REPRO_FAULTS"


@dataclass
class _Fault:
    """One armed fault: fires on the ``hits``-th visit to ``point``."""

    point: str
    hits: int = 1
    torn_bytes: Optional[int] = None  # None = plain crash, N = torn write
    seen: int = 0


@dataclass
class _NetFault:
    """One armed network fault at a named wire-protocol point."""

    point: str
    mode: str  # one of NET_MODES
    hits: int = 1
    arg: float = 0.0  # delay seconds, or truncate byte count
    repeat: bool = False  # fire on every visit from the hits-th on
    seen: int = 0

    def fires(self) -> bool:
        self.seen += 1
        if self.repeat:
            return self.seen >= self.hits
        return self.seen == self.hits


_armed: dict[str, _Fault] = {}
_net_armed: dict[str, _NetFault] = {}


def arm(point: str, hits: int = 1, torn_bytes: Optional[int] = None) -> None:
    """Arm ``point`` to crash the process on its ``hits``-th visit."""
    _armed[point] = _Fault(point=point, hits=hits, torn_bytes=torn_bytes)


def disarm(point: str) -> None:
    _armed.pop(point, None)


def disarm_all() -> None:
    _armed.clear()
    _net_armed.clear()


def armed_points() -> list[str]:
    return sorted(_armed) + sorted(_net_armed)


def arm_net(
    point: str,
    mode: str,
    hits: int = 1,
    arg: float = 0.0,
    repeat: bool = False,
) -> None:
    """Arm a network fault: misbehave at ``point`` on its ``hits``-th visit."""
    if mode not in NET_MODES:
        raise ValueError(f"unknown network fault mode {mode!r}")
    _net_armed[point] = _NetFault(point=point, mode=mode, hits=hits, arg=arg, repeat=repeat)


def disarm_net(point: str) -> None:
    _net_armed.pop(point, None)


def _parse_net_item(item: str) -> None:
    # net:MODE:POINT[:ARG][@HITS]
    _, _, rest = item.partition(":")
    mode, _, rest = rest.partition(":")
    hits = 1
    if "@" in rest:
        rest, _, count = rest.rpartition("@")
        hits = int(count)
    arg = 0.0
    if mode in ("delay", "trunc") and ":" in rest:
        rest, _, raw = rest.rpartition(":")
        arg = float(raw)
    if not rest or mode not in NET_MODES:
        raise ValueError(f"malformed network fault spec {item!r}")
    arm_net(rest, mode, hits=hits, arg=arg)


def parse_spec(spec: str) -> None:
    """Arm every fault in a comma-separated ``REPRO_FAULTS`` spec."""
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if item.startswith("net:"):
            _parse_net_item(item)
            continue
        torn_bytes = None
        if item.startswith("torn:"):
            _, _, rest = item.partition(":")
            point, _, nbytes = rest.rpartition(":")
            if not point:
                raise ValueError(f"malformed torn fault spec {item!r}")
            torn_bytes = int(nbytes)
            item = point
        hits = 1
        if "@" in item:
            item, _, count = item.rpartition("@")
            hits = int(count)
        arm(item, hits=hits, torn_bytes=torn_bytes)


def reload_from_env() -> None:
    """(Re)arm from ``REPRO_FAULTS``; cheap no-op when unset."""
    spec = os.environ.get(ENV_VAR)
    if spec:
        parse_spec(spec)


def _die() -> None:
    # os._exit skips atexit/finally/buffers — the closest a test can get
    # to kill -9 while still choosing the exact instruction it dies at.
    os._exit(CRASH_EXIT_STATUS)


def crash_point(point: str) -> None:
    """Die here if ``point`` is armed (and its hit count is reached)."""
    fault = _armed.get(point)
    if fault is None or fault.torn_bytes is not None:
        return
    fault.seen += 1
    if fault.seen >= fault.hits:
        _die()


def write(fh: IO[bytes], data: bytes, point: str) -> int:
    """Write ``data`` through the fault shim.

    A ``torn:`` fault armed on ``point`` writes only its byte-count
    prefix, flushes it to the OS so the torn tail really lands on disk,
    and kills the process.
    """
    fault = _armed.get(point)
    if fault is not None and fault.torn_bytes is not None:
        fault.seen += 1
        if fault.seen >= fault.hits:
            fh.write(data[: fault.torn_bytes])
            fh.flush()
            os.fsync(fh.fileno())
            _die()
    return fh.write(data)


def fsync(fh: IO[bytes], point: str = "fsync") -> None:
    """fsync through the fault shim (a crash point on either side)."""
    crash_point(f"{point}.before")
    os.fsync(fh.fileno())
    crash_point(f"{point}.after")


def _reset(sock: "_socket.socket") -> None:
    # SO_LINGER with a zero timeout makes close() send RST instead of
    # FIN — the peer sees ECONNRESET, exactly like a crashed box.
    try:
        sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_LINGER, _struct.pack("ii", 1, 0))
    except OSError:
        pass
    sock.close()


def net_fire(point: Optional[str]) -> Optional[_NetFault]:
    """The armed fault at ``point`` if this visit fires it, else None.

    Consumes one hit.  Callers that manage their own buffers (the
    event-loop server writes through a send queue rather than a
    blocking ``sendall``) use this to apply drop/trunc/delay/reset
    themselves at the moment a message is queued.
    """
    fault = _net_armed.get(point) if point else None
    if fault is not None and fault.fires():
        return fault
    return None


def reset_socket(sock: "_socket.socket") -> None:
    """Close ``sock`` with an RST (zero-linger close), as a crashed
    peer would — the public face of the shim's reset mode."""
    _reset(sock)


def net_send(sock: "_socket.socket", data: bytes, point: Optional[str]) -> None:
    """Send ``data`` on ``sock`` through the network fault shim.

    An armed fault at ``point`` can *drop* the message entirely (the
    caller believes it was sent), *trunc*ate it to ``arg`` bytes (a
    half-written frame, as from a crash mid-send), *delay* it by
    ``arg`` seconds, or *reset* the connection with an RST.
    """
    fault = net_fire(point)
    if fault is not None:
        if fault.mode == "drop":
            return
        if fault.mode == "trunc":
            sock.sendall(data[: int(fault.arg)])
            return
        if fault.mode == "reset":
            _reset(sock)
            raise ConnectionResetError(f"connection reset by fault shim at {point}")
        _time.sleep(fault.arg)  # delay, then deliver
    sock.sendall(data)


def net_point(sock: "_socket.socket", point: Optional[str]) -> None:
    """Receive-side hook: an armed fault can delay or reset here."""
    fault = net_fire(point)
    if fault is not None:
        if fault.mode == "reset":
            _reset(sock)
            raise ConnectionResetError(f"connection reset by fault shim at {point}")
        if fault.mode == "delay":
            _time.sleep(fault.arg)


# Arm any faults requested by the environment as soon as the module is
# imported — subprocess harnesses set REPRO_FAULTS before exec.
reload_from_env()
