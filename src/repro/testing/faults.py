"""Deterministic fault injection: named crash points and an IO shim.

Durability claims are only as good as the failures they were tested
against, so the WAL code is laced with *named crash points* — calls to
:func:`crash_point` at every interesting moment of the log/checkpoint
protocol ("after the commit record", "between checkpoint rename and WAL
truncation", ...).  In production these are a dict lookup and return.
A test arms one by name and the process dies there with ``os._exit``,
exactly like ``kill -9`` — no atexit handlers, no buffered writes
beyond what already reached the OS.

Arming works two ways:

* programmatically: ``faults.arm("wal.commit.after_record")`` (same
  process, used by the torn-tail property test);
* via the ``REPRO_FAULTS`` environment variable, read at import time,
  so subprocess crash-matrix tests arm the child without code changes::

      REPRO_FAULTS="wal.commit.after_record"        # die at first hit
      REPRO_FAULTS="wal.append.payload@3"           # die at third hit
      REPRO_FAULTS="torn:wal.append.payload:17"     # write 17 bytes, die
      REPRO_FAULTS="point-a,point-b"                # several, comma-split

The ``torn:`` form drives the injectable write shim: the WAL routes
every file write through :func:`write` and every fsync through
:func:`fsync`, so a torn-write fault flushes a prefix of the record to
the OS and then kills the process — producing exactly the
partially-written tail a real crash can leave.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import IO, Optional

#: Exit status used when a crash point fires; chosen to match the shell
#: status of a SIGKILLed process so harnesses treat both alike.
CRASH_EXIT_STATUS = 137

ENV_VAR = "REPRO_FAULTS"


@dataclass
class _Fault:
    """One armed fault: fires on the ``hits``-th visit to ``point``."""

    point: str
    hits: int = 1
    torn_bytes: Optional[int] = None  # None = plain crash, N = torn write
    seen: int = 0


_armed: dict[str, _Fault] = {}


def arm(point: str, hits: int = 1, torn_bytes: Optional[int] = None) -> None:
    """Arm ``point`` to crash the process on its ``hits``-th visit."""
    _armed[point] = _Fault(point=point, hits=hits, torn_bytes=torn_bytes)


def disarm(point: str) -> None:
    _armed.pop(point, None)


def disarm_all() -> None:
    _armed.clear()


def armed_points() -> list[str]:
    return sorted(_armed)


def parse_spec(spec: str) -> None:
    """Arm every fault in a comma-separated ``REPRO_FAULTS`` spec."""
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        torn_bytes = None
        if item.startswith("torn:"):
            _, _, rest = item.partition(":")
            point, _, nbytes = rest.rpartition(":")
            if not point:
                raise ValueError(f"malformed torn fault spec {item!r}")
            torn_bytes = int(nbytes)
            item = point
        hits = 1
        if "@" in item:
            item, _, count = item.rpartition("@")
            hits = int(count)
        arm(item, hits=hits, torn_bytes=torn_bytes)


def reload_from_env() -> None:
    """(Re)arm from ``REPRO_FAULTS``; cheap no-op when unset."""
    spec = os.environ.get(ENV_VAR)
    if spec:
        parse_spec(spec)


def _die() -> None:
    # os._exit skips atexit/finally/buffers — the closest a test can get
    # to kill -9 while still choosing the exact instruction it dies at.
    os._exit(CRASH_EXIT_STATUS)


def crash_point(point: str) -> None:
    """Die here if ``point`` is armed (and its hit count is reached)."""
    fault = _armed.get(point)
    if fault is None or fault.torn_bytes is not None:
        return
    fault.seen += 1
    if fault.seen >= fault.hits:
        _die()


def write(fh: IO[bytes], data: bytes, point: str) -> int:
    """Write ``data`` through the fault shim.

    A ``torn:`` fault armed on ``point`` writes only its byte-count
    prefix, flushes it to the OS so the torn tail really lands on disk,
    and kills the process.
    """
    fault = _armed.get(point)
    if fault is not None and fault.torn_bytes is not None:
        fault.seen += 1
        if fault.seen >= fault.hits:
            fh.write(data[: fault.torn_bytes])
            fh.flush()
            os.fsync(fh.fileno())
            _die()
    return fh.write(data)


def fsync(fh: IO[bytes], point: str = "fsync") -> None:
    """fsync through the fault shim (a crash point on either side)."""
    crash_point(f"{point}.before")
    os.fsync(fh.fileno())
    crash_point(f"{point}.after")


# Arm any faults requested by the environment as soon as the module is
# imported — subprocess harnesses set REPRO_FAULTS before exec.
reload_from_env()
