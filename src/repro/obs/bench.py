"""Continuous benchmarking: archive BENCH_*.json runs, detect regressions.

The source paper names "performance regression detection" as future
work; the ROOT continuous-benchmarking paper (arXiv:1812.03149) gives
the recipe: *store every benchmark run in a database, detect
statistically significant changes, surface them in CI*.  This module
closes the loop on ourselves — the repo's own ``BENCH_*.json`` numbers
are ingested into a PerfDMF trial archive (``bench_history.mdb``,
committed in the repo and managed by the framework's own storage
engine) and ``repro bench regress`` runs windowed change-point
detection over the series.

Layout inside the archive (plain PerfDMF schema, no new tables):

* application ``repro-bench``;
* one *experiment* per benchmark section (``e13_compile``,
  ``e12_wal_overhead``, ...);
* one *trial* per benchmark run, named ``<timestamp>@<git-sha>``, with
  the run envelope (git SHA, timestamp, host cores, schema version and
  a dedup ``run_key``) serialised into ``trial.xml_metadata`` and the
  rank count in ``trial.node_count``;
* one *metric* row per flattened numeric key of the payload
  (``patterns.scan_agg.speedup``, ``ingest.parallel_seconds``, ...),
  each with a single ``interval_location_profile`` row under a shared
  ``bench`` interval event carrying the value.

Because the history is ordinary trials, every existing surface works on
it: ``repro list``, ``repro sql``, PerfExplorer, archive transfer.

Change-point detection (:func:`detect_regressions`) compares the last
``recent`` runs against the preceding ``baseline`` window per metric
key with **Welch's t-test** (unequal variances, pure-stdlib student-t
survival function via the regularized incomplete beta) AND a
**median-shift guard** — both must fire, so a single noisy run cannot
page anyone, and a tiny-but-consistent shift below the practical
threshold stays quiet.  Thresholds are configurable per benchmark key
(:class:`RegressPolicy`, fnmatch patterns).
"""

from __future__ import annotations

import fnmatch
import json
import math
import os
import shutil
import subprocess
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence

from .log import get_logger

_log = get_logger("repro.obs.bench")

#: Version of the BENCH_*.json envelope written by the harness.
ENVELOPE_VERSION = 1

#: Envelope keys; everything else at the top level is legacy payload.
_ENVELOPE_KEYS = ("schema_version", "git_sha", "timestamp", "host_cores")

#: Application name the bench history lives under.
BENCH_APPLICATION = "repro-bench"

#: The shared interval event all bench metric values hang off.
BENCH_EVENT = "bench"

#: Default committed history archive at the repo root.
DEFAULT_HISTORY = "bench_history.mdb"


# ---------------------------------------------------------------------------
# Envelope: what every benchmark writer emits
# ---------------------------------------------------------------------------


def _git_sha() -> Optional[str]:
    """The current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and len(sha) == 40 else None


def bench_envelope(
    sha: Optional[str] = None, timestamp: Optional[str] = None
) -> dict[str, Any]:
    """The common envelope every ``BENCH_*.json`` writer wraps around
    its payload.  The harness (CI) pins provenance via the
    ``REPRO_BENCH_SHA`` / ``REPRO_BENCH_TIMESTAMP`` environment
    variables; interactive runs fall back to ``git rev-parse`` and the
    current UTC time.
    """
    sha = sha or os.environ.get("REPRO_BENCH_SHA") or _git_sha()
    timestamp = (
        timestamp
        or os.environ.get("REPRO_BENCH_TIMESTAMP")
        or time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    )
    return {
        "schema_version": ENVELOPE_VERSION,
        "git_sha": sha,
        "timestamp": timestamp,
        "host_cores": os.cpu_count() or 1,
    }


def write_bench_json(
    path: str | os.PathLike, section: str, payload: Mapping[str, Any]
) -> dict[str, Any]:
    """Merge one benchmark section into ``path`` under the envelope.

    All writers (E1/E6 via the benchmarks conftest, E11–E15 directly)
    go through here, so every emitted file has the same shape and
    ``bench ingest`` needs no per-file special cases.  A pre-envelope
    file is upgraded in place: its top-level dict sections move under
    ``benchmarks``.  Returns the document written.
    """
    path = Path(path)
    doc: dict[str, Any] = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    sections = doc.get("benchmarks")
    if not isinstance(sections, dict):
        # Legacy layout: sections sat at the top level.
        sections = {
            k: v for k, v in doc.items()
            if k not in _ENVELOPE_KEYS and isinstance(v, dict)
        }
    sections[section] = dict(payload)
    doc = bench_envelope()
    doc["benchmarks"] = sections
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def normalize_document(
    doc: Mapping[str, Any],
    *,
    default_sha: Optional[str] = None,
    default_timestamp: Optional[str] = None,
) -> tuple[dict[str, Any], dict[str, dict[str, Any]]]:
    """Split one BENCH document into (envelope, sections).

    Envelope-format documents pass through; legacy documents (top-level
    sections, no envelope) get ``default_sha``/``default_timestamp``
    filled in — that is how the committed history was seeded from git
    history, where the commit supplies both.
    """
    sections = doc.get("benchmarks")
    if isinstance(sections, dict):
        envelope = {k: doc.get(k) for k in _ENVELOPE_KEYS}
    else:
        sections = {
            k: v for k, v in doc.items()
            if k not in _ENVELOPE_KEYS and isinstance(v, dict)
        }
        envelope = {k: doc.get(k) for k in _ENVELOPE_KEYS}
    if not envelope.get("git_sha"):
        envelope["git_sha"] = default_sha
    if not envelope.get("timestamp"):
        envelope["timestamp"] = default_timestamp or time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
    envelope.setdefault("schema_version", ENVELOPE_VERSION)
    clean = {
        name: payload for name, payload in sections.items()
        if isinstance(payload, dict) and flatten_metrics(payload)
    }
    return envelope, clean


def flatten_metrics(
    payload: Mapping[str, Any], prefix: str = ""
) -> dict[str, float]:
    """Numeric leaves of a nested payload as dot-joined keys.

    Booleans are configuration, not measurements, and are dropped.
    """
    out: dict[str, float] = {}
    for key in sorted(payload):
        value = payload[key]
        full = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(flatten_metrics(value, f"{full}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)) and math.isfinite(value):
            out[full] = float(value)
    return out


# ---------------------------------------------------------------------------
# Statistics: Welch's t-test on stdlib only
# ---------------------------------------------------------------------------


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    FPMIN = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < FPMIN:
        d = FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < FPMIN:
            d = FPMIN
        c = 1.0 + aa / c
        if abs(c) < FPMIN:
            c = FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < FPMIN:
            d = FPMIN
        c = 1.0 + aa / c
        if abs(c) < FPMIN:
            c = FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-12:
            break
    return h


def betainc_regularized(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: float) -> float:
    """P(T > t) for Student's t with ``df`` degrees of freedom."""
    if df <= 0:
        return 0.5
    x = df / (df + t * t)
    p = 0.5 * betainc_regularized(df / 2.0, 0.5, x)
    return p if t >= 0 else 1.0 - p


@dataclass(frozen=True)
class WelchResult:
    """Welch's unequal-variances t-test between two samples."""

    t: float
    df: float
    p_value: float          # two-sided
    mean_a: float
    mean_b: float


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> WelchResult:
    """Welch's t-test of ``a`` vs ``b`` (two-sided p-value).

    Degenerate inputs resolve conservatively: if both samples are
    constant the p-value is 1.0 when the constants agree and 0.0 when
    they differ (the change is certain, not statistical).
    """
    na, nb = len(a), len(b)
    if na < 2 or nb < 2:
        raise ValueError("welch_t_test needs >= 2 observations per sample")
    ma = sum(a) / na
    mb = sum(b) / nb
    va = sum((x - ma) ** 2 for x in a) / (na - 1)
    vb = sum((x - mb) ** 2 for x in b) / (nb - 1)
    se2 = va / na + vb / nb
    if se2 == 0.0:
        identical = ma == mb
        return WelchResult(
            t=0.0 if identical else math.inf,
            df=float(na + nb - 2),
            p_value=1.0 if identical else 0.0,
            mean_a=ma, mean_b=mb,
        )
    t = (ma - mb) / math.sqrt(se2)
    num = se2 * se2
    den = 0.0
    if va > 0:
        den += (va / na) ** 2 / (na - 1)
    if vb > 0:
        den += (vb / nb) ** 2 / (nb - 1)
    df = num / den if den > 0 else float(na + nb - 2)
    p = 2.0 * student_t_sf(abs(t), df)
    return WelchResult(t=t, df=df, p_value=min(p, 1.0), mean_a=ma, mean_b=mb)


def exact_quantile(values: Sequence[float], q: float) -> float:
    """Exact q-quantile of a small sample (linear interpolation)."""
    if not values:
        raise ValueError("empty sample")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lo = int(math.floor(position))
    hi = min(lo + 1, len(ordered) - 1)
    fraction = position - lo
    return ordered[lo] + fraction * (ordered[hi] - ordered[lo])


def median(values: Sequence[float]) -> float:
    return exact_quantile(values, 0.5)


# ---------------------------------------------------------------------------
# The archive
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BenchRun:
    """One benchmark run as stored in (and read back from) the archive."""

    trial_id: int
    experiment: str
    timestamp: str
    git_sha: Optional[str]
    metrics: dict[str, float]
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def sha12(self) -> str:
        return (self.git_sha or "unknown")[:12]


def archive_url(path_or_url: str | os.PathLike) -> str:
    """A filesystem path becomes a durable MiniSQL file URL; URLs pass
    through untouched (so tests can use sqlite/in-memory archives)."""
    text = str(path_or_url)
    if "://" in text:
        return text
    path = Path(text).absolute()
    if path.suffix == ".mdb":
        return f"minisql:///{path}"
    return f"minisql://file:{path}"


def _run_key(section: str, envelope: Mapping[str, Any],
             metrics: Mapping[str, float]) -> str:
    import hashlib

    blob = json.dumps(
        [section, envelope.get("git_sha"), envelope.get("timestamp"),
         sorted(metrics.items())],
        sort_keys=True,
    )
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]


class BenchArchive:
    """Bench-run storage on top of an ordinary PerfDMF archive."""

    def __init__(self, path_or_url: str | os.PathLike, create: bool = True):
        from ..core.session import PerfDMFSession

        self.url = archive_url(path_or_url)
        self.session = PerfDMFSession(self.url, create=create)
        self.connection = self.session.connection

    def close(self) -> None:
        self.session.close()

    def __enter__(self) -> "BenchArchive":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- writing -------------------------------------------------------------

    def _application_id(self) -> int:
        app = self.session.get_or_create_application(
            BENCH_APPLICATION,
            description="continuous benchmarking history of this repository",
        )
        assert app.id is not None
        return app.id

    def _experiment_id(self, name: str, app_id: int) -> int:
        row = self.connection.query_one(
            "SELECT id FROM experiment WHERE application = ? AND name = ?",
            (app_id, name),
        )
        if row is not None:
            return row[0]
        exp = self.session.create_experiment(app_id, name)
        assert exp.id is not None
        return exp.id

    def _existing_run_keys(self, experiment_id: int) -> set[str]:
        keys = set()
        for (metadata,) in self.connection.query(
            "SELECT xml_metadata FROM trial WHERE experiment = ?",
            (experiment_id,),
        ):
            try:
                keys.add(json.loads(metadata)["run_key"])
            except (TypeError, ValueError, KeyError):
                continue
        return keys

    def ingest_document(
        self,
        doc: Mapping[str, Any],
        *,
        source: str = "<memory>",
        default_sha: Optional[str] = None,
        default_timestamp: Optional[str] = None,
    ) -> list[BenchRun]:
        """Store every benchmark section of ``doc`` as one trial each.

        Re-ingesting an identical run (same section, SHA, timestamp and
        metric values) is a no-op — ingest is idempotent, so CI can
        always run it unconditionally.  Returns the runs stored.
        """
        envelope, sections = normalize_document(
            doc, default_sha=default_sha, default_timestamp=default_timestamp
        )
        stored: list[BenchRun] = []
        if not sections:
            return stored
        app_id = self._application_id()
        for section in sorted(sections):
            metrics = flatten_metrics(sections[section])
            exp_id = self._experiment_id(section, app_id)
            run_key = _run_key(section, envelope, metrics)
            if run_key in self._existing_run_keys(exp_id):
                _log.info("bench_ingest_duplicate", section=section,
                          run_key=run_key, source=source)
                continue
            stored.append(self._store_run(
                exp_id, section, envelope, metrics, run_key, source
            ))
        self.connection.commit()
        return stored

    def ingest_file(self, path: str | os.PathLike, **kwargs: Any) -> list[BenchRun]:
        doc = json.loads(Path(path).read_text())
        kwargs.setdefault("source", str(path))
        return self.ingest_document(doc, **kwargs)

    def _store_run(
        self,
        experiment_id: int,
        section: str,
        envelope: Mapping[str, Any],
        metrics: Mapping[str, float],
        run_key: str,
        source: str,
    ) -> BenchRun:
        conn = self.connection
        sha = envelope.get("git_sha")
        timestamp = envelope["timestamp"]
        metadata = {
            "schema_version": envelope.get("schema_version", ENVELOPE_VERSION),
            "git_sha": sha,
            "timestamp": timestamp,
            "host_cores": envelope.get("host_cores"),
            "run_key": run_key,
            "source": os.path.basename(source),
        }
        name = f"{timestamp}@{(sha or 'unknown')[:12]}"
        # The (experiment, name) pair is UNIQUE; an identical run was
        # already deduplicated, so a collision means a re-run with
        # different numbers — suffix it into its own trial.
        suffix = 1
        base = name
        while conn.query_one(
            "SELECT id FROM trial WHERE experiment = ? AND name = ?",
            (experiment_id, name),
        ) is not None:
            suffix += 1
            name = f"{base}#{suffix}"
        ranks = metrics.get("ranks")
        conn.execute(
            "INSERT INTO trial (name, experiment, date, node_count, "
            "xml_metadata) VALUES (?, ?, ?, ?, ?)",
            (name, experiment_id, timestamp,
             int(ranks) if ranks is not None else None,
             json.dumps(metadata, sort_keys=True)),
        )
        trial_id = conn.query_one(
            "SELECT id FROM trial WHERE experiment = ? AND name = ?",
            (experiment_id, name),
        )[0]
        conn.execute(
            "INSERT INTO interval_event (trial, name, group_name) "
            "VALUES (?, ?, ?)",
            (trial_id, BENCH_EVENT, "BENCH"),
        )
        event_id = conn.query_one(
            "SELECT id FROM interval_event WHERE trial = ? AND name = ?",
            (trial_id, BENCH_EVENT),
        )[0]
        for key in sorted(metrics):
            value = metrics[key]
            conn.execute(
                "INSERT INTO metric (trial, name, derived) VALUES (?, ?, 0)",
                (trial_id, key),
            )
            metric_id = conn.query_one(
                "SELECT id FROM metric WHERE trial = ? AND name = ?",
                (trial_id, key),
            )[0]
            conn.execute(
                "INSERT INTO interval_location_profile (interval_event, "
                "node, context, thread, metric, inclusive, "
                "inclusive_percentage, exclusive, exclusive_percentage, "
                "inclusive_per_call, num_calls, num_subrs) "
                "VALUES (?, 0, 0, 0, ?, ?, 100.0, ?, 100.0, ?, 1, 0)",
                (event_id, metric_id, value, value, value),
            )
        _log.info("bench_ingest", section=section, trial=trial_id,
                  metrics=len(metrics), sha=(sha or "unknown")[:12])
        return BenchRun(
            trial_id=trial_id, experiment=section, timestamp=timestamp,
            git_sha=sha, metrics=dict(metrics), metadata=metadata,
        )

    # -- reading -------------------------------------------------------------

    def experiments(self) -> list[tuple[str, int]]:
        """(section name, run count) for every stored benchmark."""
        return [
            (name, count) for name, count in self.connection.query(
                "SELECT e.name, count(t.id) FROM experiment e "
                "JOIN application a ON e.application = a.id "
                "LEFT JOIN trial t ON t.experiment = e.id "
                "WHERE a.name = ? GROUP BY e.name ORDER BY e.name",
                (BENCH_APPLICATION,),
            )
        ]

    def runs(self, experiment: str) -> list[BenchRun]:
        """Every run of one benchmark section, oldest first."""
        rows = self.connection.query(
            "SELECT t.id, t.date, t.xml_metadata FROM trial t "
            "JOIN experiment e ON t.experiment = e.id "
            "JOIN application a ON e.application = a.id "
            "WHERE a.name = ? AND e.name = ?",
            (BENCH_APPLICATION, experiment),
        )
        out = []
        for trial_id, date, metadata_json in rows:
            try:
                metadata = json.loads(metadata_json) if metadata_json else {}
            except ValueError:
                metadata = {}
            values = {
                key: value for key, value in self.connection.query(
                    "SELECT m.name, ilp.exclusive "
                    "FROM interval_location_profile ilp "
                    "JOIN metric m ON ilp.metric = m.id "
                    "WHERE m.trial = ?",
                    (trial_id,),
                )
            }
            out.append(BenchRun(
                trial_id=trial_id, experiment=experiment,
                timestamp=str(date or metadata.get("timestamp") or ""),
                git_sha=metadata.get("git_sha"), metrics=values,
                metadata=metadata,
            ))
        out.sort(key=lambda r: (r.timestamp, r.trial_id))
        return out

    def series(self, experiment: str) -> dict[str, list[tuple[BenchRun, float]]]:
        """Per-metric time series: key -> [(run, value), ...] oldest first."""
        out: dict[str, list[tuple[BenchRun, float]]] = {}
        for run in self.runs(experiment):
            for key, value in run.metrics.items():
                out.setdefault(key, []).append((run, value))
        return out


def open_for_reading(path: str | os.PathLike) -> BenchArchive:
    """Open a committed ``.mdb`` history without touching the checkout.

    Opening a MiniSQL file archive creates WAL segments next to it;
    read paths (``report``, ``regress``) must not litter the repository
    or dirty CI checkouts, so they work on a temp copy.
    """
    text = str(path)
    if "://" in text:
        return BenchArchive(text, create=False)
    source = Path(text)
    if not source.exists():
        raise FileNotFoundError(f"no bench history archive at {source}")
    scratch = Path(tempfile.mkdtemp(prefix="bench-history-")) / source.name
    shutil.copy2(source, scratch)
    return BenchArchive(scratch)


def tidy_archive(path: str | os.PathLike) -> None:
    """Remove empty WAL segments a checkpointed close leaves behind, so
    the committed archive stays a single file."""
    base = Path(str(path))
    for segment in base.parent.glob(f"{base.name}.wal.*"):
        try:
            if segment.stat().st_size == 0:
                segment.unlink()
        except OSError:
            continue


# ---------------------------------------------------------------------------
# Regression detection
# ---------------------------------------------------------------------------

#: Metric-key suffixes whose direction we can infer.  Anything
#: unmatched (counters, rank counts, configuration echoes) is not
#: tested unless a policy override supplies a direction.
LOWER_IS_BETTER = (
    "_ms", "_seconds", "seconds", "_bytes", "overhead", "_fraction",
    "_retries", "_fallbacks", "_errors",
)
HIGHER_IS_BETTER = ("speedup", "_per_second", "_qps")


def infer_direction(key: str) -> Optional[str]:
    """'lower' / 'higher' (is better), or None when unknowable."""
    leaf = key.rsplit(".", 1)[-1].lower()
    for suffix in LOWER_IS_BETTER:
        if leaf.endswith(suffix):
            return "lower"
    for suffix in HIGHER_IS_BETTER:
        if leaf.endswith(suffix):
            return "higher"
    return None


@dataclass(frozen=True)
class KeyPolicy:
    """Detection knobs for one metric key (or the defaults)."""

    threshold: float = 0.25     # minimum worse-direction median shift
    alpha: float = 0.01         # Welch p-value cut
    min_runs: int = 6           # series shorter than this are skipped
    recent: int = 3             # runs in the "did it regress" window
    baseline: int = 12          # max runs in the reference window
    direction: Optional[str] = None   # override for unknown keys
    ignore: bool = False


@dataclass
class RegressPolicy:
    """Defaults plus fnmatch-keyed overrides, later patterns winning.

    The JSON form (``--policy`` / ``benchmarks/regress_policy.json``)::

        {"defaults": {"threshold": 0.25, "alpha": 0.01},
         "keys": {"e12_wal_overhead.*.wal_bytes": {"threshold": 0.6},
                  "*.ranks": {"ignore": true}}}
    """

    defaults: KeyPolicy = field(default_factory=KeyPolicy)
    overrides: list[tuple[str, dict[str, Any]]] = field(default_factory=list)

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "RegressPolicy":
        doc = json.loads(Path(path).read_text())
        defaults = KeyPolicy(**doc.get("defaults", {}))
        overrides = [
            (pattern, dict(knobs))
            for pattern, knobs in doc.get("keys", {}).items()
        ]
        return cls(defaults=defaults, overrides=overrides)

    def for_key(self, full_key: str) -> KeyPolicy:
        policy = self.defaults
        for pattern, knobs in self.overrides:
            if fnmatch.fnmatchcase(full_key, pattern):
                policy = replace(policy, **knobs)
        return policy


@dataclass(frozen=True)
class Finding:
    """One detected regression (or improvement, when asked)."""

    experiment: str
    key: str
    direction: str              # the metric's better-direction
    baseline_n: int
    recent_n: int
    baseline_median: float
    baseline_p95: float
    recent_median: float
    shift: float                # signed relative median shift
    p_value: float
    window: str                 # "<last-good-sha>..<latest-sha>"

    @property
    def full_key(self) -> str:
        return f"{self.experiment}.{self.key}"

    @property
    def effect_pct(self) -> float:
        return self.shift * 100.0


@dataclass
class RegressReport:
    """Everything one detection pass looked at."""

    findings: list[Finding] = field(default_factory=list)
    checked: int = 0            # series actually tested
    skipped_short: int = 0      # series below min_runs
    skipped_direction: int = 0  # keys with no inferable direction
    experiments: int = 0

    @property
    def regressed(self) -> bool:
        return bool(self.findings)


def _is_worse(shift: float, direction: str) -> bool:
    return shift > 0 if direction == "lower" else shift < 0


def detect_regressions(
    archive: BenchArchive,
    policy: Optional[RegressPolicy] = None,
    *,
    key_filter: Optional[str] = None,
) -> RegressReport:
    """Windowed change-point detection over every stored series.

    A series regresses when, comparing the last ``recent`` runs against
    the preceding ``baseline`` runs:

    * Welch's t-test rejects equal means at ``alpha``, AND
    * the median shifted in the worse direction by more than
      ``threshold`` (relative).

    Both conditions are required: the t-test alone fires on tiny
    consistent shifts (statistically real, practically irrelevant) and
    the median guard alone fires on noise.
    """
    policy = policy or RegressPolicy()
    report = RegressReport()
    for experiment, _count in archive.experiments():
        report.experiments += 1
        for key, points in sorted(archive.series(experiment).items()):
            full_key = f"{experiment}.{key}"
            if key_filter and not fnmatch.fnmatchcase(full_key, key_filter):
                continue
            kp = policy.for_key(full_key)
            if kp.ignore:
                continue
            direction = kp.direction or infer_direction(key)
            if direction is None:
                report.skipped_direction += 1
                continue
            values = [value for _run, value in points]
            if len(values) < max(kp.min_runs, kp.recent + 2):
                report.skipped_short += 1
                continue
            recent = values[-kp.recent:]
            baseline = values[-(kp.recent + kp.baseline):-kp.recent]
            if len(baseline) < 2 or len(recent) < 2:
                report.skipped_short += 1
                continue
            report.checked += 1
            med_b = median(baseline)
            med_r = median(recent)
            if med_b == 0.0:
                shift = 0.0 if med_r == 0.0 else math.inf
            else:
                shift = (med_r - med_b) / abs(med_b)
            welch = welch_t_test(recent, baseline)
            if not (
                _is_worse(shift, direction)
                and abs(shift) >= kp.threshold
                and welch.p_value < kp.alpha
            ):
                continue
            recent_runs = [run for run, _v in points[-kp.recent:]]
            last_good = points[-(kp.recent + 1)][0]
            window = f"{last_good.sha12}..{recent_runs[-1].sha12}"
            report.findings.append(Finding(
                experiment=experiment, key=key, direction=direction,
                baseline_n=len(baseline), recent_n=len(recent),
                baseline_median=med_b,
                baseline_p95=exact_quantile(baseline, 0.95),
                recent_median=med_r, shift=shift,
                p_value=welch.p_value, window=window,
            ))
    report.findings.sort(key=lambda f: -abs(f.shift))
    return report


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.001:
        return f"{value:.3g}"
    return f"{value:.4g}"


def format_regress_report(report: RegressReport) -> str:
    """The human-readable table ``repro bench regress`` prints."""
    lines = [
        f"checked {report.checked} series across "
        f"{report.experiments} benchmark(s) "
        f"({report.skipped_short} with insufficient history, "
        f"{report.skipped_direction} without a known direction)"
    ]
    if not report.findings:
        lines.append("no regressions detected")
        return "\n".join(lines)
    lines.append("")
    header = (
        f"{'benchmark metric':<44} {'change':>9} {'p-value':>9} "
        f"{'baseline p50/p95':>18} {'recent p50':>11}  commit window"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for f in report.findings:
        change = (
            "inf" if math.isinf(f.shift) else f"{f.effect_pct:+.1f}%"
        )
        lines.append(
            f"{f.full_key:<44} {change:>9} {f.p_value:>9.2g} "
            f"{_fmt(f.baseline_median):>8}/{_fmt(f.baseline_p95):<9} "
            f"{_fmt(f.recent_median):>11}  {f.window}"
        )
    lines.append("")
    lines.append(
        f"{len(report.findings)} regression(s): the recent window is "
        f"statistically and practically worse than its baseline"
    )
    return "\n".join(lines)
