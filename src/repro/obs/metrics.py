"""Metrics registry: named counters, gauges and log2-bucket histograms.

Unifies the counter dicts that grew organically across the framework —
MiniSQL planner/executor stats, connection-pool wait/timeout counts,
per-stage ``ingest_stats`` — behind a single process-global
:data:`registry` with snapshot/reset, Prometheus-style text exposition
and JSON export (the machine-readable-telemetry requirement from the
ROOT continuous-benchmarking work, arXiv:1812.03149).

All instruments are thread-safe and cheap: a counter increment is a
lock acquire plus an integer add; a histogram observation is a bisect
into precomputed power-of-two bucket bounds.
"""

from __future__ import annotations

import json
import re
import threading
import time
from bisect import bisect_left
from typing import Any, Dict, Mapping, Optional

#: Histogram bucket upper bounds: powers of two from 2^-20 (~1 µs when
#: observing seconds) to 2^10 (~17 min), plus +Inf implicitly.
LOG2_BOUNDS: tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 11))

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitise a metric name for the Prometheus exposition format."""
    safe = _NAME_RE.sub("_", name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return safe


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules:
    backslash, double-quote and newline must be backslash-escaped."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class Counter:
    """Monotonic counter."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self._value}


class Gauge:
    """Last-write-wins value (e.g. an absorbed stats-dict entry)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self._value}


class Histogram:
    """Fixed log2-bucket histogram tracking count/sum/min/max.

    Bucket ``i`` counts observations ``v <= bounds[i]``; values above
    the last bound land in the implicit +Inf bucket.
    """

    kind = "histogram"

    def __init__(self, name: str, bounds: tuple[float, ...] = LOG2_BOUNDS):
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        self._buckets = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._buckets[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def reset(self) -> None:
        with self._lock:
            self._buckets = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def _quantile_locked(self, q: float) -> Optional[float]:
        """Estimate the q-quantile from the bucket counts.

        Linear interpolation inside the containing bucket; the first
        and last (+Inf) buckets are clamped to the observed min/max so
        the estimate never leaves the observed range.  Accuracy is
        bounded by the bucket width (one octave for the log2 bounds) —
        good enough for p50/p95/p99 monitoring, not for billing.
        """
        if self._count == 0:
            return None
        target = q * self._count
        cumulative = 0
        for i, n in enumerate(self._buckets):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = self.bounds[i - 1] if i > 0 else self._min
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                if self._min is not None:
                    lo = max(lo, self._min)
                if self._max is not None:
                    hi = min(hi, self._max)
                if hi <= lo:
                    return float(hi)
                fraction = (target - cumulative) / n
                return float(lo + fraction * (hi - lo))
            cumulative += n
        return self._max

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (0 <= q <= 1) of the observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            nonzero = {}
            for i, n in enumerate(self._buckets):
                if n:
                    le = self.bounds[i] if i < len(self.bounds) else float("inf")
                    nonzero[le] = n
            return {
                "type": self.kind,
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": (self._sum / self._count) if self._count else None,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "buckets": nonzero,
            }


class MetricsRegistry:
    """Process-global name → instrument map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, bounds: tuple[float, ...] = LOG2_BOUNDS) -> Histogram:
        return self._get_or_create(name, Histogram, bounds=bounds)

    def absorb(self, prefix: str, stats: Mapping[str, Any]) -> None:
        """Publish a legacy stats dict as ``{prefix}.{key}`` gauges.

        The bridge that unifies the scattered counter dicts
        (``Database.stats``, ``ingest_stats``) into the registry
        without rewriting their producers.
        """
        for key, value in stats.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.gauge(f"{prefix}.{key}").set(value)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].snapshot() for name in sorted(metrics)}

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    # -- exposition ----------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"ts": time.time(), "metrics": self.snapshot()},
            sort_keys=True,
            default=str,
        )

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (cumulative buckets)."""
        return render_prometheus(self.snapshot())


def render_prometheus(snapshot: Mapping[str, Mapping[str, Any]]) -> str:
    """Render a registry snapshot in the Prometheus text format.

    Works on any snapshot dict — the live registry's or one shipped
    over RPC (where JSON turned bucket keys into strings, including
    ``"Infinity"``), so ``repro stats --server --format prometheus``
    reuses the exact same exposition path.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        prom = _prom_name(name)
        if snap["type"] == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            buckets = {float(le): n for le, n in snap["buckets"].items()}
            cumulative = 0
            for le in sorted(buckets):
                cumulative += buckets[le]
                le_str = "+Inf" if le == float("inf") else repr(le)
                lines.append(
                    f'{prom}_bucket{{le="{escape_label_value(le_str)}"}} '
                    f"{cumulative}"
                )
            if float("inf") not in buckets:
                lines.append(f'{prom}_bucket{{le="+Inf"}} {snap["count"]}')
            lines.append(f"{prom}_sum {snap['sum']}")
            lines.append(f"{prom}_count {snap['count']}")
        else:
            lines.append(f"# TYPE {prom} {snap['type']}")
            lines.append(f"{prom} {snap['value']}")
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-global registry every layer shares.
registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return registry
