"""Live telemetry endpoint: /metrics, /healthz and /stats.json over HTTP.

The PR 3 observability layer could only be read at process exit
(``repro stats``) or over the PerfExplorer RPC protocol.  This module
makes the registry scrapeable *live*: a tiny stdlib HTTP listener that
any Prometheus scraper, load balancer health check, or ``curl`` can hit
while the process serves traffic.

Endpoints::

    GET /metrics     Prometheus text exposition (registry.to_prometheus)
    GET /healthz     JSON liveness document: {"status": "ok", ...}
    GET /stats.json  full registry snapshot as JSON (registry.to_json)

Design constraints match the rest of :mod:`repro.obs`:

* **zero dependencies** — ``http.server`` + ``threading``, nothing else;
* **zero measurable overhead on the serving path** — the listener
  blocks in ``accept`` on its own daemon thread and touches shared
  state only through the registry's own locks when actually scraped
  (the E11 benchmark guards this);
* **embeddable** — the PerfExplorer :class:`~repro.explorer.server.
  SocketServer` and ``repro serve`` both mount one, and tests start
  them on ephemeral ports.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional

from .log import get_logger
from .metrics import registry as _registry

_log = get_logger("repro.obs.telemetry")

#: Content type Prometheus scrapers expect from a text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """One scrape request.  The server instance carries the registry and
    the optional health callable."""

    server: "TelemetryServer"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        path = self.path.split("?", 1)[0]
        _registry.counter("telemetry.requests").inc()
        if path == "/metrics":
            body = self.server.registry.to_prometheus().encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/healthz":
            body = json.dumps(
                self.server.health_document(), sort_keys=True
            ).encode("utf-8")
            self._reply(200, "application/json", body)
        elif path == "/stats.json":
            body = self.server.registry.to_json().encode("utf-8")
            self._reply(200, "application/json", body)
        else:
            _registry.counter("telemetry.not_found").inc()
            self._reply(404, "application/json",
                        b'{"error": "unknown endpoint"}')

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        # Scrapes land in the structured log, not on stderr.
        _log.debug("scrape", path=self.path, client=self.client_address[0])


class TelemetryServer(ThreadingHTTPServer):
    """The HTTP listener.  ``start()`` returns the bound (host, port)."""

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry=None,
        health: Optional[Callable[[], dict[str, Any]]] = None,
    ):
        super().__init__((host, port), _Handler)
        self.registry = registry if registry is not None else _registry
        self._health = health
        self._started = time.time()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self.serve_forever, name="telemetry", daemon=True,
            kwargs={"poll_interval": 0.25},
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- health --------------------------------------------------------------

    def health_document(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started, 3),
        }
        if self._health is not None:
            try:
                doc.update(self._health())
            except Exception as exc:  # health extras must never 500
                doc["status"] = "degraded"
                doc["health_error"] = f"{type(exc).__name__}: {exc}"
        return doc
