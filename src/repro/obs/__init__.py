"""Framework-wide observability: tracing, metrics, structured logging.

Zero external dependencies.  Three pillars:

* :mod:`repro.obs.trace` — span context managers, per-process ring
  buffer, JSON-lines and Chrome trace-event exporters;
* :mod:`repro.obs.metrics` — process-global registry of counters,
  gauges and log2-bucket histograms with Prometheus/JSON exposition;
* :mod:`repro.obs.log` — structured JSON-lines logging;
* :mod:`repro.obs.telemetry` — live HTTP endpoint (/metrics, /healthz,
  /stats.json) any Prometheus scraper or health check can hit;
* :mod:`repro.obs.bench` — continuous-benchmarking archive and
  statistical regression detection (imported lazily: it pulls in the
  session layer, which itself depends on this package).

Everything is always compiled in but cheap when disabled: the span
fast path is one attribute check, metrics are opt-in call sites, and
logging defaults to ``warning``.
"""

from repro.obs.log import StructuredLogger, configure as configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    get_registry,
    registry,
)
from repro.obs.telemetry import TelemetryServer
from repro.obs.trace import (
    Tracer, get_tracer, new_trace_id, span, traced, tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StructuredLogger",
    "TelemetryServer",
    "Tracer",
    "configure_logging",
    "escape_label_value",
    "get_logger",
    "get_registry",
    "get_tracer",
    "new_trace_id",
    "registry",
    "span",
    "traced",
    "tracer",
]
