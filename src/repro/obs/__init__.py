"""Framework-wide observability: tracing, metrics, structured logging.

Zero external dependencies.  Three pillars:

* :mod:`repro.obs.trace` — span context managers, per-process ring
  buffer, JSON-lines and Chrome trace-event exporters;
* :mod:`repro.obs.metrics` — process-global registry of counters,
  gauges and log2-bucket histograms with Prometheus/JSON exposition;
* :mod:`repro.obs.log` — structured JSON-lines logging.

Everything is always compiled in but cheap when disabled: the span
fast path is one attribute check, metrics are opt-in call sites, and
logging defaults to ``warning``.
"""

from repro.obs.log import StructuredLogger, configure as configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    registry,
)
from repro.obs.trace import (
    Tracer, get_tracer, new_trace_id, span, traced, tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StructuredLogger",
    "Tracer",
    "configure_logging",
    "get_logger",
    "get_registry",
    "get_tracer",
    "new_trace_id",
    "registry",
    "span",
    "traced",
    "tracer",
]
