"""Structured JSON-lines logging.

One event per line: ``{"ts": ..., "level": ..., "logger": ...,
"event": ..., **fields}``.  Keeps the framework's logging scriptable
(pipe through ``jq``) and testable (inject a ``StringIO`` sink).

The default level is ``warning`` so library use stays quiet; the
``repro serve`` entry point raises it to ``info`` to get the
per-request log the PerfExplorer server emits.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, IO, Optional

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_lock = threading.Lock()
_config = {"stream": None, "level": LEVELS["warning"]}


def configure(stream: Optional[IO[str]] = None, level: str = "warning") -> None:
    """Set the global sink and threshold.

    ``stream=None`` means stderr, resolved lazily at emit time so
    pytest's capture rewiring is respected.
    """
    with _lock:
        _config["stream"] = stream
        _config["level"] = LEVELS.get(level, LEVELS["warning"])


def set_level(level: str) -> None:
    with _lock:
        _config["level"] = LEVELS.get(level, _config["level"])


class StructuredLogger:
    """Named logger writing JSON events to the globally configured sink."""

    def __init__(self, name: str):
        self.name = name

    def log(self, level: str, event: str, **fields: Any) -> None:
        threshold = _config["level"]
        if LEVELS.get(level, 0) < threshold:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=str)
        stream = _config["stream"] or sys.stderr
        with _lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError):
                pass  # closed sink (interpreter teardown); drop the event

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)


def get_logger(name: str) -> StructuredLogger:
    return StructuredLogger(name)
