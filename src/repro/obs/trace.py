"""Zero-dependency tracing: spans, a per-process ring buffer, exporters.

PerfDMF is a framework *for* performance data, so its own execution
should be inspectable with the same rigour.  This module provides the
span primitive every layer instruments itself with::

    from repro.obs import span

    with span("minisql.execute", sql=sql):
        ...

Design constraints (mirrors the ROOT continuous-benchmarking argument,
arXiv:1812.03149, that perf telemetry must be machine-readable):

* **always compiled, cheap when off** — the tracer starts disabled and
  the disabled path of :func:`span` is one attribute check plus a
  shared no-op context manager; the E11 benchmark guards the overhead
  at <5% on the E2 query workload;
* **thread/process-aware ids** — span ids embed the pid and thread id,
  so spans recorded in bulk-ingest worker processes remain unambiguous
  after they are shipped back to the coordinator
  (:meth:`Tracer.adopt`);
* **standard output formats** — JSON-lines for scripting and the
  Chrome ``chrome://tracing`` / Perfetto trace-event format for
  timeline views (the Pipit angle, arXiv:2306.11177).

Spans are stored as plain dicts in a bounded deque: picklable across
process boundaries, trivially serialisable, no retained object graphs.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from collections import deque
from typing import Any, Iterable, Optional

#: Finished-span ring-buffer capacity per process.  Old spans fall off
#: the back; sized for a full bulk ingest plus slack.
RING_CAPACITY = 8192

_span_counter = itertools.count(1)


def _new_span_id() -> str:
    """Process/thread-qualified span id: ``pid-tid-seq`` in hex."""
    return (
        f"{os.getpid():x}-{threading.get_ident():x}-{next(_span_counter):x}"
    )


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attributes: Any) -> None:
        """Attribute sink; discards everything."""


_NOOP = _NoopSpan()


class _ActiveSpan:
    """A live span: context manager that records itself on exit."""

    __slots__ = ("tracer", "record", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]):
        self.tracer = tracer
        trace_id, parent_id = tracer._current_ids()
        self.record: dict[str, Any] = {
            "name": name,
            "trace_id": trace_id,
            "span_id": _new_span_id(),
            "parent_id": parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "thread": threading.current_thread().name,
            "start": time.time(),
            "duration": 0.0,
            "attributes": attributes,
        }
        self._t0 = 0.0

    def set(self, **attributes: Any) -> None:
        """Attach attributes to the span after it was opened."""
        self.record["attributes"].update(attributes)

    @property
    def span_id(self) -> str:
        return self.record["span_id"]

    @property
    def trace_id(self) -> str:
        return self.record["trace_id"]

    def __enter__(self) -> "_ActiveSpan":
        self.tracer._push(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.record["duration"] = time.perf_counter() - self._t0
        if exc_type is not None:
            self.record["attributes"].setdefault("error", exc_type.__name__)
        self.tracer._pop(self)
        return None


class _RemoteContext:
    """Context manager installing a remote (trace_id, parent_id) pair so
    locally opened spans nest under a span from another process or
    connection — the PerfExplorer client→server propagation path."""

    __slots__ = ("tracer", "ids")

    def __init__(self, tracer: "Tracer", trace_id: str, parent_id: Optional[str]):
        self.tracer = tracer
        self.ids = (trace_id, parent_id)

    def __enter__(self) -> "_RemoteContext":
        self.tracer._stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        return None

    @property
    def span_id(self) -> Optional[str]:
        return self.ids[1]

    @property
    def trace_id(self) -> str:
        return self.ids[0]


class Tracer:
    """Per-process tracer: span stack per thread, one finished-span ring."""

    def __init__(self, capacity: int = RING_CAPACITY):
        self.enabled = False
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # -- span API ------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a span; returns a context manager.

        The disabled path returns a shared no-op object so callers can
        instrument unconditionally.
        """
        if not self.enabled:
            return _NOOP
        return _ActiveSpan(self, name, attributes)

    def record(self, name: str, duration: float, **attributes: Any) -> None:
        """Append an already-timed span (no context-manager scope).

        Used on hot paths that measured ``duration`` themselves; the
        span parents under the calling thread's current span.
        """
        if not self.enabled:
            return
        trace_id, parent_id = self._current_ids()
        rec = {
            "name": name,
            "trace_id": trace_id,
            "span_id": _new_span_id(),
            "parent_id": parent_id,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "thread": threading.current_thread().name,
            "start": time.time() - duration,
            "duration": duration,
            "attributes": attributes,
        }
        with self._lock:
            self._ring.append(rec)

    def context(self, trace_id: str, parent_id: Optional[str] = None) -> _RemoteContext:
        """Attach an externally propagated trace context (see module doc)."""
        return _RemoteContext(self, trace_id, parent_id)

    def current_context(self) -> Optional[tuple[str, Optional[str]]]:
        """(trace_id, span_id) of the innermost active span, for
        propagation over a wire protocol; None when no span is open."""
        stack = self._stack()
        if not stack:
            return None
        top = stack[-1]
        return (top.trace_id, top.span_id)

    # -- collected spans -------------------------------------------------------

    def finished(self) -> list[dict[str, Any]]:
        """Snapshot of the finished-span ring (oldest first)."""
        with self._lock:
            return list(self._ring)

    def drain(self) -> list[dict[str, Any]]:
        """Return and clear the finished spans (worker shipping helper)."""
        with self._lock:
            spans = list(self._ring)
            self._ring.clear()
        return spans

    def adopt(self, spans: Iterable[dict[str, Any]]) -> int:
        """Merge spans recorded elsewhere (another process) into the ring."""
        count = 0
        with self._lock:
            for rec in spans:
                self._ring.append(dict(rec))
                count += 1
        return count

    # -- exporters -------------------------------------------------------------

    def export_jsonl(self, path: str | os.PathLike) -> int:
        """One JSON object per line; returns the number of spans written."""
        spans = self.finished()
        with open(path, "w", encoding="utf-8") as fh:
            for rec in spans:
                fh.write(json.dumps(rec, sort_keys=True, default=str) + "\n")
        return len(spans)

    def export_chrome(self, path: str | os.PathLike) -> int:
        """Chrome trace-event format (load via ``chrome://tracing`` or
        https://ui.perfetto.dev).  Returns the number of events written."""
        events = [chrome_event(rec) for rec in self.finished()]
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, default=str)
        return len(events)

    # -- internals ---------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_ids(self) -> tuple[str, Optional[str]]:
        stack = self._stack()
        if stack:
            top = stack[-1]
            return (top.trace_id, top.span_id)
        return (new_trace_id(), None)

    def _push(self, span_: _ActiveSpan) -> None:
        self._stack().append(span_)

    def _pop(self, span_: _ActiveSpan) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_:
            stack.pop()
        with self._lock:
            self._ring.append(span_.record)


def chrome_event(rec: dict[str, Any]) -> dict[str, Any]:
    """One span dict → one complete ('X') Chrome trace event."""
    args = dict(rec.get("attributes") or {})
    args["span_id"] = rec.get("span_id")
    if rec.get("parent_id"):
        args["parent_id"] = rec["parent_id"]
    args["trace_id"] = rec.get("trace_id")
    return {
        "name": rec["name"],
        "cat": rec["name"].split(".", 1)[0],
        "ph": "X",
        "ts": rec["start"] * 1e6,
        "dur": rec["duration"] * 1e6,
        "pid": rec.get("pid", 0),
        "tid": rec.get("tid", 0),
        "args": args,
    }


#: The process-global tracer every layer shares.
tracer = Tracer()


def get_tracer() -> Tracer:
    return tracer


def span(name: str, **attributes: Any):
    """Module-level shorthand for ``get_tracer().span(...)``."""
    if not tracer.enabled:
        return _NOOP
    return _ActiveSpan(tracer, name, attributes)


def traced(name: str):
    """Decorator: run the function under a span named ``name``.

    The disabled path adds a single attribute check per call.
    """
    import functools

    def decorator(fn):
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with _ActiveSpan(tracer, name, {}):
                return fn(*args, **kwargs)

        return wrapper

    return decorator
