"""WAL-shipped read replicas for MiniSQL.

The PR 4 write-ahead log doubles as a replication stream: every
committed mutation of a file-backed archive is already a CRC-framed
logical record with a monotonic LSN.  A replica bootstraps from the
primary's checkpoint (the SQL dump + recovery trailer), then *tails*
the log — fetching records past its applied LSN, buffering each
transaction until its ``commit`` record arrives, and applying
committed work to an in-memory database it serves read-only.

Three cooperating pieces:

:class:`WalShipper`
    Primary-side hook.  ``snapshot()`` hands out the checkpoint script;
    ``fetch(after_lsn)`` re-frames every record past the replica's LSN
    with the on-disk CRC framing, so corruption anywhere between
    primary disk and replica memory is caught by the same
    :func:`~repro.db.minisql.wal.decode_buffer` used in crash
    recovery.  When the requested LSN predates the primary's own
    checkpoint (the segments were truncated), it answers ``resync`` and
    the replica re-bootstraps.

:class:`FileWalSource` / :class:`RemoteWalSource`
    Transport adapters with the same ``snapshot()``/``fetch()``
    surface: file-based tailing for same-host replicas and tests,
    JSON-RPC over the PerfExplorer wire protocol (``repl_snapshot`` /
    ``wal_ship`` methods, frames base64-wrapped) for the real thing.

:class:`Replica`
    The replay loop.  Idempotence is LSN-based: records at or below
    ``applied_lsn`` are skipped, so restarts, duplicated fetches and
    overlapping batches all converge.  Applies run under the replica
    database's writer lock with snapshot isolation enabled, so reads
    served concurrently never observe a half-applied batch.

Failure model: a torn segment at the primary stops the ship at the
tear, exactly like local recovery — the replica holds at the committed
prefix and resumes once the primary recovers.  A killed replica loses
only its in-memory state and re-bootstraps.  A killed primary leaves
replicas serving their last applied state (stale but consistent);
clients fail over to them for reads.
"""

from __future__ import annotations

import base64
import os
import threading
import time
from pathlib import Path
from typing import Any, Optional

from repro.obs.log import get_logger
from repro.obs.metrics import registry as _registry
from repro.testing import faults

from .errors import OperationalError
from .storage import Database
from .wal import (
    _encode_record, _rebuild_after_recovery, _restore_checkpoint,
    decode_buffer, read_records,
)
from .dump import parse_meta

_log = get_logger("repro.db.minisql.replica")

_LAG_SECONDS = _registry.gauge("replica.replication_lag_seconds")
_LAG_RECORDS = _registry.gauge("replica.replication_lag_records")
_APPLIED_LSN = _registry.gauge("replica.applied_lsn")
_BATCHES = _registry.counter("replica.batches_applied")
_RECORDS = _registry.counter("replica.records_applied")
_RESYNCS = _registry.counter("replica.resyncs")

#: fetch() caps one reply to this many records so a far-behind replica
#: streams in bounded batches instead of one giant message.
DEFAULT_FETCH_LIMIT = 10_000


class ReplicationError(OperationalError):
    pass


# ---------------------------------------------------------------------------
# primary side
# ---------------------------------------------------------------------------


class WalShipper:
    """Serves checkpoint snapshots and WAL tails for one primary."""

    def __init__(self, database: Database):
        if database.wal is None:
            raise ReplicationError(
                "WAL shipping requires a file-backed archive (the WAL is "
                "the replication stream)"
            )
        self.database = database
        #: replica_id -> {"lsn", "ts"} as observed from fetches; feeds
        #: ``perfdmf replicas`` on the primary.
        self.replicas: dict[str, dict[str, Any]] = {}
        self._lock = threading.Lock()

    def snapshot(self) -> dict[str, Any]:
        """The bootstrap payload: checkpoint script + its base LSN."""
        wal = self.database.wal
        # Hold the WAL mutex so no checkpoint swaps the archive file
        # between reading the script and reading its base LSN.
        with wal._lock:
            with open(wal.path, "r", encoding="utf-8", newline="") as fh:
                script = fh.read()
            base_lsn = wal.checkpoint_lsn
            last_lsn = wal.last_lsn
        return {"script": script, "base_lsn": base_lsn, "last_lsn": last_lsn}

    def fetch(
        self,
        after_lsn: int,
        replica_id: Optional[str] = None,
        limit: int = DEFAULT_FETCH_LIMIT,
    ) -> dict[str, Any]:
        """Ship CRC-framed records with LSN > ``after_lsn``."""
        faults.crash_point("replica.ship.fetch")
        wal = self.database.wal
        with wal._lock:
            if wal._fh is not None:
                wal._fh.flush()  # appended frames must be readable below
            checkpoint_lsn = wal.checkpoint_lsn
            last_lsn = wal.last_lsn
            if after_lsn < checkpoint_lsn:
                # The records this replica needs were folded into a
                # checkpoint and truncated — it must re-bootstrap.
                reply: dict[str, Any] = {
                    "resync": True,
                    "checkpoint_lsn": checkpoint_lsn,
                    "last_lsn": last_lsn,
                }
                self._observe(replica_id, after_lsn)
                return reply
            records, clean = read_records(wal.path)
        wanted = [r for r in records if r[0] > after_lsn]
        truncated = len(wanted) > limit
        if truncated:
            wanted = wanted[:limit]
        frames = b"".join(_encode_record(record) for record in wanted)
        self._observe(replica_id, after_lsn)
        return {
            "resync": False,
            "frames": frames,
            "count": len(wanted),
            "last_lsn": last_lsn,
            "clean": clean,
            "more": truncated,
        }

    def _observe(self, replica_id: Optional[str], lsn: int) -> None:
        if not replica_id:
            return
        with self._lock:
            self.replicas[str(replica_id)] = {"lsn": lsn, "ts": time.time()}

    def status(self) -> dict[str, Any]:
        wal = self.database.wal
        with self._lock:
            replicas = {
                rid: dict(info) for rid, info in self.replicas.items()
            }
        now = time.time()
        for info in replicas.values():
            info["seconds_since_fetch"] = round(now - info["ts"], 3)
        return {
            "role": "primary",
            "last_lsn": wal.last_lsn if wal is not None else 0,
            "checkpoint_lsn": wal.checkpoint_lsn if wal is not None else 0,
            "replicas": replicas,
        }


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------


class FileWalSource:
    """Tail a primary's archive + segments through the filesystem."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path).resolve()

    def _read_script(self) -> str:
        with open(self.path, "r", encoding="utf-8", newline="") as fh:
            return fh.read()

    def _base_lsn(self, script: str) -> int:
        meta = parse_meta(script)
        return int(meta.get("last_lsn", 0)) if meta else 0

    def snapshot(self) -> dict[str, Any]:
        script = self._read_script()
        base_lsn = self._base_lsn(script)
        return {"script": script, "base_lsn": base_lsn, "last_lsn": base_lsn}

    def fetch(self, after_lsn: int, limit: int = DEFAULT_FETCH_LIMIT) -> dict[str, Any]:
        base_lsn = self._base_lsn(self._read_script())
        if after_lsn < base_lsn:
            return {"resync": True, "checkpoint_lsn": base_lsn}
        records, clean = read_records(self.path)
        wanted = [r for r in records if r[0] > after_lsn]
        truncated = len(wanted) > limit
        if truncated:
            wanted = wanted[:limit]
        last_lsn = max([base_lsn] + [r[0] for r in records], default=0)
        return {
            "resync": False,
            "records": wanted,
            "count": len(wanted),
            "last_lsn": last_lsn,
            "clean": clean,
            "more": truncated,
        }

    def close(self) -> None:  # symmetry with RemoteWalSource
        pass


class RemoteWalSource:
    """Tail a primary over the PerfExplorer wire protocol."""

    def __init__(
        self,
        host: str,
        port: int,
        replica_id: Optional[str] = None,
        timeout: float = 10.0,
        client: Optional[Any] = None,
    ):
        if client is None:
            # Lazy upward import: the db layer only touches the explorer
            # client when a remote replica is actually constructed.
            from repro.explorer.client import PerfExplorerClient

            client = PerfExplorerClient(host, port, timeout=timeout)
        self.client = client
        self.replica_id = replica_id

    def snapshot(self) -> dict[str, Any]:
        return self.client.call("repl_snapshot")

    def fetch(self, after_lsn: int, limit: int = DEFAULT_FETCH_LIMIT) -> dict[str, Any]:
        reply = self.client.call(
            "wal_ship",
            after_lsn=int(after_lsn),
            replica_id=self.replica_id,
            limit=int(limit),
        )
        frames_b64 = reply.pop("frames_b64", None)
        if frames_b64 is not None:
            reply["frames"] = base64.b64decode(frames_b64)
        return reply

    def close(self) -> None:
        self.client.close()


# ---------------------------------------------------------------------------
# replica
# ---------------------------------------------------------------------------


class Replica:
    """Replays a shipped WAL into an in-memory database it owns."""

    def __init__(
        self,
        source,
        name: Optional[str] = None,
        poll_interval: float = 0.25,
        fetch_limit: int = DEFAULT_FETCH_LIMIT,
    ):
        self.source = source
        self.name = name or f"replica-{os.getpid()}"
        self.poll_interval = poll_interval
        self.fetch_limit = fetch_limit
        self.database = Database()
        # Served reads pin MVCC snapshots, so replay batches (which run
        # under the writer lock) can never tear a concurrent read.
        from . import snapshot as _snapshot

        _snapshot.enable(self.database)
        self.state = "init"
        self.applied_lsn = 0
        self.primary_lsn = 0
        self.batches_applied = 0
        self.records_applied = 0
        self.resyncs = 0
        self.errors = 0
        self.last_error: Optional[str] = None
        self.last_poll_ts: Optional[float] = None
        #: Wall-clock instant the replica was last fully caught up.
        self.caught_up_ts: Optional[float] = None
        #: txn id -> buffered records awaiting that txn's commit (a
        #: fetch batch may end mid-transaction).
        self._pending: dict[int, list[tuple]] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()  # serialises poll_once callers

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Replica":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=f"minisql-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)
        close = getattr(self.source, "close", None)
        if close is not None:
            try:
                close()
            except Exception:
                pass
        if self.state != "stopped":
            self.state = "stopped"

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.poll_once()
            except Exception as exc:  # transport hiccup: keep tailing
                self.errors += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
                if self.state not in ("stopped",):
                    self.state = "disconnected"
                _log.warning(
                    "replica_poll_error", replica=self.name,
                    error=self.last_error,
                )
            self._stop.wait(self.poll_interval)

    # -- replication protocol ------------------------------------------------

    def poll_once(self) -> int:
        """One bootstrap-or-fetch-and-apply cycle; returns records applied."""
        with self._lock:
            if self.state in ("init", "resync"):
                self._bootstrap()
            applied = self._fetch_and_apply()
            self.last_poll_ts = time.time()
            self._export_gauges()
            return applied

    def catch_up(self, timeout: float = 30.0) -> None:
        """Poll until no new records arrive (tests / initial sync)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            applied = self.poll_once()
            if (
                applied == 0
                and self.state == "streaming"
                and self.applied_lsn >= self.primary_lsn
            ):
                return
        raise ReplicationError(
            f"{self.name} failed to catch up within {timeout}s "
            f"(state={self.state}, applied_lsn={self.applied_lsn}, "
            f"primary_lsn={self.primary_lsn})"
        )

    def _bootstrap(self) -> None:
        reply = self.source.snapshot()
        script = reply["script"]
        db = self.database
        meta = parse_meta(script)
        with db.txn_lock:
            db.tables.clear()
            db.index_owner.clear()
            db.foreign_keys.clear()
            _restore_checkpoint(db, script, meta)
            _rebuild_after_recovery(db)
            # Restore re-runs DDL, which already bumps schema_version;
            # one extra bump guards the table-clearing itself.
            db.schema_version += 1
        self._pending.clear()
        self.applied_lsn = int(reply.get("base_lsn", 0))
        self.primary_lsn = int(reply.get("last_lsn", self.applied_lsn))
        self.state = "streaming"
        faults.crash_point("replica.bootstrap.after")
        _log.info(
            "replica_bootstrap", replica=self.name,
            base_lsn=self.applied_lsn, tables=len(db.tables),
        )

    def _fetch_and_apply(self) -> int:
        reply = self.source.fetch(self.applied_lsn, limit=self.fetch_limit)
        if reply.get("resync"):
            self.state = "resync"
            self.resyncs += 1
            _RESYNCS.inc()
            _log.info(
                "replica_resync", replica=self.name,
                applied_lsn=self.applied_lsn,
                primary_checkpoint_lsn=reply.get("checkpoint_lsn"),
            )
            return 0
        records = reply.get("records")
        if records is None:
            # A CRC tear inside the shipped batch truncates it at the
            # tear: the committed prefix still applies and the next
            # fetch re-requests everything after it.
            records, _clean = decode_buffer(reply.get("frames", b""))
        self.primary_lsn = max(
            self.primary_lsn, int(reply.get("last_lsn", 0))
        )
        applied = self._apply(records)
        if self.applied_lsn >= self.primary_lsn:
            self.caught_up_ts = time.time()
        self.state = "streaming"
        return applied

    def _apply(self, records: list[tuple]) -> int:
        if not records:
            return 0
        db = self.database
        touched: set[str] = set()
        applied = 0
        with db.txn_lock:
            faults.crash_point("replica.apply.before")
            for record in records:
                lsn = record[0]
                if lsn <= self.applied_lsn:
                    continue  # idempotent replay: already applied
                applied += self._consume(record, touched)
                self.applied_lsn = lsn
            self._finish_tables(touched)
            faults.crash_point("replica.apply.after")
        if applied:
            self.batches_applied += 1
            self.records_applied += applied
            _BATCHES.inc()
            _RECORDS.inc(applied)
        return applied

    def _consume(self, record: tuple, touched: set[str]) -> int:
        """Route one record: buffer per-txn, apply at commit."""
        txn, op = record[1], record[2]
        if txn == 0:
            self._apply_op(record, touched)
            return 1
        if op == "begin":
            self._pending[txn] = []
            return 0
        if op == "rollback":
            self._pending.pop(txn, None)
            return 0
        if op == "commit":
            buffered = self._pending.pop(txn, [])
            for item in buffered:
                self._apply_op(item, touched)
            return len(buffered)
        self._pending.setdefault(txn, []).append(record)
        return 0

    def _apply_op(self, record: tuple, touched: set[str]) -> None:
        """Mirror of recovery's record application, one record at a time."""
        op = record[2]
        db = self.database
        if op == "ddl":
            from .executor import Executor
            from .parser import parse

            executor = Executor(db)
            for statement in parse(record[3]):
                executor.execute(statement)
            return
        key = str(record[3]).lower()
        table = db.tables.get(key)
        if table is None:
            return  # table dropped later in history
        touched.add(key)
        if op == "ins":
            rowid, row = record[4], list(record[5])
            table.rows[rowid] = row
            if rowid >= table._next_rowid:
                table._next_rowid = rowid + 1
        elif op == "bmany":
            start, rows = record[4], record[5]
            for i, row in enumerate(rows):
                table.rows[start + i] = list(row)
            if rows and start + len(rows) > table._next_rowid:
                table._next_rowid = start + len(rows)
        elif op == "del":
            table.rows.pop(record[4], None)
        elif op == "upd":
            table.apply_raw_update(record[4], record[5])

    def _finish_tables(self, touched: set[str]) -> None:
        """Post-batch fixups for mutated tables: rowid high-water marks,
        index rebuilds, and a version bump so MVCC snapshot stamps (and
        cached plans' data) see the new batch."""
        db = self.database
        for key in touched:
            table = db.tables.get(key)
            if table is None:
                continue
            if table.rows:
                top = max(table.rows)
                if top >= table._next_rowid:
                    table._next_rowid = top + 1
            for index in table.indexes.values():
                index.rebuild()
            table.version += 1

    # -- introspection -------------------------------------------------------

    def replication_lag(self) -> tuple[int, float]:
        """(records behind, seconds since last caught up)."""
        lag_records = max(0, self.primary_lsn - self.applied_lsn)
        if lag_records == 0:
            return 0, 0.0
        reference = self.caught_up_ts or self.last_poll_ts
        if reference is None:
            return lag_records, 0.0
        return lag_records, max(0.0, time.time() - reference)

    def _export_gauges(self) -> None:
        lag_records, lag_seconds = self.replication_lag()
        _LAG_SECONDS.set(round(lag_seconds, 6))
        _LAG_RECORDS.set(lag_records)
        _APPLIED_LSN.set(self.applied_lsn)

    def status(self) -> dict[str, Any]:
        lag_records, lag_seconds = self.replication_lag()
        return {
            "role": "replica",
            "name": self.name,
            "state": self.state,
            "applied_lsn": self.applied_lsn,
            "primary_lsn": self.primary_lsn,
            "replication_lag_records": lag_records,
            "replication_lag_seconds": round(lag_seconds, 6),
            "batches_applied": self.batches_applied,
            "records_applied": self.records_applied,
            "resyncs": self.resyncs,
            "errors": self.errors,
            "last_error": self.last_error,
            "pending_transactions": len(self._pending),
        }

    # -- serving -------------------------------------------------------------

    def shared_url(self) -> str:
        """Register the replica database under a shared name and return
        the ``minisql://`` URL the PerfExplorer server can mount."""
        from .engine import register_shared_database

        name = f"replica/{self.name}"
        register_shared_database(name, self.database)
        return f"minisql://{name}"
