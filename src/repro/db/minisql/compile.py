"""Expression-to-closure compilation for MiniSQL.

The interpreter in :mod:`~repro.db.minisql.expr` re-walks the AST for
every row: each node costs an ``isinstance`` dispatch chain, and every
column reference goes through a dict lookup (plus exception handling for
the ambiguous/missing cases) in ``RowContext``.  At PerfDMF scale — §5.3
queries over >1.6M interval_location_profile rows — that interpretive
overhead dominates query time.

This module lowers a bound expression tree into nested Python closures
*once per statement*:

* column references resolve to fixed row offsets at compile time
  (``row[17]``, no per-row name resolution);
* literals are pre-bound constants; placeholders index ``params``;
* comparison operators become pre-selected :mod:`operator` functions
  wrapped in the exact NULL/affinity-coercion rules of
  ``expr._compare``;
* ``LIKE`` against a literal pattern pre-compiles its regex.

Every closure has the uniform signature ``fn(row, params, aggs) ->
value`` — ``aggs`` carries finalized aggregate values for post-GROUP BY
expressions (HAVING, projections over aggregates), and is ``None``
during row scans.

Semantics are the interpreter's, bit for bit: three-valued logic,
NULL propagation, sqlite's numeric-string comparison coercion,
division-by-zero → NULL, and the int-division rule all mirror
``expr.py``.  Anything the compiler cannot prove it handles identically
— unresolvable or ambiguous column refs (the interpreter only raises
when a row actually exists), unknown scalar functions, aggregate misuse,
subqueries, ``*`` — raises :class:`CannotCompile` and the executor falls
back to the interpreter for that pipeline section.  The differential SQL
corpus runs under both ``PRAGMA compile on`` and ``off`` to prove the
two paths agree.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from .ast_nodes import (
    Between, BinaryOp, CaseExpr, CastExpr, ColumnRef, Expression,
    FunctionCall, InList, IsNull, Like, Literal, Placeholder, UnaryOp,
)
from .errors import DataError, ProgrammingError
from .expr import _as_text, _like_regex, _maybe_number, truthy
from .functions import SCALAR_FUNCTIONS, is_aggregate
from .types import cast_value

#: Compiled closure signature: (row, params, aggs) -> value.
CompiledExpr = Callable[[Sequence[Any], Sequence[Any], Optional[Sequence[Any]]], Any]


class CannotCompile(Exception):
    """Raised when an expression must stay on the interpreter.

    Not an error: the executor catches it and routes the pipeline
    section through ``expr.evaluate`` so behaviour (including *when*
    errors are raised — e.g. a bad column name over an empty table) is
    unchanged.
    """


# ---------------------------------------------------------------------------
# plan containers (filled in by the executor, cached on Statement objects)
# ---------------------------------------------------------------------------


@dataclass
class JoinPlan:
    """Compiled closures for one hash/nested-loop join stage."""

    probe: Optional[CompiledExpr]  # outer-side key, over the padded row
    build: Optional[CompiledExpr]  # inner-side key, over the inner table row
    condition: Optional[CompiledExpr]  # full ON condition, over the padded row


@dataclass
class GroupPlan:
    """Compiled hash-aggregation: group keys, aggregate arguments, and
    post-aggregation (HAVING / projection / ORDER BY) closures."""

    group_fns: list[CompiledExpr]
    #: One factory per aggregate call site (handles DISTINCT wrapping).
    acc_factories: list[Callable[[], Any]]
    #: Per aggregate: argument closure, or None for COUNT(*).
    arg_fns: list[Optional[CompiledExpr]]
    having_fn: Optional[CompiledExpr]  # None = no HAVING clause
    #: Per result column: int (representative-row position for ``*``
    #: columns) or a closure over (representative, params, aggs).
    item_slots: list[Any]
    #: Per ORDER BY item: (int projected index | closure, descending).
    order_specs: Optional[list[tuple[Any, bool]]]  # None = no ORDER BY


@dataclass
class SelectPlan:
    """Everything compiled for one SELECT, cached on the Statement.

    Sections are independently optional: ``None`` means "interpret that
    stage".  ``fallbacks`` counts the sections that needed the
    interpreter, charged to ``Database.stats['compile_fallbacks']`` once
    per execution.
    """

    schema_version: int
    layout: Any  # executor._Layout, reused across executions
    columns: Optional[list[str]]  # result column names (None: expansion failed)
    exprs: Optional[list[Any]]  # _expand_items output (int | Expression)
    where_fn: Optional[CompiledExpr]
    joins: list[Optional[JoinPlan]] = field(default_factory=list)
    grouped: Optional[GroupPlan] = None
    is_grouped: bool = False
    proj: Optional[list[Any]] = None  # per column: int | closure
    order_specs: Optional[list[tuple[Any, bool]]] = None
    order_compiled: bool = False
    fallbacks: int = 0
    #: Column-projection pushdown for single-table full scans: row
    #: positions the statement touches, plus the same sections recompiled
    #: against the compacted row shape.  None when ineligible.
    compact: Optional["CompactPlan"] = None


@dataclass
class CompactPlan:
    """Plan sections recompiled against a projected (compact) row."""

    positions: Optional[tuple[int, ...]]  # None = statement uses every column
    where_fn: Optional[CompiledExpr]
    grouped: Optional[GroupPlan]
    proj: Optional[list[Any]]
    order_specs: Optional[list[tuple[Any, bool]]]


@dataclass
class DMLPlan:
    """Compiled WHERE / SET closures for UPDATE and DELETE."""

    schema_version: int
    where_fn: Optional[CompiledExpr]
    assign_fns: Optional[list[tuple[int, CompiledExpr]]]
    fallbacks: int = 0


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------

_CMP_FUNCS = {
    "=": operator.eq, "<>": operator.ne,
    "<": operator.lt, ">": operator.gt,
    "<=": operator.le, ">=": operator.ge,
}


def _compare_values(opf: Callable[[Any, Any], bool], is_ne: bool,
                    left: Any, right: Any) -> Any:
    """``expr._compare`` with the operator pre-dispatched."""
    if left is None or right is None:
        return None
    if isinstance(left, str) != isinstance(right, str):
        if isinstance(left, str):
            left = _maybe_number(left)
        else:
            right = _maybe_number(right)
        if isinstance(left, str) != isinstance(right, str):
            return int(is_ne)  # incomparable: only <> is true
    return int(opf(left, right))


_EQ = operator.eq


def _eq_values(left: Any, right: Any) -> Any:
    """``expr._compare('=', ...)`` — shared by IN / simple CASE."""
    if left is None or right is None:
        return None
    if isinstance(left, str) != isinstance(right, str):
        if isinstance(left, str):
            left = _maybe_number(left)
        else:
            right = _maybe_number(right)
        if isinstance(left, str) != isinstance(right, str):
            return 0
    return int(left == right)


def compile_expr(
    expr: Expression,
    resolution: Mapping[str, int],
    agg_slots: Optional[dict[int, int]] = None,
    used: Optional[set] = None,
) -> CompiledExpr:
    """Lower ``expr`` to a closure, or raise :class:`CannotCompile`.

    ``resolution`` maps lowered column keys (``name`` / ``alias.name``)
    to row offsets.  ``agg_slots`` maps ``id(FunctionCall)`` of
    precomputed aggregate call sites to indexes into the ``aggs``
    argument.  ``used`` (when given) accumulates every row offset the
    compiled closure reads — the projection-pushdown analysis.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row, params, aggs: value

    if isinstance(expr, Placeholder):
        index = expr.index

        def placeholder_fn(row, params, aggs):
            try:
                return params[index]
            except IndexError:
                raise ProgrammingError(
                    f"statement uses parameter {index + 1} but only "
                    f"{len(params)} supplied"
                ) from None

        return placeholder_fn

    if isinstance(expr, ColumnRef):
        position = resolution.get(expr.qualified.lower())
        if position is None:
            # Ambiguous or unknown name: the interpreter raises only when
            # a row is actually bound, so this must stay interpreted.
            raise CannotCompile(expr.qualified)
        if used is not None:
            used.add(position)
        return lambda row, params, aggs: row[position]

    if isinstance(expr, UnaryOp):
        op = expr.op
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        if op == "NOT":
            def not_fn(row, params, aggs):
                value = operand(row, params, aggs)
                if value is None:
                    return None
                return int(not truthy(value))
            return not_fn
        if op == "-":
            def neg_fn(row, params, aggs):
                value = operand(row, params, aggs)
                if value is None:
                    return None
                if not isinstance(value, (int, float)):
                    raise DataError(f"non-numeric operand for unary -: {value!r}")
                return -value
            return neg_fn
        # Unknown unary ops raise per-row in the interpreter (after a
        # NULL short-circuit) — leave them there.
        raise CannotCompile(f"unary {op}")

    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, resolution, agg_slots, used)

    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        negated = expr.negated
        return lambda row, params, aggs: int(
            (operand(row, params, aggs) is None) != negated
        )

    if isinstance(expr, InList):
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        items = [compile_expr(i, resolution, agg_slots, used) for i in expr.items]
        negated = expr.negated

        def in_fn(row, params, aggs):
            value = operand(row, params, aggs)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row, params, aggs)
                if candidate is None:
                    saw_null = True
                    continue
                if _eq_values(value, candidate):
                    return int(not negated)
            if saw_null:
                return None
            return int(negated)

        return in_fn

    if isinstance(expr, Between):
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        low = compile_expr(expr.low, resolution, agg_slots, used)
        high = compile_expr(expr.high, resolution, agg_slots, used)
        negated = expr.negated
        ge = operator.ge
        le = operator.le

        def between_fn(row, params, aggs):
            value = operand(row, params, aggs)
            lo = low(row, params, aggs)
            hi = high(row, params, aggs)
            if value is None or lo is None or hi is None:
                return None
            result = bool(_compare_values(ge, False, value, lo)) and bool(
                _compare_values(le, False, value, hi)
            )
            return int(result != negated)

        return between_fn

    if isinstance(expr, Like):
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        negated = expr.negated
        if isinstance(expr.pattern, Literal) and expr.pattern.value is not None:
            regex = _like_regex(str(expr.pattern.value))

            def like_const_fn(row, params, aggs):
                value = operand(row, params, aggs)
                if value is None:
                    return None
                result = regex.match(str(value)) is not None
                return int(result != negated)

            return like_const_fn
        pattern = compile_expr(expr.pattern, resolution, agg_slots, used)

        def like_fn(row, params, aggs):
            value = operand(row, params, aggs)
            pat = pattern(row, params, aggs)
            if value is None or pat is None:
                return None
            result = _like_regex(str(pat)).match(str(value)) is not None
            return int(result != negated)

        return like_fn

    if isinstance(expr, FunctionCall):
        return _compile_function(expr, resolution, agg_slots, used)

    if isinstance(expr, CaseExpr):
        return _compile_case(expr, resolution, agg_slots, used)

    if isinstance(expr, CastExpr):
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        target = expr.target_type
        return lambda row, params, aggs: cast_value(
            operand(row, params, aggs), target
        )

    # Star, Subquery, anything new: interpreter territory.
    raise CannotCompile(type(expr).__name__)


def _compile_binary(
    expr: BinaryOp,
    resolution: Mapping[str, int],
    agg_slots: Optional[dict[int, int]],
    used: Optional[set],
) -> CompiledExpr:
    op = expr.op
    left = compile_expr(expr.left, resolution, agg_slots, used)
    right = compile_expr(expr.right, resolution, agg_slots, used)

    if op == "AND":
        def and_fn(row, params, aggs):
            lhs = left(row, params, aggs)
            if lhs is not None and not truthy(lhs):
                return 0
            rhs = right(row, params, aggs)
            if rhs is not None and not truthy(rhs):
                return 0
            if lhs is None or rhs is None:
                return None
            return 1
        return and_fn

    if op == "OR":
        def or_fn(row, params, aggs):
            lhs = left(row, params, aggs)
            if lhs is not None and truthy(lhs):
                return 1
            rhs = right(row, params, aggs)
            if rhs is not None and truthy(rhs):
                return 1
            if lhs is None or rhs is None:
                return None
            return 0
        return or_fn

    if op == "||":
        def concat_fn(row, params, aggs):
            lhs = left(row, params, aggs)
            rhs = right(row, params, aggs)
            if lhs is None or rhs is None:
                return None
            return _as_text(lhs) + _as_text(rhs)
        return concat_fn

    if op in _CMP_FUNCS:
        opf = _CMP_FUNCS[op]
        is_ne = op == "<>"

        def cmp_fn(row, params, aggs):
            lhs = left(row, params, aggs)
            rhs = right(row, params, aggs)
            if lhs is None or rhs is None:
                return None
            if isinstance(lhs, str) != isinstance(rhs, str):
                if isinstance(lhs, str):
                    lhs = _maybe_number(lhs)
                else:
                    rhs = _maybe_number(rhs)
                if isinstance(lhs, str) != isinstance(rhs, str):
                    return int(is_ne)
            return int(opf(lhs, rhs))

        return cmp_fn

    if op in ("+", "-", "*", "/", "%"):
        if op == "+":
            arith = operator.add
        elif op == "-":
            arith = operator.sub
        elif op == "*":
            arith = operator.mul
        else:
            arith = None  # '/' and '%' need their zero/NULL rules inline

        if arith is not None:
            def arith_fn(row, params, aggs):
                lhs = left(row, params, aggs)
                rhs = right(row, params, aggs)
                if lhs is None or rhs is None:
                    return None
                if not isinstance(lhs, (int, float)):
                    raise DataError(f"non-numeric operand for {op}: {lhs!r}")
                if not isinstance(rhs, (int, float)):
                    raise DataError(f"non-numeric operand for {op}: {rhs!r}")
                return arith(lhs, rhs)
            return arith_fn

        if op == "/":
            def div_fn(row, params, aggs):
                lhs = left(row, params, aggs)
                rhs = right(row, params, aggs)
                if lhs is None or rhs is None:
                    return None
                if not isinstance(lhs, (int, float)):
                    raise DataError(f"non-numeric operand for /: {lhs!r}")
                if not isinstance(rhs, (int, float)):
                    raise DataError(f"non-numeric operand for /: {rhs!r}")
                if rhs == 0:
                    return None  # sqlite yields NULL on division by zero
                if isinstance(lhs, int) and isinstance(rhs, int):
                    return lhs // rhs if lhs % rhs == 0 else lhs / rhs
                return lhs / rhs
            return div_fn

        def mod_fn(row, params, aggs):
            lhs = left(row, params, aggs)
            rhs = right(row, params, aggs)
            if lhs is None or rhs is None:
                return None
            if not isinstance(lhs, (int, float)):
                raise DataError(f"non-numeric operand for %: {lhs!r}")
            if not isinstance(rhs, (int, float)):
                raise DataError(f"non-numeric operand for %: {rhs!r}")
            if rhs == 0:
                return None
            return lhs % rhs
        return mod_fn

    # Unknown binary operator: interpreter raises per row.
    raise CannotCompile(f"binary {op}")


def _compile_function(
    expr: FunctionCall,
    resolution: Mapping[str, int],
    agg_slots: Optional[dict[int, int]],
    used: Optional[set],
) -> CompiledExpr:
    name = expr.name
    if agg_slots is not None:
        slot = agg_slots.get(id(expr))
        if slot is not None:
            return lambda row, params, aggs: aggs[slot]
    if is_aggregate(name) and not (name in ("MIN", "MAX") and len(expr.args) >= 2):
        # Aggregate misuse raises per-row in the interpreter; nested
        # aggregates inside a grouped query take this path too.
        raise CannotCompile(f"aggregate {name}")
    fn = SCALAR_FUNCTIONS.get(name)
    if fn is None:
        # "no such function" is a per-row error in the interpreter.
        raise CannotCompile(f"function {name}")
    args = [compile_expr(a, resolution, agg_slots, used) for a in expr.args]

    if len(args) == 1:
        arg0 = args[0]

        def call1_fn(row, params, aggs):
            try:
                return fn(arg0(row, params, aggs))
            except TypeError as exc:
                raise ProgrammingError(
                    f"wrong argument count for {name}(): {exc}"
                ) from None

        return call1_fn

    def call_fn(row, params, aggs):
        values = [a(row, params, aggs) for a in args]
        try:
            return fn(*values)
        except TypeError as exc:
            raise ProgrammingError(
                f"wrong argument count for {name}(): {exc}"
            ) from None

    return call_fn


def _compile_case(
    expr: CaseExpr,
    resolution: Mapping[str, int],
    agg_slots: Optional[dict[int, int]],
    used: Optional[set],
) -> CompiledExpr:
    whens = [
        (
            compile_expr(condition, resolution, agg_slots, used),
            compile_expr(result, resolution, agg_slots, used),
        )
        for condition, result in expr.whens
    ]
    default = (
        compile_expr(expr.default, resolution, agg_slots, used)
        if expr.default is not None else None
    )
    if expr.operand is not None:
        subject_fn = compile_expr(expr.operand, resolution, agg_slots, used)

        def case_simple_fn(row, params, aggs):
            subject = subject_fn(row, params, aggs)
            for condition, result in whens:
                candidate = condition(row, params, aggs)
                if (
                    subject is not None and candidate is not None
                    and _eq_values(subject, candidate)
                ):
                    return result(row, params, aggs)
            if default is not None:
                return default(row, params, aggs)
            return None

        return case_simple_fn

    def case_fn(row, params, aggs):
        for condition, result in whens:
            if truthy(condition(row, params, aggs)):
                return result(row, params, aggs)
        if default is not None:
            return default(row, params, aggs)
        return None

    return case_fn


def try_compile(
    expr: Expression,
    resolution: Mapping[str, int],
    agg_slots: Optional[dict[int, int]] = None,
    used: Optional[set] = None,
) -> Optional[CompiledExpr]:
    """``compile_expr`` returning None instead of raising.

    Catches *any* exception: a compile-time failure must never surface
    differently than the interpreter would — the section simply stays
    interpreted and the interpreter raises (or not) with its own timing.
    """
    try:
        return compile_expr(expr, resolution, agg_slots, used)
    except Exception:
        return None
