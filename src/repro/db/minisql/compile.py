"""Expression-to-closure compilation for MiniSQL.

The interpreter in :mod:`~repro.db.minisql.expr` re-walks the AST for
every row: each node costs an ``isinstance`` dispatch chain, and every
column reference goes through a dict lookup (plus exception handling for
the ambiguous/missing cases) in ``RowContext``.  At PerfDMF scale — §5.3
queries over >1.6M interval_location_profile rows — that interpretive
overhead dominates query time.

This module lowers a bound expression tree into nested Python closures
*once per statement*:

* column references resolve to fixed row offsets at compile time
  (``row[17]``, no per-row name resolution);
* literals are pre-bound constants; placeholders index ``params``;
* comparison operators become pre-selected :mod:`operator` functions
  wrapped in the exact NULL/affinity-coercion rules of
  ``expr._compare``;
* ``LIKE`` against a literal pattern pre-compiles its regex.

Every closure has the uniform signature ``fn(row, params, aggs) ->
value`` — ``aggs`` carries finalized aggregate values for post-GROUP BY
expressions (HAVING, projections over aggregates), and is ``None``
during row scans.

Semantics are the interpreter's, bit for bit: three-valued logic,
NULL propagation, sqlite's numeric-string comparison coercion,
division-by-zero → NULL, and the int-division rule all mirror
``expr.py``.  Anything the compiler cannot prove it handles identically
— unresolvable or ambiguous column refs (the interpreter only raises
when a row actually exists), unknown scalar functions, aggregate misuse,
subqueries, ``*`` — raises :class:`CannotCompile` and the executor falls
back to the interpreter for that pipeline section.  The differential SQL
corpus runs under both ``PRAGMA compile on`` and ``off`` to prove the
two paths agree.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from itertools import repeat
from typing import Any, Callable, Mapping, Optional, Sequence

from .ast_nodes import (
    Between, BinaryOp, CaseExpr, CastExpr, ColumnRef, Expression,
    FunctionCall, InList, IsNull, Like, Literal, Placeholder, UnaryOp,
)
from .errors import DataError, ProgrammingError
from .expr import _as_text, _like_regex, _maybe_number, truthy
from .functions import SCALAR_FUNCTIONS, is_aggregate
from .types import cast_value

#: Compiled closure signature: (row, params, aggs) -> value.
CompiledExpr = Callable[[Sequence[Any], Sequence[Any], Optional[Sequence[Any]]], Any]


class CannotCompile(Exception):
    """Raised when an expression must stay on the interpreter.

    Not an error: the executor catches it and routes the pipeline
    section through ``expr.evaluate`` so behaviour (including *when*
    errors are raised — e.g. a bad column name over an empty table) is
    unchanged.
    """


# ---------------------------------------------------------------------------
# plan containers (filled in by the executor, cached on Statement objects)
# ---------------------------------------------------------------------------


@dataclass
class JoinPlan:
    """Compiled closures for one hash/nested-loop join stage."""

    probe: Optional[CompiledExpr]  # outer-side key, over the padded row
    build: Optional[CompiledExpr]  # inner-side key, over the inner table row
    condition: Optional[CompiledExpr]  # full ON condition, over the padded row


@dataclass
class GroupPlan:
    """Compiled hash-aggregation: group keys, aggregate arguments, and
    post-aggregation (HAVING / projection / ORDER BY) closures."""

    group_fns: list[CompiledExpr]
    #: One factory per aggregate call site (handles DISTINCT wrapping).
    acc_factories: list[Callable[[], Any]]
    #: Per aggregate: argument closure, or None for COUNT(*).
    arg_fns: list[Optional[CompiledExpr]]
    having_fn: Optional[CompiledExpr]  # None = no HAVING clause
    #: Per result column: int (representative-row position for ``*``
    #: columns) or a closure over (representative, params, aggs).
    item_slots: list[Any]
    #: Per ORDER BY item: (int projected index | closure, descending).
    order_specs: Optional[list[tuple[Any, bool]]]  # None = no ORDER BY


@dataclass
class SelectPlan:
    """Everything compiled for one SELECT, cached on the Statement.

    Sections are independently optional: ``None`` means "interpret that
    stage".  ``fallbacks`` counts the sections that needed the
    interpreter, charged to ``Database.stats['compile_fallbacks']`` once
    per execution.
    """

    schema_version: int
    layout: Any  # executor._Layout, reused across executions
    columns: Optional[list[str]]  # result column names (None: expansion failed)
    exprs: Optional[list[Any]]  # _expand_items output (int | Expression)
    where_fn: Optional[CompiledExpr]
    joins: list[Optional[JoinPlan]] = field(default_factory=list)
    grouped: Optional[GroupPlan] = None
    is_grouped: bool = False
    proj: Optional[list[Any]] = None  # per column: int | closure
    order_specs: Optional[list[tuple[Any, bool]]] = None
    order_compiled: bool = False
    fallbacks: int = 0
    #: Column-projection pushdown for single-table full scans: row
    #: positions the statement touches, plus the same sections recompiled
    #: against the compacted row shape.  None when ineligible.
    compact: Optional["CompactPlan"] = None
    #: Whole-column vectorized execution over a columnar table; only
    #: built when ``compact`` exists and the table was columnar at plan
    #: time.  None when ineligible.
    vector: Optional["VectorPlan"] = None


@dataclass
class CompactPlan:
    """Plan sections recompiled against a projected (compact) row."""

    positions: Optional[tuple[int, ...]]  # None = statement uses every column
    where_fn: Optional[CompiledExpr]
    grouped: Optional[GroupPlan]
    proj: Optional[list[Any]]
    order_specs: Optional[list[tuple[Any, bool]]]


@dataclass
class DMLPlan:
    """Compiled WHERE / SET closures for UPDATE and DELETE."""

    schema_version: int
    where_fn: Optional[CompiledExpr]
    assign_fns: Optional[list[tuple[int, CompiledExpr]]]
    fallbacks: int = 0


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------

_CMP_FUNCS = {
    "=": operator.eq, "<>": operator.ne,
    "<": operator.lt, ">": operator.gt,
    "<=": operator.le, ">=": operator.ge,
}


def _compare_values(opf: Callable[[Any, Any], bool], is_ne: bool,
                    left: Any, right: Any) -> Any:
    """``expr._compare`` with the operator pre-dispatched."""
    if left is None or right is None:
        return None
    if isinstance(left, str) != isinstance(right, str):
        if isinstance(left, str):
            left = _maybe_number(left)
        else:
            right = _maybe_number(right)
        if isinstance(left, str) != isinstance(right, str):
            return int(is_ne)  # incomparable: only <> is true
    return int(opf(left, right))


_EQ = operator.eq


def _eq_values(left: Any, right: Any) -> Any:
    """``expr._compare('=', ...)`` — shared by IN / simple CASE."""
    if left is None or right is None:
        return None
    if isinstance(left, str) != isinstance(right, str):
        if isinstance(left, str):
            left = _maybe_number(left)
        else:
            right = _maybe_number(right)
        if isinstance(left, str) != isinstance(right, str):
            return 0
    return int(left == right)


def compile_expr(
    expr: Expression,
    resolution: Mapping[str, int],
    agg_slots: Optional[dict[int, int]] = None,
    used: Optional[set] = None,
) -> CompiledExpr:
    """Lower ``expr`` to a closure, or raise :class:`CannotCompile`.

    ``resolution`` maps lowered column keys (``name`` / ``alias.name``)
    to row offsets.  ``agg_slots`` maps ``id(FunctionCall)`` of
    precomputed aggregate call sites to indexes into the ``aggs``
    argument.  ``used`` (when given) accumulates every row offset the
    compiled closure reads — the projection-pushdown analysis.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row, params, aggs: value

    if isinstance(expr, Placeholder):
        index = expr.index

        def placeholder_fn(row, params, aggs):
            try:
                return params[index]
            except IndexError:
                raise ProgrammingError(
                    f"statement uses parameter {index + 1} but only "
                    f"{len(params)} supplied"
                ) from None

        return placeholder_fn

    if isinstance(expr, ColumnRef):
        position = resolution.get(expr.qualified.lower())
        if position is None:
            # Ambiguous or unknown name: the interpreter raises only when
            # a row is actually bound, so this must stay interpreted.
            raise CannotCompile(expr.qualified)
        if used is not None:
            used.add(position)
        return lambda row, params, aggs: row[position]

    if isinstance(expr, UnaryOp):
        op = expr.op
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        if op == "NOT":
            def not_fn(row, params, aggs):
                value = operand(row, params, aggs)
                if value is None:
                    return None
                return int(not truthy(value))
            return not_fn
        if op == "-":
            def neg_fn(row, params, aggs):
                value = operand(row, params, aggs)
                if value is None:
                    return None
                if not isinstance(value, (int, float)):
                    raise DataError(f"non-numeric operand for unary -: {value!r}")
                return -value
            return neg_fn
        # Unknown unary ops raise per-row in the interpreter (after a
        # NULL short-circuit) — leave them there.
        raise CannotCompile(f"unary {op}")

    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, resolution, agg_slots, used)

    if isinstance(expr, IsNull):
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        negated = expr.negated
        return lambda row, params, aggs: int(
            (operand(row, params, aggs) is None) != negated
        )

    if isinstance(expr, InList):
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        items = [compile_expr(i, resolution, agg_slots, used) for i in expr.items]
        negated = expr.negated

        def in_fn(row, params, aggs):
            value = operand(row, params, aggs)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row, params, aggs)
                if candidate is None:
                    saw_null = True
                    continue
                if _eq_values(value, candidate):
                    return int(not negated)
            if saw_null:
                return None
            return int(negated)

        return in_fn

    if isinstance(expr, Between):
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        low = compile_expr(expr.low, resolution, agg_slots, used)
        high = compile_expr(expr.high, resolution, agg_slots, used)
        negated = expr.negated
        ge = operator.ge
        le = operator.le

        def between_fn(row, params, aggs):
            value = operand(row, params, aggs)
            lo = low(row, params, aggs)
            hi = high(row, params, aggs)
            if value is None or lo is None or hi is None:
                return None
            result = bool(_compare_values(ge, False, value, lo)) and bool(
                _compare_values(le, False, value, hi)
            )
            return int(result != negated)

        return between_fn

    if isinstance(expr, Like):
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        negated = expr.negated
        if isinstance(expr.pattern, Literal) and expr.pattern.value is not None:
            regex = _like_regex(str(expr.pattern.value))

            def like_const_fn(row, params, aggs):
                value = operand(row, params, aggs)
                if value is None:
                    return None
                result = regex.match(str(value)) is not None
                return int(result != negated)

            return like_const_fn
        pattern = compile_expr(expr.pattern, resolution, agg_slots, used)

        def like_fn(row, params, aggs):
            value = operand(row, params, aggs)
            pat = pattern(row, params, aggs)
            if value is None or pat is None:
                return None
            result = _like_regex(str(pat)).match(str(value)) is not None
            return int(result != negated)

        return like_fn

    if isinstance(expr, FunctionCall):
        return _compile_function(expr, resolution, agg_slots, used)

    if isinstance(expr, CaseExpr):
        return _compile_case(expr, resolution, agg_slots, used)

    if isinstance(expr, CastExpr):
        operand = compile_expr(expr.operand, resolution, agg_slots, used)
        target = expr.target_type
        return lambda row, params, aggs: cast_value(
            operand(row, params, aggs), target
        )

    # Star, Subquery, anything new: interpreter territory.
    raise CannotCompile(type(expr).__name__)


def _compile_binary(
    expr: BinaryOp,
    resolution: Mapping[str, int],
    agg_slots: Optional[dict[int, int]],
    used: Optional[set],
) -> CompiledExpr:
    op = expr.op
    left = compile_expr(expr.left, resolution, agg_slots, used)
    right = compile_expr(expr.right, resolution, agg_slots, used)

    if op == "AND":
        def and_fn(row, params, aggs):
            lhs = left(row, params, aggs)
            if lhs is not None and not truthy(lhs):
                return 0
            rhs = right(row, params, aggs)
            if rhs is not None and not truthy(rhs):
                return 0
            if lhs is None or rhs is None:
                return None
            return 1
        return and_fn

    if op == "OR":
        def or_fn(row, params, aggs):
            lhs = left(row, params, aggs)
            if lhs is not None and truthy(lhs):
                return 1
            rhs = right(row, params, aggs)
            if rhs is not None and truthy(rhs):
                return 1
            if lhs is None or rhs is None:
                return None
            return 0
        return or_fn

    if op == "||":
        def concat_fn(row, params, aggs):
            lhs = left(row, params, aggs)
            rhs = right(row, params, aggs)
            if lhs is None or rhs is None:
                return None
            return _as_text(lhs) + _as_text(rhs)
        return concat_fn

    if op in _CMP_FUNCS:
        opf = _CMP_FUNCS[op]
        is_ne = op == "<>"

        def cmp_fn(row, params, aggs):
            lhs = left(row, params, aggs)
            rhs = right(row, params, aggs)
            if lhs is None or rhs is None:
                return None
            if isinstance(lhs, str) != isinstance(rhs, str):
                if isinstance(lhs, str):
                    lhs = _maybe_number(lhs)
                else:
                    rhs = _maybe_number(rhs)
                if isinstance(lhs, str) != isinstance(rhs, str):
                    return int(is_ne)
            return int(opf(lhs, rhs))

        return cmp_fn

    if op in ("+", "-", "*", "/", "%"):
        if op == "+":
            arith = operator.add
        elif op == "-":
            arith = operator.sub
        elif op == "*":
            arith = operator.mul
        else:
            arith = None  # '/' and '%' need their zero/NULL rules inline

        if arith is not None:
            def arith_fn(row, params, aggs):
                lhs = left(row, params, aggs)
                rhs = right(row, params, aggs)
                if lhs is None or rhs is None:
                    return None
                if not isinstance(lhs, (int, float)):
                    raise DataError(f"non-numeric operand for {op}: {lhs!r}")
                if not isinstance(rhs, (int, float)):
                    raise DataError(f"non-numeric operand for {op}: {rhs!r}")
                return arith(lhs, rhs)
            return arith_fn

        if op == "/":
            def div_fn(row, params, aggs):
                lhs = left(row, params, aggs)
                rhs = right(row, params, aggs)
                if lhs is None or rhs is None:
                    return None
                if not isinstance(lhs, (int, float)):
                    raise DataError(f"non-numeric operand for /: {lhs!r}")
                if not isinstance(rhs, (int, float)):
                    raise DataError(f"non-numeric operand for /: {rhs!r}")
                if rhs == 0:
                    return None  # sqlite yields NULL on division by zero
                if isinstance(lhs, int) and isinstance(rhs, int):
                    return lhs // rhs if lhs % rhs == 0 else lhs / rhs
                return lhs / rhs
            return div_fn

        def mod_fn(row, params, aggs):
            lhs = left(row, params, aggs)
            rhs = right(row, params, aggs)
            if lhs is None or rhs is None:
                return None
            if not isinstance(lhs, (int, float)):
                raise DataError(f"non-numeric operand for %: {lhs!r}")
            if not isinstance(rhs, (int, float)):
                raise DataError(f"non-numeric operand for %: {rhs!r}")
            if rhs == 0:
                return None
            return lhs % rhs
        return mod_fn

    # Unknown binary operator: interpreter raises per row.
    raise CannotCompile(f"binary {op}")


def _compile_function(
    expr: FunctionCall,
    resolution: Mapping[str, int],
    agg_slots: Optional[dict[int, int]],
    used: Optional[set],
) -> CompiledExpr:
    name = expr.name
    if agg_slots is not None:
        slot = agg_slots.get(id(expr))
        if slot is not None:
            return lambda row, params, aggs: aggs[slot]
    if is_aggregate(name) and not (name in ("MIN", "MAX") and len(expr.args) >= 2):
        # Aggregate misuse raises per-row in the interpreter; nested
        # aggregates inside a grouped query take this path too.
        raise CannotCompile(f"aggregate {name}")
    fn = SCALAR_FUNCTIONS.get(name)
    if fn is None:
        # "no such function" is a per-row error in the interpreter.
        raise CannotCompile(f"function {name}")
    args = [compile_expr(a, resolution, agg_slots, used) for a in expr.args]

    if len(args) == 1:
        arg0 = args[0]

        def call1_fn(row, params, aggs):
            try:
                return fn(arg0(row, params, aggs))
            except TypeError as exc:
                raise ProgrammingError(
                    f"wrong argument count for {name}(): {exc}"
                ) from None

        return call1_fn

    def call_fn(row, params, aggs):
        values = [a(row, params, aggs) for a in args]
        try:
            return fn(*values)
        except TypeError as exc:
            raise ProgrammingError(
                f"wrong argument count for {name}(): {exc}"
            ) from None

    return call_fn


def _compile_case(
    expr: CaseExpr,
    resolution: Mapping[str, int],
    agg_slots: Optional[dict[int, int]],
    used: Optional[set],
) -> CompiledExpr:
    whens = [
        (
            compile_expr(condition, resolution, agg_slots, used),
            compile_expr(result, resolution, agg_slots, used),
        )
        for condition, result in expr.whens
    ]
    default = (
        compile_expr(expr.default, resolution, agg_slots, used)
        if expr.default is not None else None
    )
    if expr.operand is not None:
        subject_fn = compile_expr(expr.operand, resolution, agg_slots, used)

        def case_simple_fn(row, params, aggs):
            subject = subject_fn(row, params, aggs)
            for condition, result in whens:
                candidate = condition(row, params, aggs)
                if (
                    subject is not None and candidate is not None
                    and _eq_values(subject, candidate)
                ):
                    return result(row, params, aggs)
            if default is not None:
                return default(row, params, aggs)
            return None

        return case_simple_fn

    def case_fn(row, params, aggs):
        for condition, result in whens:
            if truthy(condition(row, params, aggs)):
                return result(row, params, aggs)
        if default is not None:
            return default(row, params, aggs)
        return None

    return case_fn


def try_compile(
    expr: Expression,
    resolution: Mapping[str, int],
    agg_slots: Optional[dict[int, int]] = None,
    used: Optional[set] = None,
) -> Optional[CompiledExpr]:
    """``compile_expr`` returning None instead of raising.

    Catches *any* exception: a compile-time failure must never surface
    differently than the interpreter would — the section simply stays
    interpreted and the interpreter raises (or not) with its own timing.
    """
    try:
        return compile_expr(expr, resolution, agg_slots, used)
    except Exception:
        return None


# ---------------------------------------------------------------------------
# vectorized lowering (columnar tables)
# ---------------------------------------------------------------------------
#
# A vectorized expression has the signature ``fn(cols, n, params)`` where
# ``cols`` is a list of whole-column value lists (in compact-position
# order) and ``n`` their common length; it returns either a list of n
# values or a :class:`_VS` broadcast scalar.  The contract with the
# executor is *atomic-or-fallback*: a vector plan either completes and
# returns results provably identical to the row engine's, or the
# executor abandons it (any exception, impure column, runtime type
# surprise) and re-executes through the compiled-row/interpreter path —
# which then reproduces errors with canonical per-row timing.  Vector
# evaluation is side-effect free, so abandoning a half-finished batch is
# always safe.  This mirrors the CannotCompile discipline one level up.
#
# Purity: affinity coercion guarantees TEXT columns hold only str/None,
# but INTEGER/REAL/NUMERIC columns may legally hold stray strings (the
# lenient sqlite rules).  Numeric fast paths therefore only engage when
# the plan's ``checked`` columns are *runtime-pure* (no escape-hatch
# values) — the executor verifies that before running the plan.


class CannotVectorize(Exception):
    """Static bail-out: this expression has no vectorized form."""


class VecBail(Exception):
    """Runtime bail-out: abandon vector execution, use the row engine."""


class _VS:
    """A broadcast scalar flowing through vector expressions."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


#: fn(cols, n, params) -> list | _VS
VecFn = Callable[[list, int, Sequence[Any]], Any]

#: Purities that numeric fast paths accept ("null" propagates, "unknown"
#: scalars are type-checked at runtime).
_NUMISH = ("num", "null", "unknown")


@dataclass
class VectorPlan:
    """Vectorized sections for one single-table SELECT."""

    #: Real table positions backing each compact column, in compact order.
    positions: tuple[int, ...]
    #: Real table positions that must be runtime-pure numeric.
    checked: tuple[int, ...]
    where_fn: Optional[VecFn]
    #: True when the WHERE mask holds only int/None (skip truthy()).
    where_pure: bool
    kind: str  # "plain" | "agg"
    #: plain: per result column, int (compact index) or VecFn.
    items: Optional[list[Any]] = None
    #: plain: per ORDER BY entry, (int projected-item index | VecFn, desc).
    order: Optional[list[tuple[Any, bool]]] = None
    #: agg: per aggregate site, (name, is_star, distinct, VecFn | None),
    #: aligned index-for-index with ``grouped.acc_factories``.
    aggs: Optional[list[tuple[str, bool, bool, Optional[VecFn]]]] = None
    #: agg: row-closure GroupPlan over the compact representative row
    #: (having / item / order sections reuse the PR 5 closures).
    grouped: Optional[GroupPlan] = None


def _liftn(fns: list, elem: Callable) -> VecFn:
    """Generic element-wise lowering: evaluate every operand, broadcast
    scalars, and map ``elem`` over the zipped streams.  ``elem`` must
    replicate the row closure's semantics exactly (it may raise — the
    executor's atomic-or-fallback contract turns that into a row-engine
    re-execution)."""

    def fn(cols, n, params):
        vals = [f(cols, n, params) for f in fns]
        if all(type(v) is _VS for v in vals):
            return _VS(elem(*[v.value for v in vals]))
        streams = [repeat(v.value) if type(v) is _VS else v for v in vals]
        return [elem(*args) for args in zip(*streams)]

    return fn


def _vcolumns(expr_fns: list, cols, n, params) -> list:
    """Evaluate vector fns, materialising broadcast scalars to lists."""
    out = []
    for fn in expr_fns:
        v = fn(cols, n, params)
        out.append([v.value] * n if type(v) is _VS else v)
    return out


def vcompile(
    expr: Expression,
    resolution: Mapping[str, int],
    purities: Sequence[str],
    checked: set,
) -> tuple[VecFn, str]:
    """Lower ``expr`` to a whole-column function, or raise
    :class:`CannotVectorize`.

    ``resolution`` maps lowered column keys to *compact* positions,
    ``purities`` gives each compact position's static purity ("num" or
    "text"), and ``checked`` accumulates the compact positions whose
    numeric purity must be re-verified at execution time.
    """
    if isinstance(expr, Literal):
        value = expr.value
        scalar = _VS(value)
        if value is None:
            purity = "null"
        elif isinstance(value, (int, float)):
            purity = "num"
        elif isinstance(value, str):
            purity = "text"
        else:
            raise CannotVectorize("literal")
        return (lambda cols, n, params: scalar), purity

    if isinstance(expr, Placeholder):
        index = expr.index

        def placeholder_vec(cols, n, params):
            try:
                return _VS(params[index])
            except IndexError:
                raise ProgrammingError(
                    f"statement uses parameter {index + 1} but only "
                    f"{len(params)} supplied"
                ) from None

        return placeholder_vec, "unknown"

    if isinstance(expr, ColumnRef):
        position = resolution.get(expr.qualified.lower())
        if position is None:
            raise CannotVectorize(expr.qualified)
        purity = purities[position]
        if purity == "num":
            checked.add(position)
        elif purity != "text":
            raise CannotVectorize(f"column purity {purity}")
        return (lambda cols, n, params: cols[position]), purity

    if isinstance(expr, UnaryOp):
        return _vcompile_unary(expr, resolution, purities, checked)

    if isinstance(expr, BinaryOp):
        return _vcompile_binary(expr, resolution, purities, checked)

    if isinstance(expr, IsNull):
        operand, _ = vcompile(expr.operand, resolution, purities, checked)
        negated = expr.negated
        return _liftn([operand], lambda v: int((v is None) != negated)), "num"

    if isinstance(expr, InList):
        # Only scalar item lists (literals / placeholders): the row
        # engine evaluates items lazily per row, which only matters for
        # item expressions that could differ or raise per row.
        if not all(isinstance(i, (Literal, Placeholder)) for i in expr.items):
            raise CannotVectorize("IN items")
        operand, _ = vcompile(expr.operand, resolution, purities, checked)
        item_fns = [
            vcompile(i, resolution, purities, checked)[0] for i in expr.items
        ]
        negated = expr.negated

        def in_vec(cols, n, params):
            candidates = [f(cols, n, params).value for f in item_fns]
            hit = int(not negated)
            miss = int(negated)

            def check(value):
                if value is None:
                    return None
                saw_null = False
                for candidate in candidates:
                    if candidate is None:
                        saw_null = True
                        continue
                    if _eq_values(value, candidate):
                        return hit
                return None if saw_null else miss

            V = operand(cols, n, params)
            if type(V) is _VS:
                return _VS(check(V.value))
            return [check(v) for v in V]

        return in_vec, "num"

    if isinstance(expr, Between):
        operand, _ = vcompile(expr.operand, resolution, purities, checked)
        low, _ = vcompile(expr.low, resolution, purities, checked)
        high, _ = vcompile(expr.high, resolution, purities, checked)
        negated = expr.negated
        ge = operator.ge
        le = operator.le

        def between_elem(value, lo, hi):
            if value is None or lo is None or hi is None:
                return None
            result = bool(_compare_values(ge, False, value, lo)) and bool(
                _compare_values(le, False, value, hi)
            )
            return int(result != negated)

        return _liftn([operand, low, high], between_elem), "num"

    if isinstance(expr, Like):
        operand, _ = vcompile(expr.operand, resolution, purities, checked)
        negated = expr.negated
        if isinstance(expr.pattern, Literal) and expr.pattern.value is not None:
            regex = _like_regex(str(expr.pattern.value))

            def like_const_elem(value):
                if value is None:
                    return None
                return int((regex.match(str(value)) is not None) != negated)

            return _liftn([operand], like_const_elem), "num"
        pattern, _ = vcompile(expr.pattern, resolution, purities, checked)

        def like_elem(value, pat):
            if value is None or pat is None:
                return None
            result = _like_regex(str(pat)).match(str(value)) is not None
            return int(result != negated)

        return _liftn([operand, pattern], like_elem), "num"

    if isinstance(expr, CaseExpr):
        return _vcompile_case(expr, resolution, purities, checked)

    if isinstance(expr, CastExpr):
        operand, _ = vcompile(expr.operand, resolution, purities, checked)
        target = expr.target_type
        try:  # unknown cast targets raise per row: stay on the row engine
            cast_value(0, target)
            cast_value(None, target)
        except Exception:
            raise CannotVectorize(f"cast {target}") from None
        upper = target.upper()
        if any(k in upper for k in ("INT", "REAL", "FLOA", "DOUB", "NUM", "DEC", "BOOL")):
            purity = "num"
        elif any(k in upper for k in ("CHAR", "TEXT", "CLOB", "STR")):
            purity = "text"
        else:
            purity = "any"
        return _liftn([operand], lambda v: cast_value(v, target)), purity

    # FunctionCall (scalar functions may raise per row; aggregates are
    # handled at statement level), Star, Subquery, anything new.
    raise CannotVectorize(type(expr).__name__)


def _vcompile_unary(expr, resolution, purities, checked):
    op = expr.op
    operand, purity = vcompile(expr.operand, resolution, purities, checked)
    if op == "NOT":
        if purity in _NUMISH:
            def not_vec(cols, n, params):
                V = operand(cols, n, params)
                if type(V) is _VS:
                    v = V.value
                    return _VS(None if v is None else int(not truthy(v)))
                return [None if v is None else (0 if v else 1) for v in V]
            return not_vec, "num"
        return _liftn(
            [operand],
            lambda v: None if v is None else int(not truthy(v)),
        ), "num"
    if op == "-":
        if purity not in _NUMISH:
            raise CannotVectorize("unary - operand")

        def neg_elem(value):
            if value is None:
                return None
            if not isinstance(value, (int, float)):
                raise DataError(f"non-numeric operand for unary -: {value!r}")
            return -value

        return _liftn([operand], neg_elem), "num"
    raise CannotVectorize(f"unary {op}")


def _vcompile_binary(expr, resolution, purities, checked):
    op = expr.op
    left, lpure = vcompile(expr.left, resolution, purities, checked)
    right, rpure = vcompile(expr.right, resolution, purities, checked)

    if op in ("AND", "OR"):
        is_and = op == "AND"
        if lpure in _NUMISH and rpure in _NUMISH:
            def logic_fast(cols, n, params):
                L = left(cols, n, params)
                R = right(cols, n, params)
                ls = type(L) is _VS
                rs = type(R) is _VS
                if ls and rs:
                    return _VS(_logic3(is_and, L.value, R.value))
                if ls or rs:
                    scalar = L.value if ls else R.value
                    V = R if ls else L
                    sb = None if scalar is None else truthy(scalar)
                    if is_and:
                        if sb is False:
                            return _VS(0)
                        if sb is None:
                            return [0 if (v is not None and not v) else None
                                    for v in V]
                        return [0 if (v is not None and not v)
                                else (None if v is None else 1) for v in V]
                    if sb:
                        return _VS(1)
                    if sb is None:
                        return [1 if (v is not None and v) else None for v in V]
                    return [1 if (v is not None and v)
                            else (None if v is None else 0) for v in V]
                if is_and:
                    return [
                        0 if ((l is not None and not l)
                              or (r is not None and not r))
                        else (None if (l is None or r is None) else 1)
                        for l, r in zip(L, R)
                    ]
                return [
                    1 if ((l is not None and l) or (r is not None and r))
                    else (None if (l is None or r is None) else 0)
                    for l, r in zip(L, R)
                ]
            return logic_fast, "num"
        elem = (lambda l, r: _logic3(is_and, l, r))
        return _liftn([left, right], elem), "num"

    if op == "||":
        def concat_elem(l, r):
            if l is None or r is None:
                return None
            return _as_text(l) + _as_text(r)
        return _liftn([left, right], concat_elem), "text"

    if op in _CMP_FUNCS:
        opf = _CMP_FUNCS[op]
        is_ne = op == "<>"
        if lpure in _NUMISH and rpure in _NUMISH:
            def cmp_fast(cols, n, params):
                L = left(cols, n, params)
                R = right(cols, n, params)
                ls = type(L) is _VS
                rs = type(R) is _VS
                if ls and rs:
                    return _VS(_compare_values(opf, is_ne, L.value, R.value))
                if ls or rs:
                    scalar = (L if ls else R).value
                    V = R if ls else L
                    if scalar is None:
                        return _VS(None)
                    if isinstance(scalar, str):
                        scalar = _maybe_number(scalar)
                        if isinstance(scalar, str):
                            flag = int(is_ne)  # incomparable vs numbers
                            return [None if v is None else flag for v in V]
                    if ls:
                        lv = scalar
                        return [None if v is None else (1 if opf(lv, v) else 0)
                                for v in V]
                    rv = scalar
                    return [None if v is None else (1 if opf(v, rv) else 0)
                            for v in V]
                return [
                    None if l is None or r is None
                    else (1 if opf(l, r) else 0)
                    for l, r in zip(L, R)
                ]
            return cmp_fast, "num"
        elem = (lambda l, r: _compare_values(opf, is_ne, l, r))
        return _liftn([left, right], elem), "num"

    if op in ("+", "-", "*", "/", "%"):
        if lpure not in _NUMISH or rpure not in _NUMISH:
            raise CannotVectorize(f"non-numeric {op}")
        if op in ("+", "-", "*"):
            arith = {"+": operator.add, "-": operator.sub,
                     "*": operator.mul}[op]

            def arith_elem(l, r):
                if l is None or r is None:
                    return None
                if not isinstance(l, (int, float)):
                    raise DataError(f"non-numeric operand for {op}: {l!r}")
                if not isinstance(r, (int, float)):
                    raise DataError(f"non-numeric operand for {op}: {r!r}")
                return arith(l, r)

            return _liftn([left, right], arith_elem), "num"
        if op == "/":
            def div_elem(l, r):
                if l is None or r is None:
                    return None
                if not isinstance(l, (int, float)):
                    raise DataError(f"non-numeric operand for /: {l!r}")
                if not isinstance(r, (int, float)):
                    raise DataError(f"non-numeric operand for /: {r!r}")
                if r == 0:
                    return None
                if isinstance(l, int) and isinstance(r, int):
                    return l // r if l % r == 0 else l / r
                return l / r
            return _liftn([left, right], div_elem), "num"

        def mod_elem(l, r):
            if l is None or r is None:
                return None
            if not isinstance(l, (int, float)):
                raise DataError(f"non-numeric operand for %: {l!r}")
            if not isinstance(r, (int, float)):
                raise DataError(f"non-numeric operand for %: {r!r}")
            if r == 0:
                return None
            return l % r
        return _liftn([left, right], mod_elem), "num"

    raise CannotVectorize(f"binary {op}")


def _logic3(is_and: bool, lhs: Any, rhs: Any) -> Any:
    """Three-valued AND/OR, exactly as the row closures compute it."""
    if is_and:
        if lhs is not None and not truthy(lhs):
            return 0
        if rhs is not None and not truthy(rhs):
            return 0
        if lhs is None or rhs is None:
            return None
        return 1
    if lhs is not None and truthy(lhs):
        return 1
    if rhs is not None and truthy(rhs):
        return 1
    if lhs is None or rhs is None:
        return None
    return 0


def _join_purity(purities: list[str]) -> str:
    out = "null"
    for p in purities:
        if p == "null":
            continue
        if p in ("num", "unknown"):
            p = "num"
        if out == "null":
            out = p
        elif out != p:
            return "any"
    return "num" if out in ("null", "num") else out


def _vcompile_case(expr, resolution, purities, checked):
    when_fns = []
    result_purities = []
    for condition, result in expr.whens:
        cfn, _ = vcompile(condition, resolution, purities, checked)
        rfn, rp = vcompile(result, resolution, purities, checked)
        when_fns.extend((cfn, rfn))
        result_purities.append(rp)
    n_whens = len(expr.whens)
    fns = list(when_fns)
    if expr.default is not None:
        dfn, dp = vcompile(expr.default, resolution, purities, checked)
        fns.append(dfn)
        result_purities.append(dp)
    has_default = expr.default is not None

    if expr.operand is not None:
        sfn, _ = vcompile(expr.operand, resolution, purities, checked)
        fns.insert(0, sfn)

        def case_simple_elem(*args):
            subject = args[0]
            for i in range(n_whens):
                candidate = args[1 + 2 * i]
                if (
                    subject is not None and candidate is not None
                    and _eq_values(subject, candidate)
                ):
                    return args[2 + 2 * i]
            return args[-1] if has_default else None

        return _liftn(fns, case_simple_elem), _join_purity(result_purities)

    def case_elem(*args):
        for i in range(n_whens):
            if truthy(args[2 * i]):
                return args[2 * i + 1]
        return args[-1] if has_default else None

    return _liftn(fns, case_elem), _join_purity(result_purities)


def try_vcompile(
    expr: Expression,
    resolution: Mapping[str, int],
    purities: Sequence[str],
    checked: set,
) -> Optional[tuple[VecFn, str]]:
    """``vcompile`` returning None instead of raising (any failure means
    the section simply stays on the row engine)."""
    try:
        return vcompile(expr, resolution, purities, checked)
    except Exception:
        return None
