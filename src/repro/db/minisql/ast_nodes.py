"""AST node definitions for MiniSQL statements and expressions.

Every node is a frozen-ish dataclass; the parser builds these and the
planner/executor consume them.  Expression nodes implement nothing —
evaluation lives in :mod:`repro.db.minisql.expr` so the AST stays a pure
data description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expression:
    """Abstract base for expression nodes."""


@dataclass
class Literal(Expression):
    """A constant: number, string, boolean or NULL."""

    value: Any


@dataclass
class Placeholder(Expression):
    """A ``?`` positional parameter; ``index`` is assigned by the parser."""

    index: int


@dataclass
class ColumnRef(Expression):
    """A (possibly table-qualified) column reference."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    """``*`` or ``table.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


@dataclass
class UnaryOp(Expression):
    op: str  # '-', '+', 'NOT'
    operand: Expression


@dataclass
class BinaryOp(Expression):
    op: str  # arithmetic, comparison, AND/OR, '||'
    left: Expression
    right: Expression


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    operand: Expression
    items: list[Expression] = field(default_factory=list)
    negated: bool = False


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass
class Subquery(Expression):
    """An uncorrelated scalar-column subquery, e.g. ``IN (SELECT id ...)``.

    The executor materialises it into a literal list before evaluation;
    it never reaches the expression evaluator.
    """

    select: "Select"


@dataclass
class FunctionCall(Expression):
    """A scalar or aggregate function call.

    ``distinct`` applies to aggregates (``COUNT(DISTINCT x)``).  A bare
    ``COUNT(*)`` is represented with a single :class:`Star` argument.
    """

    name: str  # upper-cased
    args: list[Expression] = field(default_factory=list)
    distinct: bool = False


@dataclass
class CaseExpr(Expression):
    """``CASE [operand] WHEN .. THEN .. [ELSE ..] END``."""

    operand: Optional[Expression]
    whens: list[tuple[Expression, Expression]] = field(default_factory=list)
    default: Optional[Expression] = None


@dataclass
class CastExpr(Expression):
    operand: Expression
    target_type: str  # canonical type name, see types.py


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Statement:
    """Abstract base for statements."""


@dataclass
class ColumnDef:
    name: str
    type_name: str  # canonical type name
    not_null: bool = False
    primary_key: bool = False
    autoincrement: bool = False
    unique: bool = False
    default: Optional[Expression] = None
    references: Optional[tuple[str, str]] = None  # (table, column)


@dataclass
class ForeignKeySpec:
    columns: list[str]
    ref_table: str
    ref_columns: list[str]


@dataclass
class CreateTable(Statement):
    table: str
    columns: list[ColumnDef]
    if_not_exists: bool = False
    primary_key: list[str] = field(default_factory=list)
    unique_constraints: list[list[str]] = field(default_factory=list)
    foreign_keys: list[ForeignKeySpec] = field(default_factory=list)


@dataclass
class DropTable(Statement):
    table: str
    if_exists: bool = False


@dataclass
class CreateIndex(Statement):
    name: str
    table: str
    columns: list[str]
    unique: bool = False
    if_not_exists: bool = False
    using: str = "hash"  # "hash" (equality only) or "btree" (ordered)


@dataclass
class DropIndex(Statement):
    name: str
    if_exists: bool = False


@dataclass
class AlterTableAddColumn(Statement):
    table: str
    column: ColumnDef


@dataclass
class AlterTableRename(Statement):
    table: str
    new_name: str


@dataclass
class Insert(Statement):
    table: str
    columns: list[str]  # empty -> table order
    rows: list[list[Expression]] = field(default_factory=list)
    select: Optional["Select"] = None  # INSERT INTO t SELECT ...


@dataclass
class Update(Statement):
    table: str
    assignments: list[tuple[str, Expression]] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expression] = None


@dataclass
class TableRef:
    """A table in a FROM clause, with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_name(self) -> str:
        return self.alias or self.name


@dataclass
class Join:
    """A join clause attached to the preceding FROM item."""

    kind: str  # 'INNER', 'LEFT', 'CROSS'
    table: TableRef
    condition: Optional[Expression] = None


@dataclass
class SelectItem:
    expr: Expression
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expression
    descending: bool = False


@dataclass
class Select(Statement):
    items: list[SelectItem] = field(default_factory=list)
    table: Optional[TableRef] = None
    joins: list[Join] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False
    compound: Optional[tuple[str, "Select"]] = None  # ('UNION'|'UNION ALL'|..., rhs)


@dataclass
class BeginTransaction(Statement):
    pass


@dataclass
class CommitTransaction(Statement):
    pass


@dataclass
class RollbackTransaction(Statement):
    pass


@dataclass
class Explain(Statement):
    """``EXPLAIN [ANALYZE] <statement>`` — describe the execution strategy.

    With ``analyze`` the statement is actually executed and each plan
    step is annotated with the rows it produced and its wall time.
    """

    statement: "Statement"
    analyze: bool = False


@dataclass
class Pragma(Statement):
    """``PRAGMA table_info(name)`` and friends — metadata introspection."""

    name: str
    argument: Optional[str] = None


StatementType = Union[
    CreateTable, DropTable, CreateIndex, DropIndex, AlterTableAddColumn,
    AlterTableRename, Insert, Update, Delete, Select, BeginTransaction,
    CommitTransaction, RollbackTransaction, Pragma,
]
