"""Statement execution for MiniSQL.

The executor interprets parsed statements against a
:class:`~repro.db.minisql.storage.Database`.  SELECT execution is a
straightforward pipeline — scan → join → filter → group → having →
project → distinct → compound → order → limit — with two optimisations
that matter at PerfDMF scale:

* **index pushdown**: top-level equality predicates in WHERE whose column
  has a hash index turn the base-table scan into an index probe; range
  predicates (``<``, ``<=``, ``>``, ``>=``, ``BETWEEN``) and
  ``ORDER BY ... LIMIT`` route through ordered (``USING BTREE``) indexes;
* **hash joins**: equi-join conditions build a hash table on the inner
  relation instead of running a nested loop.

Access-path selection lives in :func:`_plan_access`; ``EXPLAIN`` reports
its choice and ``Database.stats`` counts rows per path.  Both
optimisations are exercised by the E7 ablation benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.obs.metrics import registry as _metrics

from .ast_nodes import (
    AlterTableAddColumn, AlterTableRename, BeginTransaction, Between,
    BinaryOp, ColumnDef, ColumnRef, CommitTransaction, CreateIndex,
    CreateTable, Delete, DropIndex, DropTable, Expression, FunctionCall,
    InList, Insert, Join, Literal, OrderItem, Placeholder, Pragma,
    RollbackTransaction, Select, SelectItem, Star, Statement, Subquery,
    TableRef, Update,
)
from .compile import (
    _VS, CompactPlan, DMLPlan, GroupPlan, JoinPlan, SelectPlan, VectorPlan,
    compile_expr, try_compile, try_vcompile,
)
from .dump import _create_table_sql, _render_value
from .errors import (
    IntegrityError, NotSupportedError, OperationalError, ProgrammingError,
)
from .expr import (
    RowContext, column_refs, contains_aggregate, evaluate, is_aggregate_call,
    ref_name, truthy, walk,
)
from .functions import is_aggregate, make_aggregate
from .storage import Column, Database, Index, OMITTED, SortedIndex, Table
from .types import sort_key

# Process-global compile telemetry (mirrors the per-Database stats keys;
# the registry survives connection churn, the stats dict travels with
# ``Connection.stats()``).
_PLAN_HITS = _metrics.counter("minisql.compile.plan_cache_hits")
_PLAN_MISSES = _metrics.counter("minisql.compile.plan_cache_misses")
_COMPILE_FALLBACKS = _metrics.counter("minisql.compile.fallbacks")
_COMPILE_SECONDS = _metrics.histogram("minisql.compile.seconds")
# Columnar / vectorized execution telemetry.
_VECTOR_SELECTS = _metrics.counter("minisql.columnar.vector_selects")
_VECTOR_FALLBACKS = _metrics.counter("minisql.columnar.vector_fallbacks")
_COLUMNAR_CONVERSIONS = _metrics.counter("minisql.columnar.conversions")


@dataclass
class ResultSet:
    """Execution result: column names plus row tuples (possibly empty)."""

    columns: list[str]
    rows: list[tuple[Any, ...]]
    rowcount: int = -1
    lastrowid: Optional[int] = None


class _AnalyzeProbe:
    """Per-statement row/time collector backing ``EXPLAIN ANALYZE``.

    ``wrap`` inserts a counting pass-through around a pipeline stage's
    iterator; time is *inclusive* of everything upstream of the stage
    (each wrapper times the ``next()`` call into the pipeline below it).
    Only the Select node the probe targets is instrumented, so
    materialised IN-subqueries and compound arms don't pollute the
    top-level step counts.
    """

    def __init__(self, target: Optional[Select]):
        self.target = target
        self.steps: dict[str, dict[str, float]] = {}

    def wrap(self, label: str, iterator: Iterator[Any]) -> Iterator[Any]:
        entry = self.steps.setdefault(label, {"rows": 0, "time": 0.0})

        def counted() -> Iterator[Any]:
            it = iter(iterator)
            while True:
                t0 = time.perf_counter()
                try:
                    item = next(it)
                except StopIteration:
                    entry["time"] += time.perf_counter() - t0
                    return
                entry["time"] += time.perf_counter() - t0
                entry["rows"] += 1
                yield item

        return counted()


class Executor:
    """Executes statements against one :class:`Database`."""

    def __init__(self, database: Database):
        self.database = database
        #: Active ``EXPLAIN ANALYZE`` probe, if any (see _AnalyzeProbe).
        self._probe: Optional[_AnalyzeProbe] = None

    # ------------------------------------------------------------------ API --

    def execute(self, statement: Statement, params: Sequence[Any] = ()) -> ResultSet:
        if isinstance(statement, Select):
            columns, rows = self._execute_select(statement, params)
            return ResultSet(columns, rows, rowcount=-1)
        if isinstance(statement, Insert):
            return self._execute_insert(statement, params)
        if isinstance(statement, Update):
            return self._execute_update(statement, params)
        if isinstance(statement, Delete):
            return self._execute_delete(statement, params)
        if isinstance(statement, CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, DropTable):
            return self._execute_drop_table(statement)
        if isinstance(statement, CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, DropIndex):
            return self._execute_drop_index(statement)
        if isinstance(statement, AlterTableAddColumn):
            return self._execute_alter_add(statement)
        if isinstance(statement, AlterTableRename):
            self.database.rename_table(statement.table, statement.new_name)
            self.database.wal_log(
                "ddl",
                f"ALTER TABLE {statement.table} RENAME TO {statement.new_name};",
            )
            return ResultSet([], [], rowcount=0)
        if isinstance(statement, BeginTransaction):
            self.database.begin()
            return ResultSet([], [], rowcount=0)
        if isinstance(statement, CommitTransaction):
            self.database.commit()
            return ResultSet([], [], rowcount=0)
        if isinstance(statement, RollbackTransaction):
            self.database.rollback()
            return ResultSet([], [], rowcount=0)
        if isinstance(statement, Pragma):
            return self._execute_pragma(statement)
        from .ast_nodes import Explain

        if isinstance(statement, Explain):
            return self._execute_explain(statement, params)
        raise NotSupportedError(f"unsupported statement {type(statement).__name__}")

    def _execute_explain(self, stmt, params: Sequence[Any]) -> ResultSet:
        """Describe the strategy for a statement.

        Output mirrors sqlite's ``EXPLAIN QUERY PLAN`` spirit: one row
        per plan step — scan strategy for the base table, join strategy
        per joined table, grouping/ordering notes.  ``EXPLAIN ANALYZE``
        additionally executes the statement and annotates each step
        with actual rows produced and wall time.
        """
        if getattr(stmt, "analyze", False):
            return self._execute_explain_analyze(stmt, params)
        steps = self._explain_steps(stmt.statement, params)
        rows = [
            (i, detail, compiled, vectorized)
            for i, (detail, _label, compiled, vectorized) in enumerate(steps)
        ]
        return ResultSet(["id", "detail", "compiled", "vectorized"], rows)

    def _explain_steps(
        self, inner: Statement, params: Sequence[Any], analyze: bool = False
    ) -> list[tuple[str, Optional[str], Optional[str], Optional[str]]]:
        """Plan-step (description, analyze-probe label, compiled,
        vectorized) tuples.

        The "WHERE filter" step only appears under ``analyze`` — plain
        EXPLAIN keeps its historical sqlite-like shape (access path,
        joins, group/order) that tests and tooling match exactly.
        ``compiled`` is "yes"/"no" for steps the closure compiler can
        cover, None where the notion does not apply (CROSS JOIN,
        compound glue, DML, constant rows); ``vectorized`` is the same
        for the whole-column plan — it reports plan *capability*, since
        the vector path can still yield to the row engine at run time
        (impure column, empty table, mid-flight error).
        """
        steps: list[tuple[str, Optional[str], Optional[str], Optional[str]]] = []
        if isinstance(inner, Select) and inner.table is not None:
            mgr = self.database.shard_mgr
            if mgr is not None:
                shard_steps = mgr.explain_steps(self, inner, params)
                if shard_steps is not None:
                    # The statement routes through the shards: report
                    # the scatter/gather plan (per-shard rows and times
                    # under ANALYZE) instead of the access path the
                    # primary would have used.
                    return shard_steps
            table = self.database.table(inner.table.name)
            conjuncts = _conjuncts(inner.where) if not inner.joins else []
            order_by = inner.order_by if _can_push_order(inner) else []
            plan = _plan_access(
                table, inner.table.effective_name, conjuncts, order_by,
                params, _select_alias_names(inner),
            )
            try:
                splan = self._compiled_select(inner)
            except Exception:
                splan = None
            vector = splan.vector if splan is not None else None

            def flag(section_compiled: bool) -> str:
                return "yes" if splan is not None and section_compiled else "no"

            def vflag(section_vectorized: bool) -> str:
                return "yes" if vector is not None and section_vectorized else "no"

            steps.append((
                plan.describe(table), "scan", flag(splan is not None),
                vflag(vector is not None),
            ))
            layout = _Layout.build(self.database, inner)
            offset = len(table.columns)
            for i, join in enumerate(inner.joins):
                inner_table = self.database.table(join.table.name)
                if join.kind == "CROSS" or join.condition is None:
                    steps.append(
                        (f"CROSS JOIN {inner_table.name}", f"join{i}", None, None)
                    )
                else:
                    equi = _find_equi_key(
                        join.condition, layout, offset, len(inner_table.columns)
                    )
                    strategy = (
                        "HASH JOIN" if equi is not None else "NESTED LOOP JOIN"
                    )
                    steps.append((
                        f"{strategy} {inner_table.name} ({join.kind})",
                        f"join{i}",
                        flag(splan is not None and splan.joins[i] is not None),
                        vflag(False),
                    ))
                offset += len(inner_table.columns)
            if analyze and inner.where is not None:
                steps.append((
                    "WHERE filter", "where",
                    flag(splan is not None and splan.where_fn is not None),
                    vflag(vector is not None and vector.where_fn is not None),
                ))
            if inner.group_by or any(
                contains_aggregate(item.expr) for item in inner.items
            ):
                steps.append((
                    "GROUP BY (hash aggregation)", None,
                    flag(splan is not None and splan.grouped is not None),
                    vflag(vector is not None and vector.kind == "agg"),
                ))
            if inner.order_by:
                order_flag = flag(
                    splan is not None and (
                        splan.grouped is not None
                        if splan.is_grouped else splan.order_compiled
                    )
                )
                steps.append((
                    "ORDER BY (index order)" if plan.ordered
                    else "ORDER BY (sort)",
                    None,
                    order_flag,
                    vflag(vector is not None),
                ))
            if inner.compound is not None:
                steps.append((f"COMPOUND {inner.compound[0]}", None, None, None))
        elif isinstance(inner, Select):
            steps.append(("CONSTANT ROW (no FROM)", None, None, None))
        else:
            steps.append((type(inner).__name__.upper(), None, None, None))
        return steps

    def _execute_explain_analyze(self, stmt, params: Sequence[Any]) -> ResultSet:
        inner = stmt.statement
        probe = _AnalyzeProbe(inner if isinstance(inner, Select) else None)
        previous = self._probe
        self._probe = probe
        t0 = time.perf_counter()
        try:
            result = self.execute(inner, params)
        finally:
            self._probe = previous
        total_ms = (time.perf_counter() - t0) * 1000.0
        # Steps are planned after execution so DDL/DML analyze still
        # reflects post-statement catalog state; planning charges no
        # stats counters, so the numbers stay pure.
        steps = self._explain_steps(inner, params, analyze=True)
        rows: list[tuple[Any, ...]] = []
        for i, (detail, label, compiled, vectorized) in enumerate(steps):
            info = probe.steps.get(label) if label is not None else None
            rows.append((
                i,
                detail,
                int(info["rows"]) if info is not None else None,
                round(info["time"] * 1000.0, 3) if info is not None else None,
                compiled,
                vectorized,
            ))
        cardinality = len(result.rows) if result.columns else result.rowcount
        rows.append(
            (len(rows), "RESULT", cardinality, round(total_ms, 3), None, None)
        )
        return ResultSet(
            ["id", "detail", "rows", "time_ms", "compiled", "vectorized"], rows
        )

    # ------------------------------------------------------------------ DDL --

    def _execute_create_table(self, stmt: CreateTable) -> ResultSet:
        if self.database.has_table(stmt.table):
            if stmt.if_not_exists:
                return ResultSet([], [], rowcount=0)
            raise OperationalError(f"table {stmt.table} already exists")
        columns: list[Column] = []
        table_pk = {name.lower() for name in stmt.primary_key}
        for cdef in stmt.columns:
            default = None
            if cdef.default is not None:
                default = evaluate(cdef.default, None, ())
            columns.append(
                Column(
                    name=cdef.name,
                    affinity=cdef.type_name,
                    not_null=cdef.not_null or cdef.name.lower() in table_pk,
                    primary_key=cdef.primary_key or cdef.name.lower() in table_pk,
                    autoincrement=cdef.autoincrement,
                    default=default,
                    references=cdef.references,
                )
            )
        table = self.database.create_table(stmt.table, columns)
        pk_columns = [c.name for c in columns if c.primary_key]
        if pk_columns:
            self.database.create_index(
                f"__pk_{stmt.table.lower()}", stmt.table, pk_columns, unique=True
            )
        for i, cdef in enumerate(stmt.columns):
            if cdef.unique and not cdef.primary_key:
                self.database.create_index(
                    f"__uq_{stmt.table.lower()}_{cdef.name.lower()}",
                    stmt.table, [cdef.name], unique=True,
                )
        for j, unique_cols in enumerate(stmt.unique_constraints):
            self.database.create_index(
                f"__uqc_{stmt.table.lower()}_{j}", stmt.table, unique_cols, unique=True
            )
        fk_specs = [
            (spec.columns, spec.ref_table, spec.ref_columns)
            for spec in stmt.foreign_keys
        ]
        for cdef in stmt.columns:
            if cdef.references is not None:
                fk_specs.append(([cdef.name], cdef.references[0], [cdef.references[1]]))
        if fk_specs:
            self.database.register_foreign_keys(stmt.table, fk_specs)
        # DDL is logged as SQL text (the dump renderer reconstructs it, as
        # the original statement string is not available here); replay
        # re-executes it, recreating the implicit PK/UNIQUE indexes too.
        self.database.wal_log("ddl", _create_table_sql(table, self.database))
        return ResultSet([], [], rowcount=0)

    def _execute_drop_table(self, stmt: DropTable) -> ResultSet:
        if not self.database.has_table(stmt.table):
            if stmt.if_exists:
                return ResultSet([], [], rowcount=0)
            raise OperationalError(f"no such table: {stmt.table}")
        self.database.drop_table(stmt.table)
        self.database.wal_log("ddl", f"DROP TABLE {stmt.table};")
        return ResultSet([], [], rowcount=0)

    def _execute_create_index(self, stmt: CreateIndex) -> ResultSet:
        if stmt.name.lower() in self.database.index_owner:
            if stmt.if_not_exists:
                return ResultSet([], [], rowcount=0)
            raise OperationalError(f"index {stmt.name} already exists")
        self.database.create_index(
            stmt.name, stmt.table, stmt.columns, stmt.unique, using=stmt.using
        )
        unique = "UNIQUE " if stmt.unique else ""
        using = " USING BTREE" if stmt.using == "btree" else ""
        self.database.wal_log(
            "ddl",
            f"CREATE {unique}INDEX {stmt.name} ON {stmt.table} "
            f"({', '.join(stmt.columns)}){using};",
        )
        return ResultSet([], [], rowcount=0)

    def _execute_drop_index(self, stmt: DropIndex) -> ResultSet:
        if stmt.name.lower() not in self.database.index_owner:
            if stmt.if_exists:
                return ResultSet([], [], rowcount=0)
            raise OperationalError(f"no such index: {stmt.name}")
        self.database.drop_index(stmt.name)
        self.database.wal_log("ddl", f"DROP INDEX {stmt.name};")
        return ResultSet([], [], rowcount=0)

    def _execute_alter_add(self, stmt: AlterTableAddColumn) -> ResultSet:
        table = self.database.table(stmt.table)
        cdef = stmt.column
        default = evaluate(cdef.default, None, ()) if cdef.default is not None else None
        if cdef.not_null and default is None:
            raise OperationalError(
                "cannot add a NOT NULL column without a default value"
            )
        table.add_column(
            Column(
                name=cdef.name,
                affinity=cdef.type_name,
                not_null=cdef.not_null,
                default=default,
                references=cdef.references,
            )
        )
        # Row width changed: every compiled plan's offsets are stale.
        self.database.schema_version += 1
        bits = [cdef.name, cdef.type_name]
        if cdef.not_null:
            bits.append("NOT NULL")
        if default is not None:
            bits.append(f"DEFAULT {_render_value(default)}")
        if cdef.references is not None:
            bits.append(f"REFERENCES {cdef.references[0]}({cdef.references[1]})")
        self.database.wal_log(
            "ddl", f"ALTER TABLE {stmt.table} ADD COLUMN {' '.join(bits)};"
        )
        return ResultSet([], [], rowcount=0)

    def _execute_pragma(self, stmt: Pragma) -> ResultSet:
        if stmt.name == "table_info":
            if not stmt.argument:
                raise ProgrammingError("PRAGMA table_info requires a table name")
            if not self.database.has_table(stmt.argument):
                return ResultSet([], [])  # sqlite yields no rows here
            table = self.database.table(stmt.argument)
            columns = ["cid", "name", "type", "notnull", "dflt_value", "pk"]
            rows = [
                (
                    i, c.name, c.affinity, int(c.not_null), c.default,
                    int(c.primary_key),
                )
                for i, c in enumerate(table.columns)
            ]
            return ResultSet(columns, rows)
        if stmt.name == "table_list":
            columns = ["name", "nrows"]
            rows = [(t.name, len(t)) for t in self.database.tables.values()]
            return ResultSet(columns, rows)
        if stmt.name == "index_list":
            if not stmt.argument:
                raise ProgrammingError("PRAGMA index_list requires a table name")
            table = self.database.table(stmt.argument)
            columns = ["name", "unique", "columns"]
            rows = [
                (idx.name, int(idx.unique), ",".join(idx.column_names))
                for idx in table.indexes.values()
            ]
            return ResultSet(columns, rows)
        if stmt.name == "bulk_load":
            argument = str(stmt.argument or "").strip().lower()
            if argument in ("on", "1", "true"):
                self.database.begin_bulk()
            elif argument in ("off", "0", "false"):
                self.database.end_bulk()
            elif argument == "status":
                return ResultSet(
                    ["bulk_load"], [(int(self.database.bulk_mode),)]
                )
            else:
                raise ProgrammingError(
                    f"PRAGMA bulk_load expects on/off, got {stmt.argument!r}"
                )
            # on/off return no rows, matching sqlite (which ignores the
            # pragma entirely) so differential corpora stay comparable.
            return ResultSet([], [], rowcount=0)
        if stmt.name == "slow_query_ms":
            if stmt.argument is None:
                return ResultSet(
                    ["slow_query_ms"], [(self.database.slow_query_ms,)]
                )
            argument = str(stmt.argument).strip().lower()
            if argument in ("off", "none", ""):
                self.database.slow_query_ms = None
            else:
                try:
                    self.database.slow_query_ms = float(argument)
                except ValueError:
                    raise ProgrammingError(
                        "PRAGMA slow_query_ms expects a number or off, "
                        f"got {stmt.argument!r}"
                    )
            return ResultSet([], [], rowcount=0)
        if stmt.name == "slow_query_log":
            argument = str(stmt.argument or "").strip().lower()
            if argument == "clear":
                self.database.slow_queries.clear()
                return ResultSet([], [], rowcount=0)
            columns = ["sql", "plan", "duration_ms"]
            rows = [
                (entry["sql"], entry["plan"], entry["duration_ms"])
                for entry in self.database.slow_queries
            ]
            return ResultSet(columns, rows)
        if stmt.name == "synchronous":
            wal = self.database.wal
            if stmt.argument is None:
                value = wal.synchronous if wal is not None else "off"
                return ResultSet(["synchronous"], [(value,)])
            argument = str(stmt.argument).strip().lower()
            argument = {"0": "off", "1": "normal", "2": "full"}.get(
                argument, argument
            )
            if argument not in ("off", "normal", "full"):
                raise ProgrammingError(
                    "PRAGMA synchronous expects off/normal/full, "
                    f"got {stmt.argument!r}"
                )
            if wal is not None:
                wal.synchronous = argument
            return ResultSet([], [], rowcount=0)
        if stmt.name == "checkpoint":
            wal = self.database.wal
            if wal is None:
                return ResultSet(["checkpoint"], [(0,)])
            if self.database.in_transaction:
                raise OperationalError("cannot checkpoint inside a transaction")
            # Hold the writer lock so the dump sees a consistent catalog
            # even while autocommit writers run on other connections.
            with self.database.txn_lock:
                wal.checkpoint(self.database)
            return ResultSet(["checkpoint"], [(1,)])
        if stmt.name == "wal_autocheckpoint":
            wal = self.database.wal
            if stmt.argument is None:
                value = wal.autocheckpoint_bytes if wal is not None else None
                return ResultSet(["wal_autocheckpoint"], [(value,)])
            argument = str(stmt.argument).strip().lower()
            if wal is not None:
                if argument in ("off", "none", "0"):
                    wal.autocheckpoint_bytes = None
                else:
                    try:
                        wal.autocheckpoint_bytes = int(argument)
                    except ValueError:
                        raise ProgrammingError(
                            "PRAGMA wal_autocheckpoint expects a byte count "
                            f"or off, got {stmt.argument!r}"
                        )
            return ResultSet([], [], rowcount=0)
        if stmt.name == "wal_status":
            wal = self.database.wal
            columns = ["key", "value"]
            if wal is None:
                return ResultSet(columns, [("enabled", 0)])
            rows = [("enabled", 1)]
            rows.extend(sorted(wal.status().items()))
            return ResultSet(columns, rows)
        if stmt.name == "integrity_check":
            problems = self._integrity_check()
            rows = [(p,) for p in problems] if problems else [("ok",)]
            return ResultSet(["integrity_check"], rows)
        if stmt.name == "compile":
            argument = str(stmt.argument or "").strip().lower()
            if argument in ("on", "1", "true"):
                self.database.compile_enabled = True
            elif argument in ("off", "0", "false"):
                self.database.compile_enabled = False
            elif argument == "status":
                stats = self.database.stats
                return ResultSet(
                    ["key", "value"],
                    [
                        ("enabled", int(self.database.compile_enabled)),
                        ("plan_cache_hits", stats["plan_cache_hits"]),
                        ("plan_cache_misses", stats["plan_cache_misses"]),
                        ("compile_fallbacks", stats["compile_fallbacks"]),
                    ],
                )
            else:
                raise ProgrammingError(
                    f"PRAGMA compile expects on/off/status, got {stmt.argument!r}"
                )
            # on/off return no rows, matching sqlite's silent treatment of
            # unknown pragmas, so differential corpora stay comparable.
            return ResultSet([], [], rowcount=0)
        if stmt.name == "snapshot_isolation":
            return self._pragma_snapshot_isolation(stmt)
        if stmt.name == "columnar":
            return self._pragma_columnar(stmt)
        if stmt.name == "shards":
            return self._pragma_shards(stmt)
        if stmt.name == "shard_parallel":
            return self._pragma_shard_parallel(stmt)
        # Unknown pragmas are silently ignored, like sqlite.
        return ResultSet([], [], rowcount=0)

    _ON = ("on", "1", "true")
    _OFF = ("off", "0", "false")

    def _pragma_snapshot_isolation(self, stmt: Pragma) -> ResultSet:
        """``PRAGMA snapshot_isolation(on|off|status)`` — MVCC reads.

        While on, SELECTs outside an explicit transaction run against a
        pinned copy-on-write snapshot (see
        :mod:`~repro.db.minisql.snapshot`) and never interact with the
        database writer lock.
        """
        from . import snapshot as _snapshot

        argument = str(stmt.argument or "status").strip().lower()
        if argument in self._ON:
            _snapshot.enable(self.database)
        elif argument in self._OFF:
            _snapshot.disable(self.database)
        elif argument == "status":
            mgr = self.database.snapshot_mgr
            if mgr is None:
                return ResultSet(["key", "value"], [("enabled", 0)])
            rows = [
                (key, value)
                for key, value in sorted(mgr.status().items())
                if key != "enabled"
            ]
            return ResultSet(["key", "value"], [("enabled", 1)] + rows)
        else:
            raise ProgrammingError(
                "PRAGMA snapshot_isolation expects on/off/status, "
                f"got {stmt.argument!r}"
            )
        return ResultSet([], [], rowcount=0)

    def _pragma_columnar(self, stmt: Pragma) -> ResultSet:
        """``PRAGMA columnar`` — per-table storage-mode control.

        Forms: ``columnar(status)`` lists every table's mode;
        ``columnar(on|off)`` sets the default for *future* CREATE TABLE;
        ``columnar(<table> status)`` reports one table;
        ``columnar(<table> on|off)`` converts the table in place
        (rejected mid-transaction and during a bulk load — conversion
        swaps the storage object, which the undo log cannot unwind).
        """
        database = self.database
        parts = str(stmt.argument or "").strip().split()
        if not parts or (len(parts) == 1 and parts[0].lower() == "status"):
            rows = [
                (t.name, int(t.is_columnar))
                for t in database.tables.values()
            ]
            return ResultSet(["table", "columnar"], rows)
        first = parts[0].lower()
        if len(parts) == 1 and first in self._ON + self._OFF:
            database.columnar_default = first in self._ON
            return ResultSet([], [], rowcount=0)
        if len(parts) == 2:
            name, action = parts[0], parts[1].lower()
            if action == "status":
                table = database.table(name)
                return ResultSet(
                    ["table", "columnar"], [(table.name, int(table.is_columnar))]
                )
            if action in self._ON + self._OFF:
                if database.in_transaction:
                    raise OperationalError(
                        "cannot change table storage inside a transaction"
                    )
                changed = database.set_table_storage(name, action in self._ON)
                if changed:
                    _COLUMNAR_CONVERSIONS.inc()
                    wal = database.wal
                    if wal is not None and not database.bulk_mode:
                        # Persist the new mode: the WAL stream itself is
                        # storage-agnostic, so only a checkpoint trailer
                        # records which tables are columnar.
                        with database.txn_lock:
                            wal.checkpoint(database)
                return ResultSet([], [], rowcount=0)
        raise ProgrammingError(
            "PRAGMA columnar expects status, on/off, or <table> on/off/"
            f"status, got {stmt.argument!r}"
        )

    def _pragma_shards(self, stmt: Pragma) -> ResultSet:
        """``PRAGMA shards`` — scatter-gather shard control.

        Forms: ``shards`` / ``shards(status)`` reports the current
        configuration; ``shards(<n>)`` attaches a shard manager with
        ``n`` shards (or resizes an existing one — ``shards(1)`` keeps
        the manager attached but routes every query single-process);
        ``shards(off)`` hydrates any resident tables back into the
        primary, tears the manager down, and removes the persisted
        configuration.
        """
        database = self.database
        argument = str(stmt.argument or "").strip().lower()
        mgr = database.shard_mgr
        if argument in ("", "status"):
            if mgr is None:
                return ResultSet(["key", "value"], [("enabled", 0)])
            return ResultSet(["key", "value"], mgr.status_rows())
        if argument in self._OFF:
            if mgr is not None:
                if database.in_transaction:
                    raise OperationalError(
                        "cannot reconfigure shards inside a transaction"
                    )
                mgr.detach()
                database.shard_mgr = None
            return ResultSet([], [], rowcount=0)
        try:
            nshards = int(argument)
        except ValueError:
            raise ProgrammingError(
                "PRAGMA shards expects a shard count, off, or status, "
                f"got {stmt.argument!r}"
            ) from None
        if nshards < 1:
            raise ProgrammingError("PRAGMA shards expects a count >= 1")
        if database.in_transaction:
            raise OperationalError(
                "cannot reconfigure shards inside a transaction"
            )
        if mgr is None:
            from .shard import ShardManager

            database.shard_mgr = ShardManager.create(database, nshards)
        else:
            mgr.reconfigure(nshards)
        return ResultSet([], [], rowcount=0)

    def _pragma_shard_parallel(self, stmt: Pragma) -> ResultSet:
        """``PRAGMA shard_parallel(on|off|auto|status)`` — worker-pool
        policy for shard scatter: ``auto`` (default) uses the pool only
        on multi-core hosts, ``on`` forces it wherever fork is
        available, ``off`` keeps scatter serial in-process.
        """
        database = self.database
        argument = str(stmt.argument or "").strip().lower()
        mgr = database.shard_mgr
        if argument in ("", "status"):
            value = mgr.parallel if mgr is not None else "off"
            return ResultSet(["shard_parallel"], [(value,)])
        if argument in self._ON:
            argument = "on"
        elif argument in self._OFF:
            argument = "off"
        if argument not in ("on", "off", "auto"):
            raise ProgrammingError(
                "PRAGMA shard_parallel expects on/off/auto/status, "
                f"got {stmt.argument!r}"
            )
        if mgr is None:
            raise OperationalError(
                "PRAGMA shard_parallel requires PRAGMA shards(<n>) first"
            )
        mgr.set_parallel(argument)
        return ResultSet([], [], rowcount=0)

    def _integrity_check(self) -> list[str]:
        """Cross-check every live index against the row store.

        The crash-recovery tests run this after reopening a killed
        archive: recovery rebuilds indexes from replayed rows, so any
        divergence here means replay and the row store disagree.
        """
        problems: list[str] = []
        for table in self.database.tables.values():
            if getattr(table, "is_columnar", False):
                problems.extend(table.check_columns())
            width = len(table.columns)
            bad_rows = False
            for rowid, row in table.rows.items():
                if len(row) != width:
                    problems.append(
                        f"{table.name}: row {rowid} has {len(row)} values, "
                        f"expected {width}"
                    )
                    bad_rows = True
            if bad_rows:
                continue
            for index in table.indexes.values():
                if index.stale:
                    continue
                expected: dict[tuple, set[int]] = {}
                for rowid, row in table.rows.items():
                    expected.setdefault(index.key_for(row), set()).add(rowid)
                if index.map != expected:
                    problems.append(
                        f"index {index.name} on {table.name} is inconsistent "
                        f"with the row store"
                    )
                if index.unique:
                    for key, bucket in expected.items():
                        if None not in key and len(bucket) > 1:
                            problems.append(
                                f"index {index.name} on {table.name}: "
                                f"duplicate key {key!r}"
                            )
        return problems

    # ------------------------------------------------------------------ DML --

    def _execute_insert(self, stmt: Insert, params: Sequence[Any]) -> ResultSet:
        table = self.database.table(stmt.table)
        if stmt.columns:
            positions = [table.position_of(c) for c in stmt.columns]
        else:
            positions = list(range(len(table.columns)))
        count = 0
        lastrowid = None
        source_rows: Iterable[Sequence[Any]]
        if stmt.select is not None:
            _, select_rows = self._execute_select(stmt.select, params)
            source_rows = select_rows
        else:
            source_rows = [
                [evaluate(expr, None, params) for expr in row_exprs]
                for row_exprs in stmt.rows
            ]
        for values in source_rows:
            if len(values) != len(positions):
                raise ProgrammingError(
                    f"{len(positions)} columns but {len(values)} values"
                )
            row: list[Any] = [OMITTED] * len(table.columns)
            for position, value in zip(positions, values):
                row[position] = value
            self.database.insert(table, row)
            lastrowid = table.last_autoincrement or lastrowid
            count += 1
        return ResultSet([], [], rowcount=count, lastrowid=lastrowid)

    def execute_insert_batch(
        self, stmt: Insert, seq_of_params: Iterable[Sequence[Any]]
    ) -> ResultSet:
        """Fast path for ``executemany`` on a single-row VALUES insert.

        The per-row work reduces to evaluating the VALUES expressions
        (usually bare placeholders) and one ``insert_row`` call; statement
        dispatch, column-position lookup and transaction checks happen
        once for the whole batch.
        """
        if stmt.select is not None or len(stmt.rows) != 1:
            raise ProgrammingError(
                "executemany requires a single-row VALUES insert"
            )
        table = self.database.table(stmt.table)
        if stmt.columns:
            positions = [table.position_of(c) for c in stmt.columns]
        else:
            positions = list(range(len(table.columns)))
        row_exprs = stmt.rows[0]
        if len(row_exprs) != len(positions):
            raise ProgrammingError(
                f"{len(positions)} columns but {len(row_exprs)} values"
            )
        # Common case: every value is a bare placeholder in order.
        all_placeholders = all(
            isinstance(e, Placeholder) and e.index == i
            for i, e in enumerate(row_exprs)
        )
        width = len(table.columns)
        database = self.database
        count = 0
        if all_placeholders:
            expected = len(positions)

            def build_rows() -> Iterator[list[Any]]:
                for params in seq_of_params:
                    if len(params) != expected:
                        raise ProgrammingError(
                            f"{expected} placeholders but {len(params)} parameters"
                        )
                    row: list[Any] = [OMITTED] * width
                    for position, value in zip(positions, params):
                        row[position] = value
                    yield row

            if database.bulk_mode:
                # Bulk-load batch append: one undo watermark for the whole
                # batch, suspended secondary indexes untouched per row.
                if positions == list(range(width)):
                    # Full-width in-order insert: the parameter tuples
                    # already ARE the rows; append_rows width-checks and
                    # copies them, so skip per-row assembly entirely.
                    batch = (
                        seq_of_params
                        if isinstance(seq_of_params, list)
                        else list(seq_of_params)
                    )
                    count = database.bulk_insert_rows(table, batch)
                else:
                    count = database.bulk_insert_rows(table, build_rows())
            else:
                for row in build_rows():
                    database.insert(table, row)
                    count += 1
        else:
            for params in seq_of_params:
                row = [OMITTED] * width
                for position, expr in zip(positions, row_exprs):
                    row[position] = evaluate(expr, None, tuple(params))
                database.insert(table, row)
                count += 1
        return ResultSet(
            [], [], rowcount=count, lastrowid=table.last_autoincrement or None
        )

    def _execute_update(self, stmt: Update, params: Sequence[Any]) -> ResultSet:
        table = self.database.table(stmt.table)
        where = self._materialize_subqueries(stmt.where, params)
        plan = self._compiled_dml(stmt, table, is_update=True)
        if plan is not None and plan.fallbacks:
            self.database.stats["compile_fallbacks"] += plan.fallbacks
            _COMPILE_FALLBACKS.inc(plan.fallbacks)
        # Compiled WHERE only applies when subquery materialisation left
        # the original expression untouched (the closures were built
        # against it).
        where_fn = (
            plan.where_fn
            if plan is not None and where is stmt.where else None
        )
        assign_fns = plan.assign_fns if plan is not None else None
        context = (
            _single_table_context(table)
            if (where is not None and where_fn is None) or assign_fns is None
            else None
        )
        if assign_fns is None:
            assignments = [
                (table.position_of(name), expr) for name, expr in stmt.assignments
            ]
        touched = []
        for rowid, row in list(table.scan()):
            if context is not None:
                context.bind(row)
            if where is not None:
                if where_fn is not None:
                    if not truthy(where_fn(row, params, None)):
                        continue
                elif not truthy(evaluate(where, context, params)):
                    continue
            if assign_fns is not None:
                new_values = {
                    position: fn(row, params, None) for position, fn in assign_fns
                }
            else:
                new_values = {
                    position: evaluate(expr, context, params)
                    for position, expr in assignments
                }
            touched.append((rowid, new_values))
        for rowid, new_values in touched:
            self.database.update(table, rowid, new_values)
        return ResultSet([], [], rowcount=len(touched))

    def _execute_delete(self, stmt: Delete, params: Sequence[Any]) -> ResultSet:
        table = self.database.table(stmt.table)
        where = self._materialize_subqueries(stmt.where, params)
        plan = self._compiled_dml(stmt, table, is_update=False)
        if plan is not None and plan.fallbacks:
            self.database.stats["compile_fallbacks"] += plan.fallbacks
            _COMPILE_FALLBACKS.inc(plan.fallbacks)
        where_fn = (
            plan.where_fn
            if plan is not None and where is stmt.where else None
        )
        doomed = []
        if where is not None and where_fn is not None:
            for rowid, row in table.scan():
                if truthy(where_fn(row, params, None)):
                    doomed.append(rowid)
        else:
            context = _single_table_context(table)
            for rowid, row in table.scan():
                context.bind(row)
                if where is None or truthy(evaluate(where, context, params)):
                    doomed.append(rowid)
        for rowid in doomed:
            self.database.delete(table, rowid)
        return ResultSet([], [], rowcount=len(doomed))

    # ---------------------------------------------------------------- SELECT --

    def _execute_select(
        self, stmt: Select, params: Sequence[Any]
    ) -> tuple[list[str], list[tuple[Any, ...]]]:
        # Scatter-gather route: when a shard manager is attached and the
        # splitter proves the statement distributive, the shards answer
        # it (shard fragment/merge executors run on shard databases with
        # no manager of their own, so this cannot recurse).
        mgr = self.database.shard_mgr
        if mgr is not None:
            routed = mgr.try_select(self, stmt, params)
            if routed is not None:
                return routed
        columns, rows = self._execute_select_core(stmt, params)
        node = stmt
        while node.compound is not None:
            op, rhs = node.compound
            rhs_columns, rhs_rows = self._execute_select_core(rhs, params)
            if len(rhs_columns) != len(columns):
                raise ProgrammingError(
                    "SELECTs to the left and right of "
                    f"{op} do not have the same number of result columns"
                )
            rows = _apply_compound(op, rows, rhs_rows)
            node = rhs
        # ORDER BY / LIMIT on the head select apply post-compound when a
        # compound exists (the parser attaches them to the head).
        if stmt.compound is not None and stmt.order_by:
            rows = _order_projected(rows, columns, stmt.order_by, params)
        if stmt.compound is not None:
            rows = _apply_limit(rows, stmt, params)
        return columns, rows

    def _materialize_subqueries(
        self, expr: Optional[Expression], params: Sequence[Any]
    ) -> Optional[Expression]:
        """Replace ``IN (SELECT ...)`` items with literal value lists.

        Subqueries are uncorrelated by construction (the parser only
        accepts them in IN lists), so one evaluation per statement is
        both correct and efficient.

        Identity-preserving: when the tree holds no subquery the input
        expression is returned unchanged, so the caller's ``is`` check
        (and with it statement-level plan caching) keeps working.
        """
        if expr is None:
            return None
        if not any(isinstance(node, Subquery) for node in walk(expr)):
            return expr
        if isinstance(expr, InList) and any(
            isinstance(item, Subquery) for item in expr.items
        ):
            items: list[Expression] = []
            for item in expr.items:
                if isinstance(item, Subquery):
                    columns, rows = self._execute_select(item.select, params)
                    if len(columns) != 1:
                        raise ProgrammingError(
                            "IN subquery must return exactly one column"
                        )
                    items.extend(Literal(row[0]) for row in rows)
                else:
                    items.append(item)
            return InList(
                self._materialize_subqueries(expr.operand, params),  # type: ignore[arg-type]
                items, expr.negated,
            )
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._materialize_subqueries(expr.left, params),  # type: ignore[arg-type]
                self._materialize_subqueries(expr.right, params),  # type: ignore[arg-type]
            )
        from .ast_nodes import UnaryOp as _UnaryOp
        if isinstance(expr, _UnaryOp):
            return _UnaryOp(
                expr.op, self._materialize_subqueries(expr.operand, params)  # type: ignore[arg-type]
            )
        return expr

    def _execute_select_core(
        self, stmt: Select, params: Sequence[Any]
    ) -> tuple[list[str], list[tuple[Any, ...]]]:
        if stmt.where is not None:
            rewritten = self._materialize_subqueries(stmt.where, params)
            if rewritten is not stmt.where:
                copied = _copy_select_with_where(stmt, rewritten)
                # Keep an EXPLAIN ANALYZE probe pointed at the statement
                # actually executed (identity changes with the copy).
                if self._probe is not None and self._probe.target is stmt:
                    self._probe.target = copied
                stmt = copied
        if stmt.table is None:
            return self._select_no_from(stmt, params)

        cplan = self._compiled_select(stmt)
        if cplan is not None and cplan.fallbacks:
            self.database.stats["compile_fallbacks"] += cplan.fallbacks
            _COMPILE_FALLBACKS.inc(cplan.fallbacks)
        layout = cplan.layout if cplan is not None else _Layout.build(self.database, stmt)

        probe_active = self._probe is not None and self._probe.target is stmt

        if cplan is not None and cplan.compact is not None and not probe_active:
            compact_result = self._compact_select(stmt, cplan, params)
            if compact_result is not None:
                columns, projected = compact_result
                if stmt.distinct:
                    projected = _distinct(projected)
                if stmt.compound is None:
                    projected = _apply_limit(projected, stmt, params)
                return columns, projected

        raw_rows, plan = self._produce_rows(stmt, layout, params, cplan)

        if stmt.where is not None:
            where_fn = cplan.where_fn if cplan is not None else None
            if where_fn is not None:
                raw_rows = (
                    row for row in raw_rows
                    if truthy(where_fn(row, params, None))
                )
            else:
                context = RowContext(layout.resolution, layout.ambiguous)
                where = stmt.where
                raw_rows = (
                    row for row in raw_rows
                    if truthy(evaluate(where, context.bind(row), params))
                )
            if probe_active:
                raw_rows = self._probe.wrap("where", raw_rows)

        if cplan is not None:
            is_grouped = cplan.is_grouped
        else:
            is_grouped = bool(stmt.group_by) or any(
                contains_aggregate(item.expr) for item in stmt.items
            ) or (stmt.having is not None and contains_aggregate(stmt.having))

        if is_grouped:
            if cplan is not None and cplan.grouped is not None:
                columns, projected = self._grouped_select_compiled(
                    stmt, cplan.columns, cplan.grouped, layout.total_width,
                    raw_rows, params,
                )
            else:
                columns, projected = self._grouped_select(stmt, layout, raw_rows, params)
        else:
            plain_compiled = (
                cplan is not None and cplan.proj is not None
                and (not stmt.order_by or cplan.order_compiled)
            )
            if plain_compiled:
                columns, projected = self._plain_select_compiled(
                    stmt, cplan.columns, cplan.proj, cplan.order_specs,
                    raw_rows, params, presorted=plan.ordered,
                )
            else:
                columns, projected = self._plain_select(
                    stmt, layout, raw_rows, params, presorted=plan.ordered
                )

        if stmt.distinct:
            projected = _distinct(projected)

        if stmt.compound is None:
            # Ordering is handled inside _plain_select / _grouped_select so
            # sort keys can see pre-projection columns; only LIMIT remains.
            projected = _apply_limit(projected, stmt, params)
        return columns, projected

    def _select_no_from(
        self, stmt: Select, params: Sequence[Any]
    ) -> tuple[list[str], list[tuple[Any, ...]]]:
        """``SELECT 1+1`` style computations."""
        columns = []
        values = []
        for item in stmt.items:
            if isinstance(item.expr, Star):
                raise ProgrammingError("'*' requires a FROM clause")
            columns.append(item.alias or ref_name(item.expr))
            values.append(evaluate(item.expr, None, params))
        rows = [tuple(values)]
        if stmt.where is not None and not truthy(evaluate(stmt.where, None, params)):
            rows = []
        return columns, rows

    # -- row production (FROM + JOIN with pushdown) ---------------------------

    def _produce_rows(
        self,
        stmt: Select,
        layout: "_Layout",
        params: Sequence[Any],
        cplan: Optional[SelectPlan] = None,
    ) -> tuple[Iterator[list[Any]], "_AccessPlan"]:
        assert stmt.table is not None
        base = self.database.table(stmt.table.name)
        base_alias = stmt.table.effective_name

        conjuncts = _conjuncts(stmt.where) if not stmt.joins else []
        order_by = stmt.order_by if _can_push_order(stmt) else []
        plan = _plan_access(
            base, base_alias, conjuncts, order_by, params,
            _select_alias_names(stmt),
        )
        rows = self._iter_plan(base, plan)
        probe = self._probe if (
            self._probe is not None and self._probe.target is stmt
        ) else None
        if probe is not None:
            rows = probe.wrap("scan", rows)

        offset = len(base.columns)
        for i, join in enumerate(stmt.joins):
            inner_table = self.database.table(join.table.name)
            jplan = (
                cplan.joins[i]
                if cplan is not None and i < len(cplan.joins) else None
            )
            rows = self._join(
                rows, offset, inner_table, join, layout, params, jplan
            )
            if probe is not None:
                rows = probe.wrap(f"join{i}", rows)
            offset += len(inner_table.columns)
        return rows, plan

    def _iter_plan(
        self, table: Table, plan: "_AccessPlan"
    ) -> Iterator[list[Any]]:
        """Produce base-table rows along the planned access path,
        charging row counts to the database's stats counters."""
        stats = self.database.stats
        rows = table.rows
        if plan.kind == "eq":
            stats["index_eq_probes"] += 1
            rowids = sorted(plan.index.lookup(plan.key))
            stats["rows_scanned"] += len(rowids)
            stats["rows_via_index"] += len(rowids)
            for rowid in rowids:
                yield list(rows[rowid])
        elif plan.kind == "range":
            stats["index_range_scans"] += 1
            if plan.ordered:
                stats["order_pushdowns"] += 1
            count = 0
            try:
                for rowid in plan.index.range_rowids(
                    plan.prefix, plan.lo, plan.hi,
                    descending=plan.descending,
                    include_null=plan.include_null,
                ):
                    count += 1
                    yield list(rows[rowid])
            finally:
                # finally so an early LIMIT stop still charges its rows
                stats["rows_scanned"] += count
                stats["rows_via_index"] += count
        else:
            stats["full_scans"] += 1
            stats["rows_scanned"] += len(table)
            for _rowid, row in table.scan():
                yield list(row)

    def _join(
        self,
        left_rows: Iterator[list[Any]],
        offset: int,
        inner: Table,
        join: Join,
        layout: "_Layout",
        params: Sequence[Any],
        jplan: Optional[JoinPlan] = None,
    ) -> Iterator[list[Any]]:
        inner_width = len(inner.columns)
        condition = join.condition

        if join.kind == "CROSS" or condition is None:
            inner_rows = [list(r) for _, r in inner.scan()]
            for left in left_rows:
                for inner_row in inner_rows:
                    combined = list(left)
                    combined += inner_row
                    yield combined
            return

        probe_fn = jplan.probe if jplan is not None else None
        build_fn = jplan.build if jplan is not None else None
        cond_fn = jplan.condition if jplan is not None else None
        context = (
            None
            if probe_fn is not None and build_fn is not None and cond_fn is not None
            else RowContext(layout.resolution, layout.ambiguous)
        )
        total = layout.total_width

        equi = _find_equi_key(condition, layout, offset, inner_width)
        if equi is not None:
            left_expr, right_positions_expr = equi
            # Build hash table over the inner relation; the build key is
            # compiled once per statement when the plan covers it.
            table_map: dict[Any, list[list[Any]]] = {}
            if build_fn is not None:
                for _rowid, inner_row in inner.scan():
                    key = build_fn(inner_row, params, None)
                    if key is None:
                        continue
                    table_map.setdefault(key, []).append(list(inner_row))
            else:
                inner_context = _single_table_context(inner, alias=join.table.effective_name)
                for _rowid, inner_row in inner.scan():
                    key = evaluate(right_positions_expr, inner_context.bind(inner_row), params)
                    if key is None:
                        continue
                    table_map.setdefault(key, []).append(list(inner_row))
            for left in left_rows:
                padded = left + [None] * (total - len(left))
                if probe_fn is not None:
                    key = probe_fn(padded, params, None)
                else:
                    key = evaluate(left_expr, context.bind(padded), params)
                matches = table_map.get(key, []) if key is not None else []
                emitted = False
                for inner_row in matches:
                    combined = left + inner_row
                    combined += [None] * (total - len(combined))
                    if cond_fn is not None:
                        ok = truthy(cond_fn(combined, params, None))
                    else:
                        ok = truthy(evaluate(condition, context.bind(combined), params))
                    if ok:
                        emitted = True
                        yield combined[: len(left) + inner_width]
                if not emitted and join.kind == "LEFT":
                    yield left + [None] * inner_width
            return

        # Fallback: nested loop.
        inner_rows = [list(r) for _, r in inner.scan()]
        for left in left_rows:
            emitted = False
            for inner_row in inner_rows:
                combined = left + inner_row
                padded = combined + [None] * (total - len(combined))
                if cond_fn is not None:
                    ok = truthy(cond_fn(padded, params, None))
                else:
                    ok = truthy(evaluate(condition, context.bind(padded), params))
                if ok:
                    emitted = True
                    yield combined
            if not emitted and join.kind == "LEFT":
                yield left + [None] * inner_width

    # -- projection paths ---------------------------------------------------------

    def _plain_select(
        self,
        stmt: Select,
        layout: "_Layout",
        raw_rows: Iterator[list[Any]],
        params: Sequence[Any],
        presorted: bool = False,
    ) -> tuple[list[str], list[tuple[Any, ...]]]:
        columns, exprs = _expand_items(stmt.items, layout)
        context = RowContext(layout.resolution, layout.ambiguous)

        # ``presorted`` rows arrive in ORDER BY order straight from an
        # ordered index: skip the sort and stop early once LIMIT+OFFSET
        # rows have been projected (the index stops producing rows too).
        needs_order = bool(stmt.order_by) and stmt.compound is None and not presorted
        row_cap = None
        if presorted and stmt.limit is not None:
            limit = evaluate(stmt.limit, None, params)
            if limit is not None and int(limit) >= 0:
                offset = (
                    evaluate(stmt.offset, None, params)
                    if stmt.offset is not None else 0
                )
                row_cap = int(limit) + int(offset or 0)
        alias_map = {
            (item.alias or "").lower(): item.expr
            for item in stmt.items
            if item.alias
        }

        projected: list[tuple[Any, ...]] = []
        order_keys: list[tuple] = []
        for row in raw_rows:
            context.bind(row)
            values = tuple(
                row[e] if isinstance(e, int) else evaluate(e, context, params)
                for e in exprs
            )
            if needs_order:
                key = _order_key_for_row(
                    stmt.order_by, context, params, alias_map, values, columns
                )
                order_keys.append(key)
            projected.append(values)
            if row_cap is not None and len(projected) >= row_cap:
                break
        if needs_order:
            paired = sorted(zip(order_keys, range(len(projected))), key=lambda p: p[0])
            projected = [projected[i] for _, i in paired]
        return columns, projected

    def _grouped_select(
        self,
        stmt: Select,
        layout: "_Layout",
        raw_rows: Iterator[list[Any]],
        params: Sequence[Any],
    ) -> tuple[list[str], list[tuple[Any, ...]]]:
        columns, exprs = _expand_items(stmt.items, layout)
        context = RowContext(layout.resolution, layout.ambiguous)

        # GROUP BY may reference select-list aliases ("GROUP BY k") or
        # ordinals ("GROUP BY 1"); substitute the aliased expression.
        early_alias_map = {
            (item.alias or "").lower(): item.expr for item in stmt.items if item.alias
        }
        group_by = [
            _resolve_group_expr(g, early_alias_map, stmt.items) for g in stmt.group_by
        ]
        # HAVING may also reference select aliases ("HAVING c > 1").
        having = (
            _substitute_aliases(stmt.having, early_alias_map)
            if stmt.having is not None
            else None
        )

        # Collect every aggregate call appearing anywhere in the query.
        agg_nodes: list[FunctionCall] = []
        seen: set[int] = set()
        scan_targets: list[Expression] = [item.expr for item in stmt.items]
        if having is not None:
            scan_targets.append(having)
        for order in stmt.order_by:
            scan_targets.append(order.expr)
        for target in scan_targets:
            for node in walk(target):
                if is_aggregate_call(node):
                    if id(node) not in seen:
                        seen.add(id(node))
                        agg_nodes.append(node)

        groups: dict[tuple, _Group] = {}
        group_order: list[tuple] = []
        for row in raw_rows:
            context.bind(row)
            if group_by:
                key = tuple(
                    _hashable(evaluate(g, context, params)) for g in group_by
                )
            else:
                key = ()
            group = groups.get(key)
            if group is None:
                group = _Group(
                    representative=list(row),
                    accumulators=[
                        (_make_distinct(node) if node.distinct else make_aggregate(node.name))
                        for node in agg_nodes
                    ],
                )
                groups[key] = group
                group_order.append(key)
            for node, acc in zip(agg_nodes, group.accumulators):
                if node.args and not isinstance(node.args[0], Star):
                    value = evaluate(node.args[0], context, params)
                else:
                    value = 1  # COUNT(*)
                acc.step(value)

        if not groups and not stmt.group_by:
            # Aggregates over an empty relation still return one row.
            groups[()] = _Group(
                representative=[None] * layout.total_width,
                accumulators=[
                    (_make_distinct(node) if node.distinct else make_aggregate(node.name))
                    for node in agg_nodes
                ],
            )
            group_order.append(())

        agg_index = {id(node): i for i, node in enumerate(agg_nodes)}
        results: list[tuple[Any, ...]] = []
        order_keys: list[tuple] = []
        alias_map = {
            (item.alias or "").lower(): item.expr for item in stmt.items if item.alias
        }
        for key in group_order:
            group = groups[key]
            agg_values = [acc.finalize() for acc in group.accumulators]
            context.bind(group.representative)
            evaluator = _AggregateEvaluator(context, params, agg_index, agg_values)
            if having is not None and not truthy(evaluator.eval(having)):
                continue
            values = tuple(
                group.representative[e] if isinstance(e, int) else evaluator.eval(e)
                for e in exprs
            )
            if stmt.order_by:
                order_key = []
                for order in stmt.order_by:
                    expr = _resolve_order_expr(order.expr, alias_map, values, columns)
                    if isinstance(expr, int):
                        value = values[expr]
                    else:
                        value = evaluator.eval(expr)
                    k = sort_key(value)
                    order_key.append(
                        _Reversor(k) if order.descending else k
                    )
                order_keys.append(tuple(order_key))
            results.append(values)
        if stmt.order_by:
            paired = sorted(zip(order_keys, range(len(results))), key=lambda p: p[0])
            results = [results[i] for _, i in paired]
        return columns, results

    # -- compiled execution (see compile.py) ----------------------------------

    def _compiled_select(self, stmt: Select) -> Optional[SelectPlan]:
        """Fetch or build the compiled plan for a SELECT.

        Plans are cached on the Statement object itself, so their
        lifetime is the connection's LRU statement cache; validity is
        keyed on ``Database.schema_version`` (any DDL invalidates).
        Returns None when ``PRAGMA compile off`` is in effect.
        """
        database = self.database
        if not database.compile_enabled:
            return None
        plan = getattr(stmt, "_msql_plan", None)
        if plan is not None and plan.schema_version == database.schema_version:
            database.stats["plan_cache_hits"] += 1
            _PLAN_HITS.inc()
            return plan
        t0 = time.perf_counter()
        plan = self._build_select_plan(stmt)
        _COMPILE_SECONDS.observe(time.perf_counter() - t0)
        database.stats["plan_cache_misses"] += 1
        _PLAN_MISSES.inc()
        stmt._msql_plan = plan
        return plan

    def _build_select_plan(self, stmt: Select) -> SelectPlan:
        """Compile every section of a SELECT that the compiler covers.

        Sections fail independently: a WHERE the compiler cannot lower
        leaves ``where_fn`` as None (interpreted) while joins and the
        projection may still run compiled.  Layout errors (unknown
        table, duplicate alias) propagate — the interpreter raises them
        at the same point.
        """
        database = self.database
        layout = _Layout.build(database, stmt)
        resolution = layout.resolution
        plan = SelectPlan(
            schema_version=database.schema_version,
            layout=layout, columns=None, exprs=None, where_fn=None,
        )
        fallbacks = 0
        used: set[int] = set()

        if stmt.where is not None:
            plan.where_fn = try_compile(stmt.where, resolution, None, used)
            if plan.where_fn is None:
                fallbacks += 1

        offset = len(database.table(stmt.table.name).columns)
        for join in stmt.joins:
            inner_table = database.table(join.table.name)
            jplan: Optional[JoinPlan] = None
            if join.kind != "CROSS" and join.condition is not None:
                cond_fn = try_compile(join.condition, resolution, None, used)
                equi = _find_equi_key(
                    join.condition, layout, offset, len(inner_table.columns)
                )
                if equi is not None:
                    probe_fn = try_compile(equi[0], resolution, None, used)
                    inner_resolution = _single_table_context(
                        inner_table, alias=join.table.effective_name
                    ).columns
                    build_fn = try_compile(equi[1], inner_resolution)
                    if cond_fn and probe_fn and build_fn:
                        jplan = JoinPlan(probe_fn, build_fn, cond_fn)
                elif cond_fn is not None:
                    jplan = JoinPlan(None, None, cond_fn)
                if jplan is None:
                    fallbacks += 1
            plan.joins.append(jplan)
            offset += len(inner_table.columns)

        try:
            columns, exprs = _expand_items(stmt.items, layout)
            plan.columns, plan.exprs = columns, exprs
        except Exception:
            columns = exprs = None

        plan.is_grouped = bool(stmt.group_by) or any(
            contains_aggregate(item.expr) for item in stmt.items
        ) or (stmt.having is not None and contains_aggregate(stmt.having))

        if exprs is None:
            fallbacks += 1
        elif plan.is_grouped:
            plan.grouped = self._build_group_plan(stmt, columns, exprs, resolution, used)
            if plan.grouped is None:
                fallbacks += 1
        else:
            proj, order_specs, order_ok = self._build_plain_plan(
                stmt, columns, exprs, resolution, used
            )
            if proj is not None and order_ok:
                plan.proj = proj
                plan.order_specs = order_specs
                plan.order_compiled = bool(stmt.order_by)
            else:
                fallbacks += 1

        plan.fallbacks = fallbacks
        try:
            plan.compact = self._build_compact(stmt, plan, used)
        except Exception:
            plan.compact = None
        if plan.compact is not None:
            try:
                plan.vector = self._build_vector(stmt, plan, used)
            except Exception:
                plan.vector = None
        return plan

    def _build_plain_plan(
        self,
        stmt: Select,
        columns: list[str],
        exprs: list[Any],
        resolution: dict[str, int],
        used: Optional[set],
        remap: Optional[dict[int, int]] = None,
    ) -> tuple[Optional[list[Any]], Optional[list[tuple[Any, bool]]], bool]:
        """Compile projection + ORDER BY for a non-grouped select.

        Returns (proj, order_specs, order_ok); (None, None, False) means
        the section stays interpreted.  ``remap`` translates star-column
        row positions when compiling against a compacted row shape.
        """
        proj: list[Any] = []
        for e in exprs:
            if isinstance(e, int):
                position = remap[e] if remap is not None else e
                if used is not None:
                    used.add(e)
                proj.append(position)
            else:
                fn = try_compile(e, resolution, None, used)
                if fn is None:
                    return None, None, False
                proj.append(fn)
        if not stmt.order_by:
            return proj, None, True
        alias_map = {
            (item.alias or "").lower(): item.expr
            for item in stmt.items if item.alias
        }
        lowered = [c.lower() for c in columns]
        dummy_values = tuple(columns)  # only its length matters here
        order_specs: list[tuple[Any, bool]] = []
        for order in stmt.order_by:
            try:
                resolved = _resolve_order_expr(
                    order.expr, alias_map, dummy_values, columns
                )
            except ProgrammingError:
                # Out-of-range ordinal: raised per row by the interpreter,
                # so an empty relation must not raise.  Stay interpreted.
                return None, None, False
            if isinstance(resolved, int):
                order_specs.append((resolved, bool(order.descending)))
                continue
            fn = try_compile(resolved, resolution, None, used)
            if fn is None:
                # Mirror _order_key_for_row: an unresolvable bare column
                # ref falls back to the projected column of that name.
                if (
                    isinstance(resolved, ColumnRef)
                    and resolved.name.lower() in lowered
                ):
                    order_specs.append(
                        (lowered.index(resolved.name.lower()), bool(order.descending))
                    )
                    continue
                return None, None, False
            order_specs.append((fn, bool(order.descending)))
        return proj, order_specs, True

    def _build_group_plan(
        self,
        stmt: Select,
        columns: list[str],
        exprs: list[Any],
        resolution: dict[str, int],
        used: Optional[set],
        remap: Optional[dict[int, int]] = None,
    ) -> Optional[GroupPlan]:
        """Compile hash aggregation end to end, or None for interpreter.

        All-or-nothing: the grouped pipeline shares one representative
        row and one aggregate value table, so mixing compiled and
        interpreted pieces is not worth the bookkeeping.
        """
        try:
            early_alias_map = {
                (item.alias or "").lower(): item.expr
                for item in stmt.items if item.alias
            }
            group_by = [
                _resolve_group_expr(g, early_alias_map, stmt.items)
                for g in stmt.group_by
            ]
            having = (
                _substitute_aliases(stmt.having, early_alias_map)
                if stmt.having is not None else None
            )
            # Aggregate call sites, id-deduplicated in the same walk order
            # as the interpreter so DISTINCT wrapping matches.
            agg_nodes: list[FunctionCall] = []
            seen: set[int] = set()
            scan_targets: list[Expression] = [item.expr for item in stmt.items]
            if having is not None:
                scan_targets.append(having)
            for order in stmt.order_by:
                scan_targets.append(order.expr)
            for target in scan_targets:
                for node in walk(target):
                    if is_aggregate_call(node) and id(node) not in seen:
                        seen.add(id(node))
                        agg_nodes.append(node)

            group_fns = [compile_expr(g, resolution, None, used) for g in group_by]
            arg_fns: list[Optional[Any]] = []
            for node in agg_nodes:
                if node.args and not isinstance(node.args[0], Star):
                    arg_fns.append(compile_expr(node.args[0], resolution, None, used))
                else:
                    arg_fns.append(None)  # COUNT(*)
            acc_factories = [
                (lambda n=node: _make_distinct(n)) if node.distinct
                else (lambda name=node.name: make_aggregate(name))
                for node in agg_nodes
            ]
            agg_slots = {id(node): i for i, node in enumerate(agg_nodes)}
            having_fn = (
                compile_expr(having, resolution, agg_slots, used)
                if having is not None else None
            )
            item_slots: list[Any] = []
            for e in exprs:
                if isinstance(e, int):
                    position = remap[e] if remap is not None else e
                    if used is not None:
                        used.add(e)
                    item_slots.append(position)
                else:
                    item_slots.append(compile_expr(e, resolution, agg_slots, used))
            order_specs: Optional[list[tuple[Any, bool]]] = None
            if stmt.order_by:
                dummy_values = tuple(columns)
                order_specs = []
                for order in stmt.order_by:
                    resolved = _resolve_order_expr(
                        order.expr, early_alias_map, dummy_values, columns
                    )
                    if isinstance(resolved, int):
                        order_specs.append((resolved, bool(order.descending)))
                    else:
                        order_specs.append((
                            compile_expr(resolved, resolution, agg_slots, used),
                            bool(order.descending),
                        ))
            return GroupPlan(
                group_fns, acc_factories, arg_fns, having_fn, item_slots,
                order_specs,
            )
        except Exception:
            return None

    def _build_compact(
        self, stmt: Select, plan: SelectPlan, used: set
    ) -> Optional[CompactPlan]:
        """Projection-pushdown variant for single-table full scans.

        When the fully-compiled statement touches a strict subset of the
        table's columns, recompile its closures against the compacted
        tuple shape ``Table.scan_batches(positions=...)`` yields; when it
        touches every column (or none — e.g. COUNT(*)), reuse the full
        closures over the raw stored rows (zero copies either way).
        """
        if stmt.joins or stmt.table is None or plan.columns is None:
            return None
        if stmt.where is not None and plan.where_fn is None:
            return None
        if plan.is_grouped:
            if plan.grouped is None:
                return None
        else:
            if plan.proj is None or (stmt.order_by and not plan.order_compiled):
                return None
        total = plan.layout.total_width
        if not used or len(used) >= total:
            return CompactPlan(
                None, plan.where_fn, plan.grouped, plan.proj, plan.order_specs
            )
        positions = tuple(sorted(used))
        remap = {p: i for i, p in enumerate(positions)}
        compact_resolution = {
            key: remap[pos]
            for key, pos in plan.layout.resolution.items()
            if pos in remap
        }
        where_fn = (
            compile_expr(stmt.where, compact_resolution)
            if stmt.where is not None else None
        )
        if plan.is_grouped:
            grouped = self._build_group_plan(
                stmt, plan.columns, plan.exprs, compact_resolution, None, remap
            )
            if grouped is None:
                return None
            return CompactPlan(positions, where_fn, grouped, None, None)
        proj, order_specs, order_ok = self._build_plain_plan(
            stmt, plan.columns, plan.exprs, compact_resolution, None, remap
        )
        if proj is None or not order_ok:
            return None
        return CompactPlan(positions, where_fn, None, proj, order_specs)

    def _build_vector(
        self, stmt: Select, plan: SelectPlan, used: set
    ) -> Optional[VectorPlan]:
        """Whole-column vectorized variant of the compact plan.

        Only built for columnar tables; every section must lower
        (``try_vcompile``) or no vector plan exists at all — unlike the
        row compiler there is no per-section mixing, because a vector
        run either completes or the executor re-runs the whole statement
        through the compact/row path.  GROUP BY stays on the compact
        path (per-group vectors don't pay); ungrouped aggregates become
        column sweeps.
        """
        table = self.database.table(stmt.table.name)
        if not getattr(table, "is_columnar", False):
            return None
        positions = tuple(sorted(used))
        remap = {p: i for i, p in enumerate(positions)}
        resolution = {
            key: remap[pos]
            for key, pos in plan.layout.resolution.items()
            if pos in remap
        }
        purities = [
            "text" if table.columns[p].affinity == "TEXT" else "num"
            for p in positions
        ]
        checked: set = set()
        where_fn = None
        where_pure = False
        if stmt.where is not None:
            out = try_vcompile(stmt.where, resolution, purities, checked)
            if out is None:
                return None
            where_fn, wpurity = out
            # A pure-numeric mask holds only int/float/None, so the
            # executor can filter with plain truth tests (no truthy()).
            where_pure = wpurity in ("num", "null")

        if plan.is_grouped:
            if stmt.group_by:
                return None
            gp = self._build_group_plan(
                stmt, plan.columns, plan.exprs, resolution, None, remap
            )
            if gp is None:
                return None
            # Replicate _build_group_plan's aggregate-site walk so the
            # spec list aligns index-for-index with gp.acc_factories.
            early_alias_map = {
                (item.alias or "").lower(): item.expr
                for item in stmt.items if item.alias
            }
            having = (
                _substitute_aliases(stmt.having, early_alias_map)
                if stmt.having is not None else None
            )
            agg_nodes: list[FunctionCall] = []
            seen: set[int] = set()
            scan_targets: list[Expression] = [item.expr for item in stmt.items]
            if having is not None:
                scan_targets.append(having)
            for order in stmt.order_by:
                scan_targets.append(order.expr)
            for target in scan_targets:
                for node in walk(target):
                    if is_aggregate_call(node) and id(node) not in seen:
                        seen.add(id(node))
                        agg_nodes.append(node)
            aggs: list[tuple[str, bool, bool, Any]] = []
            for node in agg_nodes:
                star = not node.args or isinstance(node.args[0], Star)
                argvec = None
                if not star:
                    out = try_vcompile(
                        node.args[0], resolution, purities, checked
                    )
                    if out is None:
                        return None
                    argvec = out[0]
                aggs.append(
                    (node.name.upper(), star, bool(node.distinct), argvec)
                )
            return VectorPlan(
                positions=positions,
                checked=tuple(sorted(positions[c] for c in checked)),
                where_fn=where_fn, where_pure=where_pure,
                kind="agg", aggs=aggs, grouped=gp,
            )

        items: list[Any] = []
        for e in plan.exprs:
            if isinstance(e, int):
                items.append(remap[e])
            else:
                out = try_vcompile(e, resolution, purities, checked)
                if out is None:
                    return None
                items.append(out[0])
        order: Optional[list[tuple[Any, bool]]] = None
        if stmt.order_by:
            alias_map = {
                (item.alias or "").lower(): item.expr
                for item in stmt.items if item.alias
            }
            lowered = [c.lower() for c in plan.columns]
            dummy_values = tuple(plan.columns)
            order = []
            for o in stmt.order_by:
                try:
                    resolved = _resolve_order_expr(
                        o.expr, alias_map, dummy_values, plan.columns
                    )
                except ProgrammingError:
                    return None
                if isinstance(resolved, int):
                    order.append((resolved, bool(o.descending)))
                    continue
                out = try_vcompile(resolved, resolution, purities, checked)
                if out is None:
                    # Same bare-name fallback as _build_plain_plan.
                    if (
                        isinstance(resolved, ColumnRef)
                        and resolved.name.lower() in lowered
                    ):
                        order.append(
                            (lowered.index(resolved.name.lower()),
                             bool(o.descending))
                        )
                        continue
                    return None
                order.append((out[0], bool(o.descending)))
        return VectorPlan(
            positions=positions,
            checked=tuple(sorted(positions[c] for c in checked)),
            where_fn=where_fn, where_pure=where_pure,
            kind="plain", items=items, order=order,
        )

    def _vector_select(
        self, stmt: Select, plan: SelectPlan, table: Table,
        params: Sequence[Any],
    ) -> Optional[tuple[list[str], list[tuple[Any, ...]]]]:
        """Run the vector plan, or None to fall back (atomic contract:
        impure column, empty relation, or any mid-flight error routes the
        whole statement to the compact/row path, which reproduces errors
        with canonical per-row semantics)."""
        vp = plan.vector
        n = table.live_count
        if n == 0:
            return None
        for p in vp.checked:
            if not table.column_pure(p):
                return None
        cols = [table.column_values(p) for p in vp.positions]
        sel: Optional[list[int]] = None  # None = every row selected
        if vp.where_fn is not None:
            mask = vp.where_fn(cols, n, params)
            if type(mask) is _VS:
                if not truthy(mask.value):
                    sel = []
            elif vp.where_pure:
                if not all(mask):
                    sel = [i for i, v in enumerate(mask) if v]
            else:
                sel = [i for i, v in enumerate(mask) if truthy(v)]
        if plan.is_grouped:
            return self._vector_agg(plan, vp, cols, n, sel, params)
        return self._vector_plain(stmt, plan, vp, cols, n, sel, params)

    def _vector_plain(
        self, stmt: Select, plan: SelectPlan, vp: VectorPlan,
        cols: list, n: int, sel: Optional[list[int]],
        params: Sequence[Any],
    ) -> tuple[list[str], list[tuple[Any, ...]]]:
        n_sel = n if sel is None else len(sel)
        out_cols: list[list[Any]] = []
        for e in vp.items:
            if type(e) is int:
                full = cols[e]
            else:
                V = e(cols, n, params)
                if type(V) is _VS:
                    out_cols.append([V.value] * n_sel)
                    continue
                full = V
            out_cols.append(full if sel is None else [full[i] for i in sel])
        projected = list(zip(*out_cols))
        needs_order = (
            vp.order is not None and stmt.compound is None and n_sel
        )
        if needs_order:
            key_cols: list[list[Any]] = []
            for spec, descending in vp.order:
                if type(spec) is int:
                    vals = out_cols[spec]
                else:
                    V = spec(cols, n, params)
                    if type(V) is _VS:
                        vals = [V.value] * n_sel
                    else:
                        vals = V if sel is None else [V[i] for i in sel]
                if descending:
                    key_cols.append([_Reversor(sort_key(v)) for v in vals])
                else:
                    key_cols.append([sort_key(v) for v in vals])
            paired = sorted(
                zip(zip(*key_cols), range(n_sel)), key=lambda p: p[0]
            )
            projected = [projected[i] for _, i in paired]
        return plan.columns, projected

    def _vector_agg(
        self, plan: SelectPlan, vp: VectorPlan, cols: list, n: int,
        sel: Optional[list[int]], params: Sequence[Any],
    ) -> tuple[list[str], list[tuple[Any, ...]]]:
        """Ungrouped aggregates as column sweeps.

        The big five (COUNT/SUM/AVG/MIN/MAX, non-DISTINCT) run as C-speed
        builtins over the selected values — each proven equivalent to its
        accumulator's step/finalize sequence; everything else feeds the
        row accumulator from the vectorized argument column.  HAVING and
        the projection reuse the PR 5 closures over the one representative
        row, exactly like _grouped_select_compiled's single-group tail.
        """
        gp = vp.grouped
        n_sel = n if sel is None else len(sel)
        aggs: list[Any] = []
        for (name, star, distinct, argvec), factory in zip(
            vp.aggs, gp.acc_factories
        ):
            if star:
                if name == "COUNT" and not distinct:
                    aggs.append(n_sel)
                else:
                    acc = factory()
                    for _ in range(n_sel):
                        acc.step(1)
                    aggs.append(acc.finalize())
                continue
            V = argvec(cols, n, params)
            if type(V) is _VS:
                vals = [V.value] * n_sel
            else:
                vals = V if sel is None else [V[i] for i in sel]
            if distinct:
                acc = factory()
                for v in vals:
                    acc.step(v)
                aggs.append(acc.finalize())
            elif name == "COUNT":
                aggs.append(sum(1 for v in vals if v is not None))
            elif name == "SUM":
                nn = [v for v in vals if v is not None]
                aggs.append(sum(nn) if nn else None)
            elif name == "AVG":
                nn = [float(v) for v in vals if v is not None]
                aggs.append(sum(nn) / len(nn) if nn else None)
            elif name == "MIN":
                nn = [v for v in vals if v is not None]
                aggs.append(min(nn) if nn else None)
            elif name == "MAX":
                nn = [v for v in vals if v is not None]
                aggs.append(max(nn) if nn else None)
            elif name == "TOTAL":
                aggs.append(
                    sum((float(v) for v in vals if v is not None), 0.0)
                )
            else:  # STDDEV / VARIANCE / GROUP_CONCAT / future
                acc = factory()
                for v in vals:
                    acc.step(v)
                aggs.append(acc.finalize())
        if n_sel:
            first = 0 if sel is None else sel[0]
            rep: Sequence[Any] = [c[first] for c in cols]
        else:
            rep = [None] * len(vp.positions)
        results: list[tuple[Any, ...]] = []
        if gp.having_fn is None or truthy(gp.having_fn(rep, params, aggs)):
            values = tuple(
                rep[e] if type(e) is int else e(rep, params, aggs)
                for e in gp.item_slots
            )
            if gp.order_specs is not None:
                # Sorting one row is the identity, but the key closures
                # must still run: an erroring ORDER BY expression has to
                # trigger the fallback, not silently succeed here.
                for spec, _descending in gp.order_specs:
                    sort_key(
                        values[spec] if type(spec) is int
                        else spec(rep, params, aggs)
                    )
            results.append(values)
        return plan.columns, results

    def _compact_select(
        self, stmt: Select, plan: SelectPlan, params: Sequence[Any]
    ) -> Optional[tuple[list[str], list[tuple[Any, ...]]]]:
        """Batched scan → filter → project/aggregate over compacted rows.

        Only runs when the access planner picks a full scan (index paths
        keep the row-at-a-time pipeline, which they dominate anyway);
        returns None to route back there.
        """
        table = self.database.table(stmt.table.name)
        conjuncts = _conjuncts(stmt.where)
        order_by = stmt.order_by if _can_push_order(stmt) else []
        access = _plan_access(
            table, stmt.table.effective_name, conjuncts, order_by, params,
            _select_alias_names(stmt),
        )
        if access.kind != "scan":
            return None
        compact = plan.compact
        stats = self.database.stats
        stats["full_scans"] += 1
        stats["rows_scanned"] += len(table)
        if plan.vector is not None and getattr(table, "is_columnar", False):
            try:
                vector_result = self._vector_select(stmt, plan, table, params)
            except Exception:
                # Atomic-or-fallback: whatever went wrong (type surprise,
                # missing parameter, overflow), the compact path below
                # replays the statement with canonical row semantics and
                # raises — or succeeds — exactly as the row engine would.
                vector_result = None
            if vector_result is not None:
                stats["vector_selects"] += 1
                _VECTOR_SELECTS.inc()
                return vector_result
            stats["vector_fallbacks"] += 1
            _VECTOR_FALLBACKS.inc()
        where_fn = compact.where_fn
        batches = table.scan_batches(positions=compact.positions)

        if plan.is_grouped:
            def filtered() -> Iterator[Sequence[Any]]:
                if where_fn is None:
                    for chunk in batches:
                        yield from chunk
                else:
                    for chunk in batches:
                        for row in chunk:
                            if truthy(where_fn(row, params, None)):
                                yield row
            width = (
                len(compact.positions)
                if compact.positions is not None else plan.layout.total_width
            )
            return self._grouped_select_compiled(
                stmt, plan.columns, compact.grouped, width, filtered(), params
            )

        proj = compact.proj
        needs_order = bool(stmt.order_by) and stmt.compound is None
        order_specs = compact.order_specs if needs_order else None
        projected: list[tuple[Any, ...]] = []
        order_keys: list[tuple] = []
        for chunk in batches:
            if where_fn is not None:
                chunk = [r for r in chunk if truthy(where_fn(r, params, None))]
            for row in chunk:
                values = tuple(
                    row[e] if type(e) is int else e(row, params, None)
                    for e in proj
                )
                if order_specs is not None:
                    key = []
                    for spec, descending in order_specs:
                        value = (
                            values[spec] if type(spec) is int
                            else spec(row, params, None)
                        )
                        k = sort_key(value)
                        key.append(_Reversor(k) if descending else k)
                    order_keys.append(tuple(key))
                projected.append(values)
        if order_specs is not None:
            paired = sorted(
                zip(order_keys, range(len(projected))), key=lambda p: p[0]
            )
            projected = [projected[i] for _, i in paired]
        return plan.columns, projected

    def _plain_select_compiled(
        self,
        stmt: Select,
        columns: list[str],
        proj: list[Any],
        order_specs: Optional[list[tuple[Any, bool]]],
        raw_rows: Iterator[list[Any]],
        params: Sequence[Any],
        presorted: bool = False,
    ) -> tuple[list[str], list[tuple[Any, ...]]]:
        """_plain_select with every per-row evaluation pre-compiled."""
        needs_order = bool(stmt.order_by) and stmt.compound is None and not presorted
        row_cap = None
        if presorted and stmt.limit is not None:
            limit = evaluate(stmt.limit, None, params)
            if limit is not None and int(limit) >= 0:
                offset = (
                    evaluate(stmt.offset, None, params)
                    if stmt.offset is not None else 0
                )
                row_cap = int(limit) + int(offset or 0)
        specs = order_specs if needs_order else None
        projected: list[tuple[Any, ...]] = []
        order_keys: list[tuple] = []
        for row in raw_rows:
            values = tuple(
                row[e] if type(e) is int else e(row, params, None)
                for e in proj
            )
            if specs is not None:
                key = []
                for spec, descending in specs:
                    value = (
                        values[spec] if type(spec) is int
                        else spec(row, params, None)
                    )
                    k = sort_key(value)
                    key.append(_Reversor(k) if descending else k)
                order_keys.append(tuple(key))
            projected.append(values)
            if row_cap is not None and len(projected) >= row_cap:
                break
        if specs is not None:
            paired = sorted(
                zip(order_keys, range(len(projected))), key=lambda p: p[0]
            )
            projected = [projected[i] for _, i in paired]
        return columns, projected

    def _grouped_select_compiled(
        self,
        stmt: Select,
        columns: list[str],
        gp: GroupPlan,
        width: int,
        raw_rows: Iterator[Sequence[Any]],
        params: Sequence[Any],
    ) -> tuple[list[str], list[tuple[Any, ...]]]:
        """_grouped_select with group keys, aggregate arguments, HAVING
        and post-aggregation projection pre-compiled."""
        group_fns = gp.group_fns
        arg_fns = gp.arg_fns
        factories = gp.acc_factories
        groups: dict[tuple, tuple[Sequence[Any], list[Any]]] = {}
        group_order: list[tuple] = []
        for row in raw_rows:
            if group_fns:
                key = tuple(_hashable(g(row, params, None)) for g in group_fns)
            else:
                key = ()
            group = groups.get(key)
            if group is None:
                group = (row, [f() for f in factories])
                groups[key] = group
                group_order.append(key)
            for fn, acc in zip(arg_fns, group[1]):
                acc.step(fn(row, params, None) if fn is not None else 1)

        if not groups and not stmt.group_by:
            # Aggregates over an empty relation still return one row.
            groups[()] = ([None] * width, [f() for f in factories])
            group_order.append(())

        having_fn = gp.having_fn
        item_slots = gp.item_slots
        results: list[tuple[Any, ...]] = []
        order_keys: list[tuple] = []
        for key in group_order:
            rep, accumulators = groups[key]
            aggs = [acc.finalize() for acc in accumulators]
            if having_fn is not None and not truthy(having_fn(rep, params, aggs)):
                continue
            values = tuple(
                rep[e] if type(e) is int else e(rep, params, aggs)
                for e in item_slots
            )
            if gp.order_specs is not None:
                order_key = []
                for spec, descending in gp.order_specs:
                    value = (
                        values[spec] if type(spec) is int
                        else spec(rep, params, aggs)
                    )
                    k = sort_key(value)
                    order_key.append(_Reversor(k) if descending else k)
                order_keys.append(tuple(order_key))
            results.append(values)
        if gp.order_specs is not None:
            paired = sorted(
                zip(order_keys, range(len(results))), key=lambda p: p[0]
            )
            results = [results[i] for _, i in paired]
        return columns, results

    def _compiled_dml(
        self, stmt: Statement, table: Table, is_update: bool
    ) -> Optional[DMLPlan]:
        """Plan cache for UPDATE/DELETE WHERE and SET closures."""
        database = self.database
        if not database.compile_enabled:
            return None
        plan = getattr(stmt, "_msql_plan", None)
        if plan is not None and plan.schema_version == database.schema_version:
            database.stats["plan_cache_hits"] += 1
            _PLAN_HITS.inc()
            return plan
        t0 = time.perf_counter()
        resolution = _single_table_context(table).columns
        fallbacks = 0
        where_fn = None
        if stmt.where is not None:
            where_fn = try_compile(stmt.where, resolution)
            if where_fn is None:
                fallbacks += 1
        assign_fns: Optional[list[tuple[int, Any]]] = None
        if is_update:
            assign_fns = []
            for name, expr in stmt.assignments:
                fn = try_compile(expr, resolution)
                if fn is None:
                    assign_fns = None
                    fallbacks += 1
                    break
                assign_fns.append((table.position_of(name), fn))
        plan = DMLPlan(database.schema_version, where_fn, assign_fns, fallbacks)
        _COMPILE_SECONDS.observe(time.perf_counter() - t0)
        database.stats["plan_cache_misses"] += 1
        _PLAN_MISSES.inc()
        stmt._msql_plan = plan
        return plan


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


@dataclass
class _Group:
    representative: list[Any]
    accumulators: list[Any]


class _DistinctWrapper:
    """Wraps an aggregate so it only sees distinct values."""

    def __init__(self, inner):
        self.inner = inner
        self.seen: set[Any] = set()

    def step(self, value: Any) -> None:
        if value is None:
            self.inner.step(value)
            return
        marker = _hashable(value)
        if marker in self.seen:
            return
        self.seen.add(marker)
        self.inner.step(value)

    def finalize(self) -> Any:
        return self.inner.finalize()


def _make_distinct(node: FunctionCall):
    return _DistinctWrapper(make_aggregate(node.name))


class _Reversor:
    """Inverts comparison for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversor") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversor) and other.value == self.value


class _AggregateEvaluator:
    """Evaluates expressions where aggregate sub-trees are precomputed."""

    def __init__(self, context, params, agg_index: dict[int, int], agg_values: list[Any]):
        self.context = context
        self.params = params
        self.agg_index = agg_index
        self.agg_values = agg_values

    def eval(self, expr: Expression) -> Any:
        rewritten = self._rewrite(expr)
        return evaluate(rewritten, self.context, self.params)

    def _rewrite(self, expr: Expression) -> Expression:
        index = self.agg_index.get(id(expr))
        if index is not None:
            return Literal(self.agg_values[index])
        # Shallow-copy nodes with rewritten children.
        import copy
        from . import ast_nodes as n

        if isinstance(expr, n.BinaryOp):
            return n.BinaryOp(expr.op, self._rewrite(expr.left), self._rewrite(expr.right))
        if isinstance(expr, n.UnaryOp):
            return n.UnaryOp(expr.op, self._rewrite(expr.operand))
        if isinstance(expr, n.IsNull):
            return n.IsNull(self._rewrite(expr.operand), expr.negated)
        if isinstance(expr, n.InList):
            return n.InList(
                self._rewrite(expr.operand),
                [self._rewrite(i) for i in expr.items],
                expr.negated,
            )
        if isinstance(expr, n.Between):
            return n.Between(
                self._rewrite(expr.operand), self._rewrite(expr.low),
                self._rewrite(expr.high), expr.negated,
            )
        if isinstance(expr, n.Like):
            return n.Like(
                self._rewrite(expr.operand), self._rewrite(expr.pattern), expr.negated
            )
        if isinstance(expr, n.FunctionCall):
            if is_aggregate(expr.name):
                # aggregate not in index — e.g. nested aggregates
                raise ProgrammingError(
                    f"misuse of aggregate function {expr.name}()"
                )
            return n.FunctionCall(
                expr.name, [self._rewrite(a) for a in expr.args], expr.distinct
            )
        if isinstance(expr, n.CaseExpr):
            return n.CaseExpr(
                self._rewrite(expr.operand) if expr.operand else None,
                [(self._rewrite(c), self._rewrite(r)) for c, r in expr.whens],
                self._rewrite(expr.default) if expr.default else None,
            )
        if isinstance(expr, n.CastExpr):
            return n.CastExpr(self._rewrite(expr.operand), expr.target_type)
        return expr


class _Layout:
    """Column layout of the joined row and name-resolution tables."""

    def __init__(self) -> None:
        self.resolution: dict[str, int] = {}
        self.ambiguous: set[str] = set()
        self.total_width = 0
        self.table_spans: list[tuple[str, int, int, Table]] = []  # alias, start, end

    @classmethod
    def build(cls, database: Database, stmt: Select) -> "_Layout":
        layout = cls()
        assert stmt.table is not None
        refs: list[TableRef] = [stmt.table] + [j.table for j in stmt.joins]
        seen_aliases: set[str] = set()
        offset = 0
        for ref in refs:
            table = database.table(ref.name)
            alias = ref.effective_name.lower()
            if alias in seen_aliases:
                raise ProgrammingError(f"duplicate table name or alias: {alias}")
            seen_aliases.add(alias)
            layout.table_spans.append((alias, offset, offset + len(table.columns), table))
            for i, column in enumerate(table.columns):
                position = offset + i
                layout.resolution[f"{alias}.{column.lower_name}"] = position
                bare = column.lower_name
                if bare in layout.resolution and bare not in layout.ambiguous:
                    layout.ambiguous.add(bare)
                    del layout.resolution[bare]
                elif bare not in layout.ambiguous:
                    layout.resolution[bare] = position
            offset += len(table.columns)
        layout.total_width = offset
        layout.ambiguous = frozenset(layout.ambiguous)  # type: ignore[assignment]
        return layout

    def span_for(self, alias: Optional[str]) -> tuple[int, int]:
        if alias is None:
            return (0, self.total_width)
        wanted = alias.lower()
        for name, start, end, _table in self.table_spans:
            if name == wanted:
                return (start, end)
        raise ProgrammingError(f"no such table: {alias}")

    def column_names_for_span(self, start: int, end: int) -> list[str]:
        names: list[str] = []
        for alias, s, e, table in self.table_spans:
            for i, column in enumerate(table.columns):
                position = s + i
                if start <= position < end:
                    names.append(column.name)
        return names


def _expand_items(
    items: list[SelectItem], layout: _Layout
) -> tuple[list[str], list[Any]]:
    """Expand ``*`` and return (column names, per-column position-or-expr)."""
    columns: list[str] = []
    exprs: list[Any] = []  # int position for star columns, Expression otherwise
    for item in items:
        if isinstance(item.expr, Star):
            start, end = layout.span_for(item.expr.table)
            names = layout.column_names_for_span(start, end)
            for position, name in zip(range(start, end), names):
                columns.append(name)
                exprs.append(position)
        else:
            columns.append(item.alias or ref_name(item.expr))
            exprs.append(item.expr)
    return columns, exprs


def _single_table_context(table: Table, alias: Optional[str] = None) -> RowContext:
    mapping: dict[str, int] = {}
    names = (alias or table.name).lower()
    for i, column in enumerate(table.columns):
        mapping[column.lower_name] = i
        mapping[f"{names}.{column.lower_name}"] = i
        mapping[f"{table.name.lower()}.{column.lower_name}"] = i
    return RowContext(mapping)


def _conjuncts(expr: Optional[Expression]) -> list[Expression]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


@dataclass
class _AccessPlan:
    """One chosen base-table access path.

    ``kind`` is ``"scan"`` (every row), ``"eq"`` (hash-index probe on
    ``key``), or ``"range"`` (ordered-index walk: equality on the
    leading ``prefix`` columns, ``lo``/``hi`` bounds on the next one).
    ``ordered`` marks that rows already satisfy the statement's ORDER BY
    so the sort — and with a LIMIT, most of the scan — can be skipped.
    """

    kind: str
    index: Optional[Index] = None
    key: tuple = ()
    prefix: tuple = ()
    lo: Optional[tuple[Any, bool]] = None
    hi: Optional[tuple[Any, bool]] = None
    descending: bool = False
    include_null: bool = False
    ordered: bool = False

    def describe(self, table: Table) -> str:
        if self.kind == "eq":
            assert self.index is not None
            return (
                f"SEARCH {table.name} USING INDEX {self.index.name} "
                f"({', '.join(self.index.column_names)}=?)"
            )
        if self.kind == "range":
            assert self.index is not None
            names = self.index.column_names
            parts = [f"{names[i]}=?" for i in range(len(self.prefix))]
            if self.lo is not None or self.hi is not None:
                bounded = names[len(self.prefix)]
                if (
                    self.lo is not None and self.hi is not None
                    and self.lo[1] and self.hi[1]
                ):
                    parts.append(f"{bounded} BETWEEN ? AND ?")
                else:
                    if self.lo is not None:
                        parts.append(f"{bounded}>{'=' if self.lo[1] else ''}?")
                    if self.hi is not None:
                        parts.append(f"{bounded}<{'=' if self.hi[1] else ''}?")
            detail = ", ".join(parts) if parts else "ORDER BY pushdown"
            return (
                f"SEARCH {table.name} USING ORDERED INDEX "
                f"{self.index.name} ({detail})"
            )
        return f"SCAN {table.name}"


def _can_push_order(stmt: Select) -> bool:
    """ORDER BY may stream from an ordered index only for plain
    single-table selects: joins reorder rows, grouping/distinct/compound
    materialise, and each sorts (or re-orders) on its own."""
    if not stmt.order_by or stmt.joins or stmt.compound is not None:
        return False
    if stmt.distinct or stmt.group_by or stmt.having is not None:
        return False
    return not any(contains_aggregate(item.expr) for item in stmt.items)


def _select_alias_names(stmt: Select) -> frozenset[str]:
    return frozenset(
        item.alias.lower() for item in stmt.items if item.alias
    )


def _pinned_eq(
    table: Table,
    alias: str,
    conjuncts: list[Expression],
    params: Sequence[Any],
) -> dict[str, Any]:
    """Columns pinned by a ``col = constant`` conjunct, with values."""
    pinned: dict[str, Any] = {}
    alias_lower = alias.lower()
    table_lower = table.name.lower()
    for conjunct in conjuncts:
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            continue
        for col_side, const_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(col_side, ColumnRef):
                continue
            if col_side.table is not None and col_side.table.lower() not in (
                alias_lower, table_lower,
            ):
                continue
            if not isinstance(const_side, (Literal, Placeholder)):
                continue
            if not table.has_column(col_side.name):
                continue
            value = evaluate(const_side, None, params)
            if value is None:
                continue
            pinned[col_side.name.lower()] = value
            break
    return pinned


_NORMALISED_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _tighter_lo(a: tuple[Any, bool], b: tuple[Any, bool]) -> bool:
    ka, kb = sort_key(a[0]), sort_key(b[0])
    if ka != kb:
        return ka > kb
    return b[1] and not a[1]


def _tighter_hi(a: tuple[Any, bool], b: tuple[Any, bool]) -> bool:
    ka, kb = sort_key(a[0]), sort_key(b[0])
    if ka != kb:
        return ka < kb
    return b[1] and not a[1]


def _range_bounds(
    table: Table,
    alias: str,
    conjuncts: list[Expression],
    params: Sequence[Any],
) -> dict[str, list[Optional[tuple[Any, bool]]]]:
    """Columns bounded by ``<``/``<=``/``>``/``>=``/``BETWEEN`` against a
    constant, as ``name -> [lo, hi]`` with ``(value, inclusive)`` bounds.

    Bounds only *narrow* the scan; WHERE is re-applied in full afterwards,
    so collecting a subset (or a looser bound) is always safe.
    """
    alias_lower = alias.lower()
    table_lower = table.name.lower()

    def column_of(expr: Expression) -> Optional[str]:
        if not isinstance(expr, ColumnRef):
            return None
        if expr.table is not None and expr.table.lower() not in (
            alias_lower, table_lower,
        ):
            return None
        if not table.has_column(expr.name):
            return None
        return expr.name.lower()

    def constant_of(expr: Expression) -> Any:
        if not isinstance(expr, (Literal, Placeholder)):
            return None
        return evaluate(expr, None, params)

    bounds: dict[str, list[Optional[tuple[Any, bool]]]] = {}

    def add(name: str, lo: Optional[tuple[Any, bool]],
            hi: Optional[tuple[Any, bool]]) -> None:
        entry = bounds.setdefault(name, [None, None])
        if lo is not None and (entry[0] is None or _tighter_lo(lo, entry[0])):
            entry[0] = lo
        if hi is not None and (entry[1] is None or _tighter_hi(hi, entry[1])):
            entry[1] = hi

    for conjunct in conjuncts:
        if isinstance(conjunct, BinaryOp) and conjunct.op in _NORMALISED_OP:
            op = conjunct.op
            name = column_of(conjunct.left)
            const_expr = conjunct.right
            if name is None:
                name = column_of(conjunct.right)
                if name is None:
                    continue
                const_expr = conjunct.left
                op = _NORMALISED_OP[op]  # "3 < col" means "col > 3"
            value = constant_of(const_expr)
            if value is None:
                continue  # comparisons against NULL match nothing anyway
            if op in (">", ">="):
                add(name, (value, op == ">="), None)
            else:
                add(name, None, (value, op == "<="))
        elif isinstance(conjunct, Between) and not conjunct.negated:
            name = column_of(conjunct.operand)
            if name is None:
                continue
            low = constant_of(conjunct.low)
            high = constant_of(conjunct.high)
            if low is None or high is None:
                continue
            add(name, (low, True), (high, True))
    return bounds


def _order_match(
    order_by: list[OrderItem],
    index: Index,
    start: int,
    alias: str,
    table: Table,
    pinned: dict[str, Any],
    alias_names: frozenset[str],
) -> tuple[bool, bool]:
    """Does walking ``index`` from column ``start`` (leading columns held
    equal) yield rows in ORDER BY order?  Returns (matched, descending).

    Equality-pinned columns are constant across matching rows, so they
    satisfy any position and direction.  Select-list aliases may shadow a
    column name with an arbitrary expression — those always bail.
    """
    if not order_by:
        return False, False
    names = [n.lower() for n in index.column_names]
    alias_lower = alias.lower()
    table_lower = table.name.lower()
    position = start
    direction: Optional[bool] = None
    for item in order_by:
        expr = item.expr
        if not isinstance(expr, ColumnRef):
            return False, False
        name = expr.name.lower()
        if expr.table is None and name in alias_names:
            return False, False
        if expr.table is not None and expr.table.lower() not in (
            alias_lower, table_lower,
        ):
            return False, False
        if not table.has_column(name):
            return False, False
        if name in pinned:
            continue
        if position >= len(names) or names[position] != name:
            return False, False
        if direction is None:
            direction = bool(item.descending)
        elif bool(item.descending) != direction:
            return False, False
        position += 1
    return True, bool(direction)


def _plan_access(
    table: Table,
    alias: str,
    conjuncts: list[Expression],
    order_by: list[OrderItem],
    params: Sequence[Any],
    alias_names: frozenset[str] = frozenset(),
) -> _AccessPlan:
    """Choose the base-table access path.

    Selection rules, in order:

    1. a hash (or ordered) index whose *every* column is pinned by an
       equality conjunct — exact probe, longest key wins;
    2. an ordered index with the longest equality-pinned leading prefix,
       optionally bounded on the following column by range conjuncts;
       ties prefer more bounds, then ORDER BY satisfaction;
    3. an ordered index whose column order satisfies ORDER BY (pure
       pushdown: with a LIMIT the scan stops after limit+offset rows);
    4. full table scan.
    """
    if not table.indexes:
        return _AccessPlan("scan")
    pinned = _pinned_eq(table, alias, conjuncts, params)

    best_eq: Optional[Index] = None
    if pinned:
        for index in table.indexes.values():
            if index.stale:
                continue  # suspended by a bulk load; contents unreliable
            names = [n.lower() for n in index.column_names]
            if all(n in pinned for n in names):
                if best_eq is None or len(names) > len(best_eq.column_names):
                    best_eq = index
    if best_eq is not None:
        key = tuple(pinned[n.lower()] for n in best_eq.column_names)
        return _AccessPlan("eq", index=best_eq, key=key)

    ranges = _range_bounds(table, alias, conjuncts, params)
    best: Optional[tuple[tuple[int, int, int], _AccessPlan]] = None
    for index in table.indexes.values():
        if not isinstance(index, SortedIndex) or index.stale:
            continue
        names = [n.lower() for n in index.column_names]
        prefix_len = 0
        while prefix_len < len(names) and names[prefix_len] in pinned:
            prefix_len += 1
        lo = hi = None
        if prefix_len < len(names) and names[prefix_len] in ranges:
            lo, hi = ranges[names[prefix_len]]
        if prefix_len == 0 and lo is None and hi is None:
            continue
        ordered, descending = _order_match(
            order_by, index, prefix_len, alias, table, pinned, alias_names
        )
        score = (
            prefix_len,
            int(lo is not None) + int(hi is not None),
            int(ordered),
        )
        plan = _AccessPlan(
            "range",
            index=index,
            prefix=tuple(pinned[n] for n in names[:prefix_len]),
            lo=lo,
            hi=hi,
            descending=descending,
            include_null=lo is None and hi is None,
            ordered=ordered,
        )
        if best is None or score > best[0]:
            best = (score, plan)
    if best is not None:
        return best[1]

    for index in table.indexes.values():
        if not isinstance(index, SortedIndex) or index.stale:
            continue
        ordered, descending = _order_match(
            order_by, index, 0, alias, table, pinned, alias_names
        )
        if ordered:
            return _AccessPlan(
                "range", index=index, descending=descending,
                include_null=True, ordered=True,
            )
    return _AccessPlan("scan")


def _find_equi_key(
    condition: Expression, layout: _Layout, inner_offset: int, inner_width: int
) -> Optional[tuple[Expression, Expression]]:
    """Find ``left_expr = inner_expr`` usable for a hash join.

    Returns (probe expression over already-joined columns, build expression
    over the inner table's own columns) or None.
    """
    inner_span = range(inner_offset, inner_offset + inner_width)
    inner_aliases = {
        alias for alias, start, end, _t in layout.table_spans
        if start == inner_offset
    }

    for conjunct in _conjuncts(condition):
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            continue
        sides = [conjunct.left, conjunct.right]
        side_info = []
        for side in sides:
            refs = column_refs(side)
            if not refs:
                side_info.append("const")
                continue
            positions = []
            resolvable = True
            for ref in refs:
                key = ref.qualified.lower()
                if key in layout.resolution:
                    positions.append(layout.resolution[key])
                else:
                    resolvable = False
                    break
            if not resolvable:
                side_info.append("unknown")
                continue
            if all(p in inner_span for p in positions):
                side_info.append("inner")
            elif all(p not in inner_span for p in positions):
                side_info.append("outer")
            else:
                side_info.append("mixed")
        if set(side_info) == {"inner", "outer"}:
            if side_info[0] == "outer":
                outer_expr, inner_expr = conjunct.left, conjunct.right
            else:
                outer_expr, inner_expr = conjunct.right, conjunct.left
            # Rewrite the inner expression so it evaluates against the inner
            # table standalone: strip qualified refs down to bare names.
            inner_rewritten = _strip_qualifiers(inner_expr)
            return outer_expr, inner_rewritten
    return None


def _strip_qualifiers(expr: Expression) -> Expression:
    from . import ast_nodes as n
    if isinstance(expr, ColumnRef):
        return n.ColumnRef(name=expr.name, table=None)
    if isinstance(expr, n.BinaryOp):
        return n.BinaryOp(expr.op, _strip_qualifiers(expr.left), _strip_qualifiers(expr.right))
    if isinstance(expr, n.UnaryOp):
        return n.UnaryOp(expr.op, _strip_qualifiers(expr.operand))
    if isinstance(expr, n.FunctionCall):
        return n.FunctionCall(expr.name, [_strip_qualifiers(a) for a in expr.args], expr.distinct)
    if isinstance(expr, n.CastExpr):
        return n.CastExpr(_strip_qualifiers(expr.operand), expr.target_type)
    return expr


def _hashable(value: Any) -> Any:
    return value if not isinstance(value, (list, dict, set)) else repr(value)


def _distinct(rows: Iterable[tuple[Any, ...]]) -> list[tuple[Any, ...]]:
    seen: set[tuple[Any, ...]] = set()
    out: list[tuple[Any, ...]] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _apply_compound(
    op: str, left: list[tuple[Any, ...]], right: list[tuple[Any, ...]]
) -> list[tuple[Any, ...]]:
    if op == "UNION ALL":
        return list(left) + list(right)
    if op == "UNION":
        return _distinct(list(left) + list(right))
    if op == "EXCEPT":
        right_set = set(right)
        return [row for row in _distinct(left) if row not in right_set]
    if op == "INTERSECT":
        right_set = set(right)
        return [row for row in _distinct(left) if row in right_set]
    raise NotSupportedError(f"unsupported compound operator {op}")


def _copy_select_with_where(stmt: Select, where: Optional[Expression]) -> Select:
    """Shallow copy of a Select with a different WHERE (cached statements
    must never be mutated)."""
    import copy

    clone = copy.copy(stmt)
    clone.where = where
    # The copied __dict__ may carry the original's compiled plan, whose
    # where_fn was built for the *old* WHERE — never reuse it.
    clone.__dict__.pop("_msql_plan", None)
    return clone


def _substitute_aliases(
    expr: Expression, alias_map: dict[str, Expression]
) -> Expression:
    """Replace bare column refs naming select aliases with their expression.

    Substitution is *by reference* so aggregate nodes inside the aliased
    expression keep their identity and hit the precomputed value table.
    """
    from . import ast_nodes as n

    if isinstance(expr, ColumnRef) and expr.table is None:
        replacement = alias_map.get(expr.name.lower())
        if replacement is not None:
            return replacement
        return expr
    if isinstance(expr, n.BinaryOp):
        return n.BinaryOp(
            expr.op,
            _substitute_aliases(expr.left, alias_map),
            _substitute_aliases(expr.right, alias_map),
        )
    if isinstance(expr, n.UnaryOp):
        return n.UnaryOp(expr.op, _substitute_aliases(expr.operand, alias_map))
    if isinstance(expr, n.IsNull):
        return n.IsNull(_substitute_aliases(expr.operand, alias_map), expr.negated)
    if isinstance(expr, n.InList):
        return n.InList(
            _substitute_aliases(expr.operand, alias_map),
            [_substitute_aliases(i, alias_map) for i in expr.items],
            expr.negated,
        )
    if isinstance(expr, n.Between):
        return n.Between(
            _substitute_aliases(expr.operand, alias_map),
            _substitute_aliases(expr.low, alias_map),
            _substitute_aliases(expr.high, alias_map),
            expr.negated,
        )
    if isinstance(expr, n.Like):
        return n.Like(
            _substitute_aliases(expr.operand, alias_map),
            _substitute_aliases(expr.pattern, alias_map),
            expr.negated,
        )
    return expr


def _resolve_group_expr(
    expr: Expression,
    alias_map: dict[str, Expression],
    items: list[SelectItem],
) -> Expression:
    """Resolve GROUP BY aliases and ordinals to their select expressions."""
    if isinstance(expr, Literal) and isinstance(expr.value, int):
        ordinal = expr.value
        if not 1 <= ordinal <= len(items):
            raise ProgrammingError(f"GROUP BY position {ordinal} out of range")
        return items[ordinal - 1].expr
    if isinstance(expr, ColumnRef) and expr.table is None:
        aliased = alias_map.get(expr.name.lower())
        if aliased is not None:
            return aliased
    return expr


def _resolve_order_expr(
    expr: Expression,
    alias_map: dict[str, Expression],
    values: tuple[Any, ...],
    columns: list[str],
) -> Any:
    """Resolve ORDER BY ordinals and select-list aliases.

    Returns an int (index into the projected row) or the expression itself.
    """
    if isinstance(expr, Literal) and isinstance(expr.value, int):
        ordinal = expr.value
        if not 1 <= ordinal <= len(values):
            raise ProgrammingError(f"ORDER BY position {ordinal} out of range")
        return ordinal - 1
    if isinstance(expr, ColumnRef) and expr.table is None:
        key = expr.name.lower()
        if key in alias_map:
            lowered = [c.lower() for c in columns]
            if key in lowered:
                return lowered.index(key)
            return alias_map[key]
    return expr


def _order_key_for_row(
    order_by: list[OrderItem],
    context: RowContext,
    params: Sequence[Any],
    alias_map: dict[str, Expression],
    values: tuple[Any, ...],
    columns: list[str],
) -> tuple:
    key = []
    for order in order_by:
        resolved = _resolve_order_expr(order.expr, alias_map, values, columns)
        if isinstance(resolved, int):
            value = values[resolved]
        else:
            try:
                value = evaluate(resolved, context, params)
            except ProgrammingError:
                # Fall back to a projected column with that name.
                if isinstance(resolved, ColumnRef):
                    lowered = [c.lower() for c in columns]
                    name = resolved.name.lower()
                    if name in lowered:
                        value = values[lowered.index(name)]
                    else:
                        raise
                else:
                    raise
        k = sort_key(value)
        key.append(_Reversor(k) if order.descending else k)
    return tuple(key)


def _order_projected(
    rows: list[tuple[Any, ...]],
    columns: list[str],
    order_by: list[OrderItem],
    params: Sequence[Any],
) -> list[tuple[Any, ...]]:
    """Order already-projected rows (compound selects, grouped selects)."""
    lowered = [c.lower() for c in columns]

    def key_fn(row: tuple[Any, ...]) -> tuple:
        key = []
        for order in order_by:
            expr = order.expr
            if isinstance(expr, Literal) and isinstance(expr.value, int):
                index = expr.value - 1
            elif isinstance(expr, ColumnRef) and expr.table is None and expr.name.lower() in lowered:
                index = lowered.index(expr.name.lower())
            else:
                raise ProgrammingError(
                    "ORDER BY on a compound SELECT must reference result "
                    "columns by name or position"
                )
            if not 0 <= index < len(row):
                raise ProgrammingError(f"ORDER BY position {index + 1} out of range")
            k = sort_key(row[index])
            key.append(_Reversor(k) if order.descending else k)
        return tuple(key)

    return sorted(rows, key=key_fn)


def _apply_limit(
    rows: list[tuple[Any, ...]], stmt: Select, params: Sequence[Any]
) -> list[tuple[Any, ...]]:
    if stmt.limit is None:
        return rows if isinstance(rows, list) else list(rows)
    limit = evaluate(stmt.limit, None, params)
    offset = evaluate(stmt.offset, None, params) if stmt.offset is not None else 0
    if limit is None:
        limit = -1
    limit = int(limit)
    offset = int(offset or 0)
    rows = rows if isinstance(rows, list) else list(rows)
    if limit < 0:
        return rows[offset:]
    return rows[offset : offset + limit]
