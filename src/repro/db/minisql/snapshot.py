"""MVCC snapshot reads for MiniSQL.

``PRAGMA snapshot_isolation(on)`` attaches a :class:`SnapshotManager`
to the database.  SELECT statements issued outside an explicit
transaction then execute against a *pinned snapshot*: an immutable
copy-on-write :class:`~repro.db.minisql.storage.Database` whose tables
are cloned from the last committed state.  Readers therefore never
block on the database writer lock — and, because they touch only the
snapshot, can never stall a writer either.

Copy-on-write granularity is one table, stamped with the PR 6/7
version machinery ``(schema_version, table.version)``:

* a snapshot refresh reuses the cached clone of every table whose
  version stamp is unchanged — only mutated tables are re-cloned;
* row-store tables clone as a shallow ``dict(rows)`` copy sharing the
  row lists themselves (safe: every mutation path *rebinds* a fresh
  list rather than poking the stored one);
* columnar tables clone their typed slabs wholesale
  (``array`` → ``array`` memcpy, NULL byte-maps, escape hatches) via
  :meth:`ColumnData.copy` — the cheap-COW path the columnar layout was
  built for.

Consistency protocol: a refresh briefly takes ``txn_lock`` so it can
only observe a committed state (MiniSQL keeps uncommitted changes in
the live tables, guarded by that lock).  When the lock is contended —
a writer is mid-transaction — and a previous snapshot exists, the
refresh is skipped and the previous snapshot is served instead
(bounded staleness; counted in ``snapshot_stale_serves``).  Only the
very first pin, with no snapshot to fall back on, waits for the lock.

Snapshot databases carry no secondary indexes: clones are scan-only,
which keeps refresh cost proportional to *changed* data instead of
paying index rebuilds.  Compiled plans are shared with the primary —
they are keyed by ``schema_version`` and resolve tables by name at row
production time, so a plan built on either side runs correctly on the
other as long as the schema generation matches (the snapshot copies
the primary's ``schema_version`` verbatim).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.obs.metrics import registry as _metrics

from .storage import Database, Table

_REFRESHES = _metrics.counter("minisql.snapshot.refreshes")
_CLONES = _metrics.counter("minisql.snapshot.table_clones")
_STALE_SERVES = _metrics.counter("minisql.snapshot.stale_serves")
_SELECTS = _metrics.counter("minisql.snapshot.selects")


def clone_table(table: Table) -> Table:
    """Copy-on-write clone of one table (no secondary indexes)."""
    cls = type(table)
    clone = cls(table.name, list(table.columns))
    if table.is_columnar:
        # Slab copy: typed arrays memcpy, maps copy shallowly.  The
        # live table mutates slabs in place, so the snapshot gets its
        # own; values themselves are immutable Python objects.
        clone._cols = [col.copy() for col in table._cols]
        clone._slot_rowids = list(table._slot_rowids)
        clone._slot_of = dict(table._slot_of)
        clone._live = bytearray(table._live)
        clone._dead_count = table._dead_count
    else:
        # Shallow dict copy sharing row lists: mutation paths rebind
        # fresh lists (update_row / apply_raw_update / add_column), so
        # shared lists are never modified underneath the snapshot.
        clone.rows = dict(table.rows)
    clone._next_rowid = table._next_rowid
    clone.last_autoincrement = table.last_autoincrement
    clone.version = table.version
    return clone


class SnapshotManager:
    """Maintains the pinned read snapshot of one live database."""

    def __init__(self, database: Database):
        self.database = database
        #: Serialises refreshes; pin() itself is lock-free on the hot
        #: (snapshot fresh) path.
        self._lock = threading.Lock()
        self._snapshot: Optional[Database] = None
        #: name -> (version, clone) cache reused across refreshes so an
        #: unchanged table is never re-cloned.
        self._clones: dict[str, tuple[int, Table]] = {}

    # -- public API ----------------------------------------------------------

    def pin(self) -> Database:
        """Return a consistent snapshot database, refreshing if stale.

        Never blocks on an active writer once a snapshot exists: a
        contended refresh serves the previous snapshot instead.
        """
        snap = self._snapshot
        if snap is not None and not self._stale(snap):
            return snap
        return self._refresh()

    def status(self) -> dict:
        snap = self._snapshot
        db = self.database
        return {
            "enabled": True,
            "pinned": snap is not None,
            "snapshot_schema_version": None if snap is None else snap.schema_version,
            "primary_schema_version": db.schema_version,
            "cached_table_clones": len(self._clones),
            "refreshes": db.stats.get("snapshot_refreshes", 0),
            "stale_serves": db.stats.get("snapshot_stale_serves", 0),
            "selects": db.stats.get("snapshot_selects", 0),
        }

    def invalidate(self) -> None:
        with self._lock:
            self._snapshot = None
            self._clones.clear()

    # -- internals -----------------------------------------------------------

    def _stale(self, snap: Database) -> bool:
        db = self.database
        if snap.schema_version != db.schema_version:
            return True
        if len(snap.tables) != len(db.tables):
            return True
        try:
            for key, table in db.tables.items():
                clone = snap.tables.get(key)
                if clone is None or clone.version != table.version:
                    return True
        except RuntimeError:
            # Catalog mutated under us (lock-free check by design):
            # treat as stale; the refresh re-checks under txn_lock.
            return True
        return False

    def _refresh(self) -> Database:
        db = self.database
        with self._lock:
            snap = self._snapshot
            if snap is not None and not self._stale(snap):
                return snap  # raced with another refresher
            # A committed-consistent copy requires the writer lock (the
            # undo-log design keeps uncommitted rows in the live
            # tables).  Block only when there is nothing to fall back
            # on; otherwise serve the previous snapshot.
            if not db.txn_lock.acquire(blocking=snap is None):
                db.stats["snapshot_stale_serves"] += 1
                _STALE_SERVES.inc()
                return snap
            try:
                fresh = self._build()
            finally:
                db.txn_lock.release()
            self._snapshot = fresh
            db.stats["snapshot_refreshes"] += 1
            _REFRESHES.inc()
            return fresh

    def _build(self) -> Database:
        db = self.database
        snap = Database()
        snap.schema_version = db.schema_version
        snap.compile_enabled = db.compile_enabled
        snap.columnar_default = db.columnar_default
        # Share the stats dict so snapshot-side access-path counters
        # surface through the primary connection's stats().
        snap.stats = db.stats
        snap.foreign_keys = dict(db.foreign_keys)
        snap.index_owner = dict(db.index_owner)
        tables: dict[str, Table] = {}
        clones: dict[str, tuple[int, Table]] = {}
        for key, table in db.tables.items():
            cached = self._clones.get(key)
            if (
                cached is not None
                and cached[0] == table.version
                and type(cached[1]) is type(table)
                and cached[1].columns == table.columns
            ):
                clone = cached[1]
            else:
                clone = clone_table(table)
                db.stats["snapshot_table_clones"] += 1
                _CLONES.inc()
            tables[key] = clone
            clones[key] = (table.version, clone)
        snap.tables = tables
        self._clones = clones
        return snap


def enable(database: Database) -> SnapshotManager:
    """Attach (or return the existing) snapshot manager.

    Pins an initial snapshot eagerly so later reads always have a
    consistent fallback and never wait on an active writer.
    """
    if database.snapshot_mgr is None:
        mgr = SnapshotManager(database)
        # Non-blocking so PRAGMA inside a transaction (or racing a
        # writer) cannot deadlock; an unlucky skip just defers the
        # first (blocking) pin to the first snapshot read.
        if database.txn_lock.acquire(blocking=False):
            try:
                mgr._snapshot = mgr._build()
            finally:
                database.txn_lock.release()
        database.snapshot_mgr = mgr
    return database.snapshot_mgr


def disable(database: Database) -> None:
    mgr, database.snapshot_mgr = database.snapshot_mgr, None
    if mgr is not None:
        mgr.invalidate()
