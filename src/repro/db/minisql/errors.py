"""Exception hierarchy for the MiniSQL engine.

MiniSQL follows the DB-API 2.0 exception layering so that code written
against :mod:`repro.db.api` can catch the same exception classes
regardless of whether the sqlite3 or the MiniSQL backend is active.
"""

from __future__ import annotations


class MiniSQLError(Exception):  # noqa: N818 - matches DB-API naming
    """Base class for every error raised by the MiniSQL engine."""


class Warning(MiniSQLError):  # noqa: A001 - DB-API 2.0 mandated name
    """Important warnings such as data truncation on insert."""


class InterfaceError(MiniSQLError):
    """Errors related to the database interface rather than the engine."""


class DatabaseError(MiniSQLError):
    """Base class for errors related to the database itself."""


class DataError(DatabaseError):
    """Problems with processed data (division by zero, bad casts, ...)."""


class OperationalError(DatabaseError):
    """Errors related to the database operation (missing table, ...)."""


class IntegrityError(DatabaseError):
    """Relational integrity violations (NOT NULL, UNIQUE, FK, ...)."""


class InternalError(DatabaseError):
    """Engine-internal inconsistencies; these indicate MiniSQL bugs."""


class ProgrammingError(DatabaseError):
    """SQL syntax errors, wrong parameter counts, misuse of the API."""


class NotSupportedError(DatabaseError):
    """Valid SQL that MiniSQL deliberately does not implement."""


class SQLSyntaxError(ProgrammingError):
    """A syntax error, carrying position information from the lexer."""

    def __init__(self, message: str, position: int = -1, sql: str = ""):
        self.position = position
        self.sql = sql
        if position >= 0 and sql:
            line = sql.count("\n", 0, position) + 1
            col = position - (sql.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)
