"""Scalar and aggregate function implementations for MiniSQL.

Scalar functions receive already-evaluated argument values and return a
value.  Aggregate functions are implemented as accumulator classes with
``step(value)`` / ``finalize()`` in the sqlite3 UDF style.

The aggregate set intentionally includes ``STDDEV`` and ``VARIANCE``
because PerfDMF's query API exposes standard SQL aggregate operations
(min, max, mean, standard deviation — see paper §5.2); sqlite lacks
STDDEV natively, so :mod:`repro.db.sqlite_backend` registers the same
implementations there, keeping the two backends semantically identical.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from .errors import DataError, ProgrammingError

# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _fn_abs(x: Any) -> Any:
    return None if x is None else abs(x)


def _fn_round(x: Any, digits: Any = 0) -> Any:
    if x is None:
        return None
    return float(round(float(x), int(digits or 0)))

def _fn_length(x: Any) -> Any:
    return None if x is None else len(str(x))


def _fn_upper(x: Any) -> Any:
    return None if x is None else str(x).upper()


def _fn_lower(x: Any) -> Any:
    return None if x is None else str(x).lower()


def _fn_trim(x: Any) -> Any:
    return None if x is None else str(x).strip()


def _fn_ltrim(x: Any) -> Any:
    return None if x is None else str(x).lstrip()


def _fn_rtrim(x: Any) -> Any:
    return None if x is None else str(x).rstrip()


def _fn_substr(x: Any, start: Any, length: Any = None) -> Any:
    """SQL SUBSTR with 1-based indexing and sqlite negative-start rules."""
    if x is None or start is None:
        return None
    text = str(x)
    start = int(start)
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = max(len(text) + start, 0)
    else:
        begin = 0
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


def _fn_replace(x: Any, old: Any, new: Any) -> Any:
    if x is None or old is None or new is None:
        return None
    return str(x).replace(str(old), str(new))


def _fn_instr(haystack: Any, needle: Any) -> Any:
    if haystack is None or needle is None:
        return None
    return str(haystack).find(str(needle)) + 1


def _fn_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _fn_ifnull(x: Any, fallback: Any) -> Any:
    return fallback if x is None else x


def _fn_nullif(x: Any, y: Any) -> Any:
    return None if x == y else x


def _fn_min_scalar(*args: Any) -> Any:
    vals = [a for a in args if a is not None]
    return min(vals) if vals else None


def _fn_max_scalar(*args: Any) -> Any:
    vals = [a for a in args if a is not None]
    return max(vals) if vals else None


def _fn_sqrt(x: Any) -> Any:
    if x is None:
        return None
    value = float(x)
    if value < 0:
        raise DataError("SQRT of negative value")
    return math.sqrt(value)


def _fn_power(x: Any, y: Any) -> Any:
    if x is None or y is None:
        return None
    return float(x) ** float(y)


def _fn_log(x: Any) -> Any:
    if x is None:
        return None
    value = float(x)
    if value <= 0:
        raise DataError("LOG of non-positive value")
    return math.log(value)


def _fn_exp(x: Any) -> Any:
    return None if x is None else math.exp(float(x))


def _fn_floor(x: Any) -> Any:
    return None if x is None else int(math.floor(float(x)))


def _fn_ceil(x: Any) -> Any:
    return None if x is None else int(math.ceil(float(x)))


def _fn_mod(x: Any, y: Any) -> Any:
    if x is None or y is None:
        return None
    if float(y) == 0:
        return None
    return math.fmod(float(x), float(y)) if isinstance(x, float) or isinstance(y, float) else int(x) % int(y)


def _fn_sign(x: Any) -> Any:
    if x is None:
        return None
    value = float(x)
    return (value > 0) - (value < 0)


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "ABS": _fn_abs,
    "ROUND": _fn_round,
    "LENGTH": _fn_length,
    "UPPER": _fn_upper,
    "LOWER": _fn_lower,
    "TRIM": _fn_trim,
    "LTRIM": _fn_ltrim,
    "RTRIM": _fn_rtrim,
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "REPLACE": _fn_replace,
    "INSTR": _fn_instr,
    "COALESCE": _fn_coalesce,
    "IFNULL": _fn_ifnull,
    "NULLIF": _fn_nullif,
    "SQRT": _fn_sqrt,
    "POWER": _fn_power,
    "POW": _fn_power,
    "LOG": _fn_log,
    "LN": _fn_log,
    "EXP": _fn_exp,
    "FLOOR": _fn_floor,
    "CEIL": _fn_ceil,
    "CEILING": _fn_ceil,
    "MOD": _fn_mod,
    "SIGN": _fn_sign,
    # Multi-argument MIN/MAX are scalar (sqlite semantics); the
    # single-argument forms are aggregates and dispatched separately.
    "MIN": _fn_min_scalar,
    "MAX": _fn_max_scalar,
}


def call_scalar(name: str, args: list[Any]) -> Any:
    try:
        fn = SCALAR_FUNCTIONS[name]
    except KeyError:
        raise ProgrammingError(f"no such function: {name}") from None
    try:
        return fn(*args)
    except TypeError as exc:
        raise ProgrammingError(f"wrong argument count for {name}(): {exc}") from None


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class Aggregate:
    """Base accumulator.  ``step`` sees one value per input row."""

    def step(self, value: Any) -> None:
        raise NotImplementedError

    def finalize(self) -> Any:
        raise NotImplementedError


class CountAgg(Aggregate):
    """COUNT(x): non-NULL count.  COUNT(*) is handled by the executor
    passing a sentinel non-NULL value for every row."""

    def __init__(self) -> None:
        self.n = 0

    def step(self, value: Any) -> None:
        if value is not None:
            self.n += 1

    def finalize(self) -> int:
        return self.n


class SumAgg(Aggregate):
    def __init__(self) -> None:
        self.total: Any = None

    def step(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def finalize(self) -> Any:
        return self.total


class AvgAgg(Aggregate):
    def __init__(self) -> None:
        self.total = 0.0
        self.n = 0

    def step(self, value: Any) -> None:
        if value is None:
            return
        self.total += float(value)
        self.n += 1

    def finalize(self) -> Any:
        return self.total / self.n if self.n else None


class MinAgg(Aggregate):
    def __init__(self) -> None:
        self.best: Any = None

    def step(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def finalize(self) -> Any:
        return self.best


class MaxAgg(Aggregate):
    def __init__(self) -> None:
        self.best: Any = None

    def step(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def finalize(self) -> Any:
        return self.best


class _MomentAgg(Aggregate):
    """Shared Welford accumulator for variance/stddev (population=N
    divisor matching PerfDMF's use of sample statistics: divisor N-1)."""

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def step(self, value: Any) -> None:
        if value is None:
            return
        x = float(value)
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)

    def _variance(self) -> Any:
        if self.n < 2:
            return None
        return self.m2 / (self.n - 1)


class VarianceAgg(_MomentAgg):
    def finalize(self) -> Any:
        return self._variance()


class StddevAgg(_MomentAgg):
    def finalize(self) -> Any:
        var = self._variance()
        return None if var is None else math.sqrt(var)


class GroupConcatAgg(Aggregate):
    def __init__(self) -> None:
        self.parts: list[str] = []

    def step(self, value: Any) -> None:
        if value is not None:
            self.parts.append(str(value))

    def finalize(self) -> Any:
        return ",".join(self.parts) if self.parts else None


class TotalAgg(Aggregate):
    """sqlite's TOTAL(): like SUM but returns 0.0 instead of NULL."""

    def __init__(self) -> None:
        self.total = 0.0

    def step(self, value: Any) -> None:
        if value is not None:
            self.total += float(value)

    def finalize(self) -> float:
        return self.total


class WelfordStateAgg(_MomentAgg):
    """Internal shard-side partial for STDDEV/VARIANCE (``__WELFORD``).

    Runs the ordinary Welford recurrence, but finalizes to a packed
    ``"n|mean|m2"`` text state (``repr`` round-trips floats exactly)
    instead of a statistic, so the gather step can Chan-merge the
    per-shard moments.  The ``__`` prefix marks it internal: only the
    shard splitter constructs calls to it.
    """

    def finalize(self) -> str:
        return f"{self.n}|{self.mean!r}|{self.m2!r}"


class _WelfordMergeAgg(Aggregate):
    """Merge ``__WELFORD`` packed states (Chan et al. pairwise update)."""

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def step(self, value: Any) -> None:
        if value is None:
            return
        parts = str(value).split("|")
        if len(parts) == 3:
            n, mean, m2 = int(parts[0]), float(parts[1]), float(parts[2])
        else:
            # A raw sample instead of a packed state: merge it as a
            # single-observation state (n=1, mean=x, m2=0), which makes
            # the merge aggregates valid plain STDDEV/VARIANCE too.
            n, mean, m2 = 1, float(value), 0.0
        if n == 0:
            return
        if self.n == 0:
            self.n, self.mean, self.m2 = n, mean, m2
            return
        total = self.n + n
        delta = mean - self.mean
        self.m2 += m2 + delta * delta * (self.n * n / total)
        self.mean += delta * n / total
        self.n = total

    def _variance(self) -> Any:
        if self.n < 2:
            return None
        return self.m2 / (self.n - 1)


class WelfordVarianceAgg(_WelfordMergeAgg):
    def finalize(self) -> Any:
        return self._variance()


class WelfordStddevAgg(_WelfordMergeAgg):
    def finalize(self) -> Any:
        var = self._variance()
        return None if var is None else math.sqrt(var)


AGGREGATE_FUNCTIONS: dict[str, type[Aggregate]] = {
    "COUNT": CountAgg,
    "SUM": SumAgg,
    "AVG": AvgAgg,
    "MIN": MinAgg,
    "MAX": MaxAgg,
    "STDDEV": StddevAgg,
    "STDEV": StddevAgg,
    "VARIANCE": VarianceAgg,
    "GROUP_CONCAT": GroupConcatAgg,
    "TOTAL": TotalAgg,
    # Internal shard partials (see repro.db.minisql.shard); the __
    # prefix keeps them out of ordinary SQL by convention.
    "__WELFORD": WelfordStateAgg,
    "__WELFORD_STDDEV": WelfordStddevAgg,
    "__WELFORD_VARIANCE": WelfordVarianceAgg,
}


def is_aggregate(name: str) -> bool:
    return name in AGGREGATE_FUNCTIONS


def make_aggregate(name: str) -> Aggregate:
    try:
        return AGGREGATE_FUNCTIONS[name]()
    except KeyError:
        raise ProgrammingError(f"no such aggregate: {name}") from None
