"""MiniSQL type system.

MiniSQL uses a small affinity-based type system deliberately close to
SQLite's so the two backends behave identically for PerfDMF's schema:

* ``INTEGER`` — Python ``int``
* ``REAL`` — Python ``float``
* ``TEXT`` — Python ``str``
* ``BOOLEAN`` — stored as ``int`` 0/1 (comparisons treat them as ints)
* ``NUMERIC`` — int when lossless, else float

NULL is represented by Python ``None`` throughout the engine.
"""

from __future__ import annotations

from typing import Any

from .errors import DataError

#: Mapping from every accepted SQL type keyword to its canonical affinity.
_CANONICAL = {
    "INTEGER": "INTEGER",
    "INT": "INTEGER",
    "BIGINT": "INTEGER",
    "SMALLINT": "INTEGER",
    "REAL": "REAL",
    "DOUBLE": "REAL",
    "DOUBLE PRECISION": "REAL",
    "FLOAT": "REAL",
    "TEXT": "TEXT",
    "VARCHAR": "TEXT",
    "CHAR": "TEXT",
    "BLOB": "TEXT",
    "BOOLEAN": "BOOLEAN",
    "NUMERIC": "NUMERIC",
    "DECIMAL": "NUMERIC",
}


def canonical_type(name: str) -> str:
    """Normalise a SQL type keyword (``VARCHAR(255)`` -> ``TEXT``)."""
    base = name.upper().split("(", 1)[0].strip()
    try:
        return _CANONICAL[base]
    except KeyError:
        raise DataError(f"unknown column type {name!r}") from None


def coerce(value: Any, affinity: str, column: str = "?") -> Any:
    """Coerce ``value`` to ``affinity`` on insert/update.

    Follows SQLite's lenient affinity rules: numeric strings convert to
    numbers for numeric affinities, numbers convert to text for TEXT,
    and anything failing conversion raises :class:`DataError`.
    """
    if value is None:
        return None
    if affinity == "INTEGER":
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            if value.is_integer():
                return int(value)
            return value  # sqlite keeps the float; so do we
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                try:
                    return float(value)
                except ValueError:
                    return value
        raise DataError(f"cannot store {type(value).__name__} in INTEGER column {column}")
    if affinity == "REAL":
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                return value
        raise DataError(f"cannot store {type(value).__name__} in REAL column {column}")
    if affinity == "NUMERIC":
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            return int(value) if value.is_integer() else value
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                try:
                    return float(value)
                except ValueError:
                    return value
        raise DataError(f"cannot store {type(value).__name__} in NUMERIC column {column}")
    if affinity == "BOOLEAN":
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return 1 if value else 0
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "1", "yes"):
                return 1
            if lowered in ("false", "f", "0", "no"):
                return 0
        raise DataError(f"cannot store {value!r} in BOOLEAN column {column}")
    if affinity == "TEXT":
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, (int, float)):
            return _number_to_text(value)
        if isinstance(value, bytes):
            return value.decode("utf-8", "replace")
        raise DataError(f"cannot store {type(value).__name__} in TEXT column {column}")
    raise DataError(f"unknown affinity {affinity!r}")


def cast_value(value: Any, target: str) -> Any:
    """Implement ``CAST(expr AS type)`` semantics."""
    if value is None:
        return None
    affinity = canonical_type(target)
    if affinity == "INTEGER":
        if isinstance(value, str):
            try:
                return int(float(value))
            except ValueError:
                return 0  # sqlite semantics: non-numeric text casts to 0
        if isinstance(value, float):
            return int(value)
        if isinstance(value, (int, bool)):
            return int(value)
    if affinity in ("REAL", "NUMERIC"):
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError:
                return 0.0
        return float(value)
    if affinity == "BOOLEAN":
        return 1 if value else 0
    if affinity == "TEXT":
        if isinstance(value, (int, float)):
            return _number_to_text(value)
        return str(value)
    raise DataError(f"cannot CAST to {target!r}")


#: sqlite's arRound table (sqlite3_str_vappendf): per-digit rounders.
_AR_ROUND = (
    5.0e-01, 5.0e-02, 5.0e-03, 5.0e-04, 5.0e-05,
    5.0e-06, 5.0e-07, 5.0e-08, 5.0e-09, 5.0e-10,
)


def _number_to_text(value: int | float) -> str:
    """Render a number the way sqlite renders it when coerced to TEXT.

    sqlite formats REAL with ``%!.15g`` via its own long-double digit
    extractor, whose tie rounding differs from Python's ``format(v,
    '.15g')`` in the last digit for exact decimal ties (e.g.
    512.5340576171875 → '512.534057617187', not ...188).  The
    differential harness compares these strings byte-for-byte, so this
    ports sqlite's algorithm: normalise the value to [1, 10) in 80-bit
    long double, add the 5e-15 rounder, then pull digits one at a time.
    """
    if isinstance(value, int):
        return str(value)
    if value == 0.0:
        return "0.0"  # sqlite renders -0.0 as '0.0'
    import numpy as np

    longdouble = np.longdouble
    negative = value < 0.0
    rv = longdouble(-value if negative else value)
    exp = 0
    if np.isinf(rv):
        return "-Inf" if negative else "Inf"
    scale = longdouble(1.0)
    while rv >= longdouble(1e100) * scale and exp <= 350:
        scale *= longdouble(1e100)
        exp += 100
    while rv >= longdouble(1e10) * scale and exp <= 350:
        scale *= longdouble(1e10)
        exp += 10
    while rv >= longdouble(10.0) * scale and exp <= 350:
        scale *= longdouble(10.0)
        exp += 1
    rv = rv / scale
    while rv < longdouble(1e-8):
        rv *= longdouble(1e8)
        exp -= 8
    while rv < longdouble(1.0):
        rv *= longdouble(10.0)
        exp -= 1
    precision = 15 - 1  # %g counts the leading digit
    idx = precision
    rounder = longdouble(_AR_ROUND[idx % 10])
    while idx >= 10:
        rounder *= longdouble(1.0e-10)
        idx -= 10
    rv = rv + rounder
    if rv >= longdouble(10.0):
        rv *= longdouble(0.1)
        exp += 1

    significant = [16 + 10]  # nsd with the altform2 ('!') flag

    def next_digit() -> str:
        if significant[0] <= 0:
            return "0"
        significant[0] -= 1
        digit = int(rv_box[0])
        rv_box[0] = (rv_box[0] - longdouble(digit)) * longdouble(10.0)
        return chr(digit + ord("0"))

    rv_box = [rv]
    out: list[str] = ["-"] if negative else []
    if exp < -4 or exp > precision:  # etEXP form
        out.append(next_digit())
        out.append(".")
        for _ in range(precision):
            out.append(next_digit())
        text = "".join(out).rstrip("0")
        if text.endswith("."):
            text += "0"
        return f"{text}e{'+' if exp >= 0 else '-'}{abs(exp):02d}"
    precision -= exp  # etFLOAT form
    if exp < 0:
        out.append("0")
    else:
        for _ in range(exp + 1):
            out.append(next_digit())
    out.append(".")
    zeros = exp + 1
    while zeros < 0:
        out.append("0")
        precision -= 1
        zeros += 1
    for _ in range(max(0, precision)):
        out.append(next_digit())
    text = "".join(out).rstrip("0")
    if text.endswith("."):
        text += "0"
    return text


#: Total ordering used by ORDER BY / MIN / MAX when values have mixed
#: types.  NULL sorts first, then numbers, then text (SQLite's rule).
def sort_key(value: Any) -> tuple[int, Any]:
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, str(value))
