"""Sharded multi-process scatter-gather query execution for MiniSQL.

The source paper is a *parallel* performance data management framework;
this module is the layer that finally makes MiniSQL queries scale past
one core.  A :class:`ShardManager` attached to a primary
:class:`~repro.db.minisql.storage.Database` (via ``PRAGMA shards(<n>)``)
partitions table rows into N contiguous slabs *in scan order* and runs a
rewritten **fragment** of each eligible SELECT against every slab,
merging the per-shard partial results in a **gather** step that is
itself an ordinary MiniSQL SELECT over a scratch table:

    original:  SELECT g, avg(x) FROM t GROUP BY g HAVING count(*) > 2
    fragment:  SELECT g AS __g0, sum(x) AS __p0, count(x) AS __p1,
                      count(*) AS __p2  FROM t GROUP BY g      (per shard)
    gather:    SELECT __g0 AS g, CAST(sum(__p0) AS REAL)/sum(__p1)
               FROM __shard_partial GROUP BY __g0
               HAVING coalesce(sum(__p2), 0) > 2

Executing the merge through the normal executor (rather than bespoke
merge loops) buys correctness by construction: HAVING, ORDER BY,
LIMIT/OFFSET, DISTINCT, alias resolution and NULL sorting all reuse the
exact single-process code the differential corpus already locks down.

Two shard backings share the machinery:

* **derived (in-memory)** — any table of any database can be sharded
  lazily on first eligible query; the primary stays authoritative and
  the per-shard copies are rebuilt when ``(schema_version,
  Table.version)`` says they are stale.  Copies inherit columnar
  storage (so PR 6's vector kernels run per shard) but carry no
  indexes: fragments always scan, and queries that an index on the
  primary would serve better are *bypassed* back to single-process
  execution.
* **resident (file)** — for file-backed archives, bulk ingest can write
  shards directly: per-shard ``shard-K.mdb`` files (each with its own
  WAL, so PR 4 recovery applies per shard) under ``<archive>.shards/``.
  A resident table's rows live *only* in the shard files; any statement
  the splitter cannot route re-homes the rows into the primary first
  (**hydration**) so single-process semantics stay exact.

Why contiguous slabs and not hash partitioning: the concatenation of
shard scans in shard order *is* the primary scan order, which makes
every merge order-exact — plain SELECT output order, GROUP BY
first-seen group order, stable-sort ties, group representatives, and
``group_concat`` all match the oracle byte for byte.

Parallelism reuses :mod:`repro.core.parallel` (PR 2's fan-out with PR
4's hung-worker teardown) with a fork context: shard databases are
plain Python objects snapshotted into workers at fork time via the
module-level ``_WORKER_SHARDS`` registry, and any rebuild bumps the
manager generation to refork a fresh pool.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass, replace as _replace
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.core.parallel import TaskFailure, WorkerPool, run_tasks
from repro.obs.log import get_logger
from repro.obs.metrics import registry as _metrics
from repro.obs.trace import tracer as _tracer

from .ast_nodes import (
    Between, BinaryOp, CaseExpr, CastExpr, ColumnRef, Explain, Expression,
    FunctionCall, InList, Insert, IsNull, Like, Literal, OrderItem,
    Placeholder, Pragma, Select, SelectItem, Star, Statement, Subquery,
    TableRef, UnaryOp,
)
from .errors import OperationalError, ProgrammingError
from .expr import contains_aggregate, is_aggregate_call, ref_name, walk
from .storage import Column, Database, Table
from .types import coerce

_log = get_logger("repro.minisql.shard")

_QUERIES = _metrics.counter("minisql.shard.queries")
_POOL_QUERIES = _metrics.counter("minisql.shard.pool_queries")
_FALLBACKS = _metrics.counter("minisql.shard.fallbacks")
_BYPASSES = _metrics.counter("minisql.shard.bypasses")
_REBUILDS = _metrics.counter("minisql.shard.rebuilds")
_HYDRATIONS = _metrics.counter("minisql.shard.hydrations")
_INGESTS = _metrics.counter("minisql.shard.parallel_ingests")

#: Scratch table the gather SELECT runs over.
SCRATCH_TABLE = "__shard_partial"

#: Aggregates the splitter can prove distributive (everything else
#: falls back to single-process execution).
_MERGEABLE = {
    "COUNT", "SUM", "AVG", "MIN", "MAX", "TOTAL",
    "STDDEV", "STDEV", "VARIANCE", "GROUP_CONCAT",
}

#: Aggregates whose result depends on fold order (floats) or row order.
#: Mixing one of these (non-DISTINCT) with any DISTINCT aggregate would
#: force partials onto the DISTINCT super-grouping, which regroups rows
#: and changes the fold order — fall back instead.
_ORDER_SENSITIVE = {
    "SUM", "AVG", "TOTAL", "STDDEV", "STDEV", "VARIANCE", "GROUP_CONCAT",
}


class _Fallback(Exception):
    """Raised by the splitter when a statement must run single-process."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class _ShardPlan:
    """One statement's scatter-gather decomposition (cached on the AST)."""

    table: str                    # lower-cased base table name
    kind: str                     # "grouped" | "plain"
    fragment: Select              # per-shard statement
    fragment_bytes: bytes         # pickled *before* any plan attrs attach
    scratch_columns: list[str]    # fragment output names, scratch schema
    merge: Select                 # gather statement over SCRATCH_TABLE


# ---------------------------------------------------------------------------
# Worker-side execution (fork snapshot registry)
# ---------------------------------------------------------------------------

#: token -> shard Databases, set in the coordinator *before* the pool
#: forks so workers inherit the snapshot.  Tokens embed the manager
#: generation: any rebuild changes the token and reforks the pool.
_WORKER_SHARDS: dict[str, list[Database]] = {}


def _pool_worker(
    spec: tuple,
) -> tuple[list[str], list[tuple[Any, ...]], float, list[dict]]:
    """Run one fragment in a forked worker.

    Returns ``(columns, rows, elapsed_seconds, spans)``: the fragment is
    timed in the worker itself (so EXPLAIN ANALYZE SHARD rows report
    actual per-shard wall time, not the whole scatter), and when the
    coordinator propagated a trace context the worker records its own
    ``minisql.shard.fragment`` span tree and ships it back for adoption
    — the same cross-process pattern bulk-ingest parse workers use.
    """
    token, index, fragment_bytes, params, trace_ctx = spec
    shards = _WORKER_SHARDS.get(token)
    if shards is None:  # stale fork — coordinator retries serially
        raise RuntimeError(f"shard registry has no snapshot for {token}")
    from .executor import Executor

    fragment = pickle.loads(fragment_bytes)
    spans: list[dict] = []
    started = time.perf_counter()
    if trace_ctx is None:
        columns, rows = Executor(shards[index])._execute_select(
            fragment, list(params)
        )
    else:
        # A forked worker inherits the coordinator's tracer state —
        # including `enabled` and whatever was in its ring at fork
        # time.  Clear and re-enable so the shipment contains exactly
        # this fragment's spans.
        _tracer.enable()
        _tracer.clear()
        with _tracer.context(trace_ctx[0], trace_ctx[1]):
            with _tracer.span("minisql.shard.fragment", shard=index):
                columns, rows = Executor(shards[index])._execute_select(
                    fragment, list(params)
                )
        spans = _tracer.drain()
    return columns, rows, time.perf_counter() - started, spans


def _ingest_worker(spec: tuple) -> int:
    """Write one slab into one shard file (own process, own WAL txn)."""
    path, table_name, rows, index = spec
    from repro.testing import faults

    from . import wal as _wal

    faults.crash_point(f"shard.ingest.open.{index}")
    database = _wal.open_file_database(path)
    table = database.table(table_name)
    own_bulk = not database.bulk_mode
    if own_bulk:
        database.begin_bulk()
    database.begin()
    database.bulk_insert_rows(table, rows)
    faults.crash_point(f"shard.ingest.append.{index}")
    database.commit()
    if own_bulk:
        database.end_bulk()
    faults.crash_point(f"shard.ingest.commit.{index}")
    if database.wal is not None:
        database.wal.checkpoint(database)
        database.wal.close()
    return len(rows)


# ---------------------------------------------------------------------------
# Splitter: statement -> (fragment, merge) or fallback
# ---------------------------------------------------------------------------


def _column_names(table: Table) -> set[str]:
    return {c.lower_name for c in table.columns}


def _qualifiers(table: Table, alias: str) -> set[str]:
    return {alias.lower(), table.name.lower()}


def _check_resolvable(
    expr: Expression, names: set[str], quals: set[str], what: str
) -> None:
    for node in walk(expr):
        if isinstance(node, ColumnRef):
            if node.table is not None and node.table.lower() not in quals:
                raise _Fallback(f"unresolvable qualifier in {what}")
            if node.name.lower() not in names:
                raise _Fallback(f"unresolvable column in {what}")


def _select_roots(stmt: Select) -> list[Expression]:
    roots: list[Expression] = [item.expr for item in stmt.items]
    roots.extend(stmt.group_by)
    if stmt.where is not None:
        roots.append(stmt.where)
    if stmt.having is not None:
        roots.append(stmt.having)
    roots.extend(order.expr for order in stmt.order_by)
    if stmt.limit is not None:
        roots.append(stmt.limit)
    if stmt.offset is not None:
        roots.append(stmt.offset)
    return roots


def _fragment_select(stmt: Select, items: list[SelectItem],
                     group_by: list[Expression], distinct: bool) -> Select:
    return Select(
        items=items, table=stmt.table, joins=[], where=stmt.where,
        group_by=group_by, having=None, order_by=[], limit=None,
        offset=None, distinct=distinct, compound=None,
    )


class _GroupedRewriter:
    """Rewrites grouped-select expressions into fragment partials plus a
    merge expression over the scratch columns.

    Column namespaces in the scratch table (all positional, so duplicate
    source names never collide): ``__g{i}`` group keys, ``__d{m}``
    DISTINCT-aggregate arguments (extra fragment group columns —
    "super-grouping"), ``__p{j}`` aggregate partials, ``__r{k}`` group
    representatives for bare column references.
    """

    def __init__(self, table: Table, alias: str, group_exprs: list[Expression]):
        self._names = _column_names(table)
        self._quals = _qualifiers(table, alias)
        self.group_exprs = group_exprs
        self.group_items: list[SelectItem] = [
            SelectItem(g, f"__g{i}") for i, g in enumerate(group_exprs)
        ]
        self.distinct_items: list[SelectItem] = []
        self.partial_items: list[SelectItem] = []
        self.rep_items: list[SelectItem] = []
        self._agg_cache: list[tuple[FunctionCall, Expression]] = []
        self._partial_cache: list[tuple[Expression, ColumnRef]] = []
        self._distinct_cache: list[tuple[Expression, ColumnRef]] = []
        self._rep_cache: dict[tuple[str, str], ColumnRef] = {}

    # -- rewrite ------------------------------------------------------------

    def rewrite(self, expr: Expression) -> Expression:
        for i, group in enumerate(self.group_exprs):
            if expr == group:
                return ColumnRef(f"__g{i}")
        if is_aggregate_call(expr):
            return self._rewrite_aggregate(expr)
        if isinstance(expr, ColumnRef):
            return self._representative(expr)
        if isinstance(expr, Star):
            # The oracle projects the whole representative row; slabs
            # could reproduce it, but mirroring _Layout spans here is
            # not worth the risk — run it single-process.
            raise _Fallback("star in grouped select")
        if isinstance(expr, (Literal, Placeholder)):
            return expr
        return self._map_children(expr)

    def _map_children(self, expr: Expression) -> Expression:
        rw = self.rewrite
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, rw(expr.left), rw(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rw(expr.operand))
        if isinstance(expr, IsNull):
            return IsNull(rw(expr.operand), expr.negated)
        if isinstance(expr, InList):
            return InList(rw(expr.operand), [rw(i) for i in expr.items],
                          expr.negated)
        if isinstance(expr, Between):
            return Between(rw(expr.operand), rw(expr.low), rw(expr.high),
                           expr.negated)
        if isinstance(expr, Like):
            return Like(rw(expr.operand), rw(expr.pattern), expr.negated)
        if isinstance(expr, FunctionCall):  # scalar (aggregates handled above)
            return FunctionCall(expr.name, [rw(a) for a in expr.args],
                                expr.distinct)
        if isinstance(expr, CaseExpr):
            return CaseExpr(
                rw(expr.operand) if expr.operand is not None else None,
                [(rw(c), rw(r)) for c, r in expr.whens],
                rw(expr.default) if expr.default is not None else None,
            )
        if isinstance(expr, CastExpr):
            return CastExpr(rw(expr.operand), expr.target_type)
        raise _Fallback(f"unsupported node {type(expr).__name__}")

    # -- pieces -------------------------------------------------------------

    def _representative(self, col: ColumnRef) -> ColumnRef:
        if col.table is not None and col.table.lower() not in self._quals:
            raise _Fallback("unresolvable qualifier")
        if col.name.lower() not in self._names:
            raise _Fallback("unresolvable column")
        if not self.group_exprs:
            # A global aggregate over zero rows synthesises an all-NULL
            # representative; empty *shards* would inject one per shard,
            # so bare columns here are not provably distributive.
            raise _Fallback("bare column in global aggregate")
        key = (col.name.lower(), (col.table or "").lower())
        ref = self._rep_cache.get(key)
        if ref is None:
            ref = ColumnRef(f"__r{len(self._rep_cache)}")
            self._rep_cache[key] = ref
            self.rep_items.append(
                SelectItem(ColumnRef(col.name, col.table), ref.name)
            )
        return ref

    def _partial(self, expr: FunctionCall) -> ColumnRef:
        for cached, ref in self._partial_cache:
            if cached == expr:
                return ref
        ref = ColumnRef(f"__p{len(self._partial_cache)}")
        self._partial_cache.append((expr, ref))
        self.partial_items.append(SelectItem(expr, ref.name))
        return ref

    def _distinct_ref(self, arg: Expression) -> ColumnRef:
        for cached, ref in self._distinct_cache:
            if cached == arg:
                return ref
        ref = ColumnRef(f"__d{len(self._distinct_cache)}")
        self._distinct_cache.append((arg, ref))
        self.distinct_items.append(SelectItem(arg, ref.name))
        return ref

    def _rewrite_aggregate(self, node: FunctionCall) -> Expression:
        for cached, merged in self._agg_cache:
            if cached == node:
                return merged
        name = node.name
        if name not in _MERGEABLE:
            raise _Fallback(f"non-distributive aggregate {name}")
        star_arg = not node.args or isinstance(node.args[0], Star)
        arg = None if star_arg else node.args[0]
        if arg is not None:
            if contains_aggregate(arg):
                raise _Fallback("nested aggregate")
            _check_resolvable(arg, self._names, self._quals, "aggregate")
        if node.distinct:
            if star_arg:
                raise _Fallback("DISTINCT aggregate without argument")
            # Super-grouping: the fragment groups by the argument too, so
            # distinct values survive to the gather, where the original
            # DISTINCT aggregate runs over the (exact, first-seen-
            # ordered) distinct set.
            merged: Expression = FunctionCall(
                name, [self._distinct_ref(arg)], distinct=True
            )
        elif name == "COUNT":
            partial = self._partial(
                FunctionCall("COUNT", list(node.args), distinct=False)
            )
            # COALESCE keeps the empty-relation case at 0, not NULL
            # (SUM over an empty scratch group yields NULL).
            merged = FunctionCall(
                "COALESCE", [FunctionCall("SUM", [partial]), Literal(0)]
            )
        elif name in ("SUM", "MIN", "MAX"):
            merged = FunctionCall(
                name, [self._partial(FunctionCall(name, [arg]))]
            )
        elif name == "TOTAL":
            merged = FunctionCall(
                "TOTAL", [self._partial(FunctionCall("TOTAL", [arg]))]
            )
        elif name == "AVG":
            # Plain SUM+COUNT partials keep the fragment on the
            # vectorized aggregate sweep; CAST .. AS REAL forces float
            # division, and NULL/zero-count both merge to NULL exactly
            # like AvgAgg over an empty group.
            sum_ref = self._partial(FunctionCall("SUM", [arg]))
            count_ref = self._partial(FunctionCall("COUNT", [arg]))
            merged = BinaryOp(
                "/",
                CastExpr(FunctionCall("SUM", [sum_ref]), "REAL"),
                FunctionCall("SUM", [count_ref]),
            )
        elif name in ("STDDEV", "STDEV", "VARIANCE"):
            # Per-shard Welford moments, Chan-merged at the gather (see
            # functions.WelfordStateAgg / _WelfordMergeAgg).
            partial = self._partial(FunctionCall("__WELFORD", [arg]))
            out = "__WELFORD_VARIANCE" if name == "VARIANCE" else "__WELFORD_STDDEV"
            merged = FunctionCall(out, [partial])
        else:  # GROUP_CONCAT: comma-joining shard partials in slab order
            merged = FunctionCall(
                "GROUP_CONCAT",
                [self._partial(FunctionCall("GROUP_CONCAT", [arg]))],
            )
        self._agg_cache.append((node, merged))
        return merged

    # -- fragment assembly --------------------------------------------------

    def fragment_items(self) -> list[SelectItem]:
        return (self.group_items + self.distinct_items
                + self.partial_items + self.rep_items)

    def fragment_group_by(self) -> list[Expression]:
        return list(self.group_exprs) + [i.expr for i in self.distinct_items]


def _is_grouped(stmt: Select) -> bool:
    # Mirrors the executor: ORDER-BY-only aggregates do NOT group.
    return bool(stmt.group_by) or any(
        contains_aggregate(item.expr) for item in stmt.items
    ) or (stmt.having is not None and contains_aggregate(stmt.having))


def build_shard_plan(
    database: Database, stmt: Select, nshards: int
) -> Optional[_ShardPlan | str]:
    """Decompose ``stmt`` or explain why it cannot be decomposed.

    Returns a :class:`_ShardPlan`, a ``str`` fallback reason (counted
    per execution), or ``None`` for statements sharding simply does not
    apply to (no FROM, unknown table — the executor raises its own
    error there).
    """
    if stmt.table is None or not database.has_table(stmt.table.name):
        return None
    if stmt.joins:
        return "join"
    if stmt.compound is not None:
        return "compound"
    for root in _select_roots(stmt):
        for node in walk(root):
            if isinstance(node, Subquery):
                return "subquery"
    table = database.table(stmt.table.name)
    alias = stmt.table.effective_name
    try:
        if _is_grouped(stmt):
            return _build_grouped_plan(stmt, table, alias)
        return _build_plain_plan(stmt, table, alias)
    except _Fallback as fb:
        return fb.reason


def _finish_plan(stmt: Select, table: Table, kind: str,
                 fragment: Select, merge: Select) -> _ShardPlan:
    return _ShardPlan(
        table=table.name.lower(),
        kind=kind,
        fragment=fragment,
        fragment_bytes=pickle.dumps(fragment),
        scratch_columns=[item.alias for item in fragment.items],
        merge=merge,
    )


def _build_grouped_plan(stmt: Select, table: Table, alias: str) -> _ShardPlan:
    names = _column_names(table)
    quals = _qualifiers(table, alias)
    from .executor import _resolve_group_expr, _substitute_aliases

    alias_map = {
        item.alias.lower(): item.expr for item in stmt.items if item.alias
    }
    try:
        group_exprs = [
            _resolve_group_expr(g, alias_map, stmt.items) for g in stmt.group_by
        ]
    except ProgrammingError as exc:  # ordinal out of range: oracle raises
        raise _Fallback(str(exc))
    for group in group_exprs:
        if contains_aggregate(group):
            raise _Fallback("aggregate in GROUP BY")
        _check_resolvable(group, names, quals, "GROUP BY")
    having = (
        _substitute_aliases(stmt.having, alias_map)
        if stmt.having is not None else None
    )

    # DISTINCT-mix policy: super-grouping regroups rows, which reorders
    # the fold of order-sensitive partials — only set-based aggregates
    # (COUNT/MIN/MAX) may ride alongside a DISTINCT aggregate.
    agg_nodes: list[FunctionCall] = []
    seen: set[int] = set()
    targets: list[Expression] = [item.expr for item in stmt.items]
    if having is not None:
        targets.append(having)
    targets.extend(order.expr for order in stmt.order_by)
    for target in targets:
        for node in walk(target):
            if is_aggregate_call(node) and id(node) not in seen:
                seen.add(id(node))
                agg_nodes.append(node)
    if any(node.distinct for node in agg_nodes):
        for node in agg_nodes:
            if not node.distinct and node.name in _ORDER_SENSITIVE:
                raise _Fallback("DISTINCT mixed with order-sensitive aggregate")

    rewriter = _GroupedRewriter(table, alias, group_exprs)
    merge_items: list[SelectItem] = []
    for item in stmt.items:
        output = item.alias or ref_name(item.expr)
        merge_items.append(SelectItem(rewriter.rewrite(item.expr), output))
    merge_having = rewriter.rewrite(having) if having is not None else None
    merge_order: list[OrderItem] = []
    for order in stmt.order_by:
        expr = order.expr
        keep = isinstance(expr, Literal) or (
            isinstance(expr, ColumnRef) and expr.table is None
            and expr.name.lower() in alias_map
        )
        # Ordinals and alias refs resolve against the merge projection
        # (same positions, same aliases); everything else is rewritten
        # onto scratch columns.
        merge_order.append(
            OrderItem(expr if keep else rewriter.rewrite(expr),
                      order.descending)
        )

    if stmt.where is not None:
        _check_resolvable(stmt.where, names, quals, "WHERE")

    fragment = _fragment_select(
        stmt, rewriter.fragment_items(), rewriter.fragment_group_by(),
        distinct=False,
    )
    merge = Select(
        items=merge_items,
        table=TableRef(SCRATCH_TABLE),
        joins=[],
        where=None,
        group_by=[ColumnRef(f"__g{i}") for i in range(len(group_exprs))],
        having=merge_having,
        order_by=merge_order,
        limit=stmt.limit,
        offset=stmt.offset,
        distinct=stmt.distinct,
        compound=None,
    )
    return _finish_plan(stmt, table, "grouped", fragment, merge)


def _build_plain_plan(stmt: Select, table: Table, alias: str) -> _ShardPlan:
    names = _column_names(table)
    quals = _qualifiers(table, alias)

    # Expand stars at plan time (schema_version-keyed cache makes this
    # safe) so fragment/merge widths are static.
    out_items: list[SelectItem] = []
    for item in stmt.items:
        if isinstance(item.expr, Star):
            if (item.expr.table is not None
                    and item.expr.table.lower() not in quals):
                raise _Fallback("unknown star qualifier")
            out_items.extend(
                SelectItem(ColumnRef(column.name), None)
                for column in table.columns
            )
        else:
            _check_resolvable(item.expr, names, quals, "select list")
            out_items.append(item)
    columns_out = [item.alias or ref_name(item.expr) for item in out_items]
    lowered = [c.lower() for c in columns_out]
    alias_map = {
        item.alias.lower(): item.expr for item in stmt.items if item.alias
    }

    order_specs: list[tuple[Expression, bool]] = []
    for order in stmt.order_by:
        expr = order.expr
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            if not 1 <= expr.value <= len(out_items):
                raise _Fallback("ORDER BY ordinal out of range")
            resolved = out_items[expr.value - 1].expr
        elif (isinstance(expr, ColumnRef) and expr.table is None
                and expr.name.lower() in alias_map
                and expr.name.lower() in lowered):
            resolved = out_items[lowered.index(expr.name.lower())].expr
        else:
            resolved = expr
        if contains_aggregate(resolved):
            raise _Fallback("aggregate in ORDER BY of plain select")
        _check_resolvable(resolved, names, quals, "ORDER BY")
        order_specs.append((resolved, order.descending))

    if stmt.where is not None:
        _check_resolvable(stmt.where, names, quals, "WHERE")

    frag_items = [
        SelectItem(item.expr, f"__c{i}") for i, item in enumerate(out_items)
    ]
    frag_items.extend(
        SelectItem(resolved, f"__o{k}")
        for k, (resolved, _desc) in enumerate(order_specs)
    )
    # Per-shard DISTINCT is only sound without ORDER BY: with a sort,
    # in-shard dedup keeps first-in-scan rows whose order keys may
    # differ from the first-in-*sorted*-order duplicate the oracle keeps.
    fragment = _fragment_select(
        stmt, frag_items, [], distinct=stmt.distinct and not stmt.order_by
    )

    # Top-N pushdown: per-shard ORDER BY + LIMIT limit+offset is exact
    # (per-shard top-K is a superset of the global top-K under the
    # stable slab-order tie-break) — but not under DISTINCT, where
    # in-shard dedup on (projection, order keys) differs from global
    # dedup on the projection alone.
    if stmt.limit is not None and not stmt.distinct:
        cap = _static_cap(stmt)
        if cap is not None:
            if order_specs:
                fragment.order_by = [
                    OrderItem(resolved, desc) for resolved, desc in order_specs
                ]
            fragment.limit = Literal(cap)

    merge = Select(
        items=[
            SelectItem(ColumnRef(f"__c{i}"), columns_out[i])
            for i in range(len(out_items))
        ],
        table=TableRef(SCRATCH_TABLE),
        joins=[],
        where=None,
        group_by=[],
        having=None,
        order_by=[
            OrderItem(ColumnRef(f"__o{k}"), desc)
            for k, (_resolved, desc) in enumerate(order_specs)
        ],
        limit=stmt.limit,
        offset=stmt.offset,
        distinct=stmt.distinct,
        compound=None,
    )
    return _finish_plan(stmt, table, "plain", fragment, merge)


def _static_cap(stmt: Select) -> Optional[int]:
    """limit+offset when both are non-negative integer literals."""
    if not isinstance(stmt.limit, Literal):
        return None
    if stmt.offset is not None and not isinstance(stmt.offset, Literal):
        return None
    try:
        limit = int(stmt.limit.value)
        offset = int(stmt.offset.value) if stmt.offset is not None else 0
    except (TypeError, ValueError):
        return None
    if limit < 0 or offset < 0:
        return None
    return limit + offset


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


def _stripped_columns(table: Table) -> list[Column]:
    """Schema copy for shard tables: values were already validated and
    coerced by the primary, and shard copies carry no indexes, so
    constraints come off (autoincrement bookkeeping must not re-run)."""
    return [
        _replace(column, not_null=False, primary_key=False,
                 autoincrement=False, references=None)
        for column in table.columns
    ]


def _slabs(rows: list, nshards: int) -> list[list]:
    """Contiguous scan-order slabs; concatenation preserves scan order."""
    if not rows:
        return [[] for _ in range(nshards)]
    per = -(-len(rows) // nshards)
    return [rows[k * per:(k + 1) * per] for k in range(nshards)]


class ShardIngestHandle:
    """Buffered parallel-ingest feeder for one table.

    ``save_trial`` adds rows instead of running ``executemany`` and
    calls :meth:`flush` *after* the surrounding transaction commits —
    rows buffered here never land anywhere if the trial rolls back.
    Cross-store atomicity (primary catalog vs shard files) is a
    documented non-goal: a crash between the commit and the flush loses
    only the shard rows, which ``pending`` recovery then trims.
    """

    def __init__(self, manager: "ShardManager", table_name: str,
                 columns: Sequence[str]):
        self._manager = manager
        self.table_name = table_name
        self.columns = list(columns)
        self.rows: list[Sequence[Any]] = []

    def add_rows(self, rows) -> None:
        self.rows.extend(rows)

    def flush(self, connection=None) -> bool:
        """Write buffered rows to the shards; fall back to the primary
        (single-writer ``executemany``) when parallel ingest refuses or
        fails.  Returns True when rows went to the shards."""
        rows, self.rows = self.rows, []
        if not rows:
            return True
        if self._manager.parallel_ingest(self.table_name, self.columns, rows):
            return True
        if connection is not None:
            placeholders = ",".join("?" for _ in self.columns)
            sql = (
                f"INSERT INTO {self.table_name} "
                f"({', '.join(self.columns)}) VALUES ({placeholders})"
            )
            connection.executemany(sql, rows)
            connection.commit()
            return False
        raise OperationalError(
            f"parallel shard ingest into {self.table_name} failed and no "
            "fallback connection was provided"
        )


class ShardManager:
    """Scatter-gather coordinator attached to one primary Database."""

    def __init__(self, database: Database, nshards: int, *,
                 directory: Optional[os.PathLike | str] = None,
                 parallel: str = "auto"):
        self.database = database
        self.nshards = max(1, int(nshards))
        self.parallel = parallel          # "auto" | "on" | "off"
        self.directory = Path(directory) if directory is not None else None
        self.task_timeout: Optional[float] = None
        #: resident table -> per-shard committed row counts
        self.resident: dict[str, list[int]] = {}
        self._mem_dbs: Optional[list[Database]] = None
        self._file_dbs: Optional[list[Database]] = None
        #: derived table -> (schema_version, Table.version) at copy time
        self._derived: dict[str, tuple[int, int]] = {}
        self._generation = 0
        self._pool: Optional[WorkerPool] = None
        self._pool_generation = -1
        self._token: Optional[str] = None
        if self.directory is not None:
            self._load_meta()

    # -- attach / persistence ----------------------------------------------

    @classmethod
    def create(cls, database: Database, nshards: int,
               parallel: str = "auto") -> "ShardManager":
        """Attach a fresh manager (``PRAGMA shards(<n>)``).  File-backed
        databases persist the configuration next to the archive so it
        survives reopen; a stale meta left by an earlier configuration
        is resized through :meth:`reconfigure` (hydrating residents
        first)."""
        directory = None
        if database.wal is not None:
            directory = Path(str(database.wal.path) + ".shards")
        manager = cls(database, nshards, directory=directory,
                      parallel=parallel)
        if manager.nshards != max(1, int(nshards)):
            manager.reconfigure(nshards)
        else:
            manager._save_meta(pending=None)
        return manager

    @classmethod
    def attach(cls, database: Database) -> Optional["ShardManager"]:
        """Re-attach a persisted shard configuration on archive open."""
        if database.wal is None:
            return None
        directory = Path(str(database.wal.path) + ".shards")
        if not (directory / "meta.json").exists():
            return None
        try:
            with open(directory / "meta.json", "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            return None
        manager = cls(
            database, int(meta.get("nshards", 0)),
            directory=directory, parallel=meta.get("parallel", "auto"),
        )
        return manager

    def _meta_path(self) -> Path:
        assert self.directory is not None
        return self.directory / "meta.json"

    def _shard_path(self, index: int) -> Path:
        assert self.directory is not None
        return self.directory / f"shard-{index}.mdb"

    def _load_meta(self) -> None:
        path = self._meta_path()
        if not path.exists():
            return
        try:
            with open(path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            return
        self.nshards = max(1, int(meta.get("nshards", self.nshards)))
        self.parallel = meta.get("parallel", self.parallel)
        self.resident = {
            name: [int(c) for c in counts]
            for name, counts in (meta.get("resident") or {}).items()
        }
        pending = meta.get("pending")
        if pending:
            self._recover_pending(pending)

    def _save_meta(self, pending: Optional[dict] = None) -> None:
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": 1,
            "nshards": self.nshards,
            "parallel": self.parallel,
            "resident": self.resident,
            "pending": pending,
        }
        tmp = self._meta_path().with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, self._meta_path())

    def _recover_pending(self, pending: dict) -> None:
        """Undo a half-finished shard operation found at attach time."""
        op = pending.get("op")
        table = pending.get("table", "")
        if op == "ingest":
            # Trim every shard back to its pre-ingest watermark; a
            # worker that died pre-commit already lost its rows to the
            # shard's own WAL recovery.
            self._trim_shards(table, [int(c) for c in pending.get("counts", [])])
            _log.warning("shard_ingest_recovered", table=table)
        elif op == "hydrate":
            # The shards are still authoritative: trim the primary back
            # to its pre-hydration row count and keep residency.
            self._trim_primary(table, int(pending.get("primary_rows", 0)))
            _log.warning("shard_hydration_recovered", table=table)
        self._save_meta(pending=None)

    def _trim_shards(self, table_name: str, counts: list[int]) -> None:
        from . import wal as _wal

        self._close_file_dbs()
        for index in range(self.nshards):
            path = self._shard_path(index)
            if not path.exists():
                continue
            database = _wal.open_file_database(path)
            if database.has_table(table_name):
                keep = counts[index] if index < len(counts) else 0
                table = database.table(table_name)
                extra = list(table.rows)[keep:]
                if extra:
                    database.begin()
                    for rowid in extra:
                        database.delete(table, rowid)
                    database.commit()
            if database.wal is not None:
                database.wal.checkpoint(database)
                database.wal.close()

    def _trim_primary(self, table_name: str, keep: int) -> None:
        if not self.database.has_table(table_name):
            return
        table = self.database.table(table_name)
        extra = list(table.rows)[keep:]
        if not extra:
            return
        with self.database.txn_lock:
            self.database.begin()
            for rowid in extra:
                self.database.delete(table, rowid)
            self.database.commit()

    # -- shard database sets -------------------------------------------------

    def _ensure_mem_dbs(self) -> list[Database]:
        if self._mem_dbs is None or len(self._mem_dbs) != self.nshards:
            self._mem_dbs = [Database() for _ in range(self.nshards)]
            self._derived.clear()
            self._generation += 1
        return self._mem_dbs

    def _ensure_file_dbs(self) -> list[Database]:
        if self._file_dbs is None:
            from . import wal as _wal

            self._file_dbs = [
                _wal.open_file_database(self._shard_path(index))
                for index in range(self.nshards)
            ]
        return self._file_dbs

    def _close_file_dbs(self) -> None:
        dbs, self._file_dbs = self._file_dbs, None
        if not dbs:
            return
        for database in dbs:
            if database.wal is not None:
                try:
                    database.wal.checkpoint(database)
                except OSError:
                    pass
                database.wal.close()
                database.wal = None

    def _ensure_derived(self, table_name: str) -> None:
        key = table_name.lower()
        table = self.database.table(table_name)
        stamp = (self.database.schema_version, table.version)
        if self._derived.get(key) == stamp:
            return
        shard_dbs = self._ensure_mem_dbs()
        with _tracer.span(
            "minisql.shard.rebuild", table=table.name, shards=self.nshards
        ):
            rows = [list(row) for _rowid, row in table.scan()]
            slabs = _slabs(rows, self.nshards)
            for index, shard_db in enumerate(shard_dbs):
                if shard_db.has_table(table.name):
                    shard_db.drop_table(table.name)
                shard_db.columnar_default = table.is_columnar
                shard_table = shard_db.create_table(
                    table.name, _stripped_columns(table)
                )
                if slabs[index]:
                    shard_table.append_rows(slabs[index])
        self._derived[key] = stamp
        self._generation += 1
        self.database.stats["shard_rebuilds"] += 1
        _REBUILDS.inc()

    # -- worker pool ---------------------------------------------------------

    def _use_pool(self) -> bool:
        if self.parallel == "off":
            return False
        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        if self.parallel == "on":
            return True
        return (os.cpu_count() or 1) > 1 and self.nshards > 1

    def _ensure_pool(self) -> Optional[WorkerPool]:
        if self._pool is not None and self._pool_generation == self._generation:
            return self._pool
        self._teardown_pool()
        token = f"{os.getpid()}:{id(self)}:{self._generation}"
        # The registry entry must exist before the pool forks: workers
        # inherit it as a snapshot, so a later rebuild (which mutates
        # shard contents) must bump the generation and refork.
        _WORKER_SHARDS[token] = list(self._ensure_mem_dbs())
        self._pool = WorkerPool(
            min(self.nshards, os.cpu_count() or self.nshards),
            mp_context="fork",
        )
        self._token = token
        self._pool_generation = self._generation
        return self._pool

    def _teardown_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()
        if self._token is not None:
            _WORKER_SHARDS.pop(self._token, None)
            self._token = None
        self._pool_generation = -1

    # -- planning ------------------------------------------------------------

    def _plan_for(self, stmt: Select):
        cached = getattr(stmt, "_msql_shard_plan", None)
        if cached is not None and cached[0] == self.database.schema_version:
            return cached[1]
        outcome = build_shard_plan(self.database, stmt, self.nshards)
        try:
            stmt._msql_shard_plan = (self.database.schema_version, outcome)
        except AttributeError:
            pass
        return outcome

    def _index_bypass(self, stmt: Select, plan: _ShardPlan,
                      params: Sequence[Any]) -> bool:
        """True when an index on the primary beats re-sharded scans."""
        from .executor import (
            _can_push_order, _conjuncts, _plan_access, _select_alias_names,
        )

        table = self.database.table(plan.table)
        if not table.indexes:
            return False
        conjuncts = _conjuncts(stmt.where)
        order_by = stmt.order_by if _can_push_order(stmt) else []
        access = _plan_access(
            table, stmt.table.effective_name, conjuncts, order_by, params,
            _select_alias_names(stmt),
        )
        return access.kind != "scan" or access.ordered

    # -- query path ----------------------------------------------------------

    def try_select(self, executor, stmt: Select, params: Sequence[Any]):
        """Run ``stmt`` scatter-gather, or return None to let the
        executor run it single-process."""
        if self.nshards <= 1:
            return None
        outcome = self._plan_for(stmt)
        if outcome is None:
            return None
        if isinstance(outcome, str):
            self._hydrate_for_fallback(stmt)
            self.database.stats["shard_fallbacks"] += 1
            _FALLBACKS.inc()
            return None
        plan: _ShardPlan = outcome
        resident = plan.table in self.resident
        if not resident:
            if self._index_bypass(stmt, plan, params):
                self.database.stats["shard_bypasses"] += 1
                _BYPASSES.inc()
                return None
            self._ensure_derived(plan.table)
            shard_dbs = self._ensure_mem_dbs()
        else:
            shard_dbs = self._ensure_file_dbs()
        # Keep shard settings in step with the primary (PRAGMA compile).
        for shard_db in shard_dbs:
            shard_db.compile_enabled = self.database.compile_enabled

        self.database.stats["shard_queries"] += 1
        _QUERIES.inc()
        probe = None
        if executor._probe is not None and executor._probe.target is stmt:
            probe = executor._probe

        results = None
        if not resident and self._use_pool():
            results = self._scatter_pool(plan, params, probe)
        if results is None:
            results = self._scatter_serial(shard_dbs, plan, params, probe)

        gather_started = time.perf_counter()
        with _tracer.span("minisql.shard.gather", kind=plan.kind,
                          table=plan.table):
            columns, rows = self._gather(plan, results, params)
        if probe is not None:
            probe.steps["gather"] = {
                "rows": len(rows),
                "time": time.perf_counter() - gather_started,
            }
        return columns, rows

    def _scatter_serial(self, shard_dbs, plan: _ShardPlan,
                        params: Sequence[Any], probe):
        from .executor import Executor

        results = []
        with _tracer.span("minisql.shard.scatter", shards=self.nshards,
                          table=plan.table, mode="serial"):
            for index, shard_db in enumerate(shard_dbs):
                started = time.perf_counter()
                columns, rows = Executor(shard_db)._execute_select(
                    plan.fragment, params
                )
                if probe is not None:
                    probe.steps[f"shard{index}"] = {
                        "rows": len(rows),
                        "time": time.perf_counter() - started,
                    }
                results.append((columns, rows))
        return results

    def _scatter_pool(self, plan: _ShardPlan, params: Sequence[Any], probe):
        pool = self._ensure_pool()
        if pool is None:
            return None
        with _tracer.span("minisql.shard.scatter", shards=self.nshards,
                          table=plan.table, mode="pool"):
            # Workers parent their fragment spans under this scatter
            # span and ship them back with the results, so the exported
            # timeline shows each shard's actual execution in its own
            # worker process.
            trace_ctx = _tracer.current_context() if _tracer.enabled else None
            specs = [
                (self._token, index, plan.fragment_bytes, tuple(params),
                 trace_ctx)
                for index in range(self.nshards)
            ]
            outcomes = pool.run(_pool_worker, specs,
                                task_timeout=self.task_timeout)
        results = []
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, TaskFailure):
                # Query errors and pool deaths both re-run serially: the
                # serial pass either produces the rows or raises the
                # real (oracle-identical) error in this process.
                _log.warning(
                    "shard_pool_retry", table=plan.table,
                    error=str(outcome.error),
                    error_type=type(outcome.error).__name__,
                )
                self._teardown_pool()
                return None
            columns, rows, elapsed, spans = outcome
            if spans:
                _tracer.adopt(spans)
            if probe is not None:
                # Actual per-shard wall time, measured in the worker.
                probe.steps[f"shard{index}"] = {
                    "rows": len(rows), "time": elapsed,
                }
            results.append((columns, rows))
        self.database.stats["shard_pool_queries"] += 1
        _POOL_QUERIES.inc()
        return results

    def _gather(self, plan: _ShardPlan, shard_results,
                params: Sequence[Any]):
        from .executor import Executor

        scratch = Database()
        table = scratch.create_table(
            SCRATCH_TABLE,
            [Column(name, "NUMERIC") for name in plan.scratch_columns],
        )
        # Direct row writes: partial values must land verbatim (affinity
        # coercion would e.g. fold 2.0 -> 2); the scratch table is
        # internal, scan-only, and index-free, so bypassing _prepare is
        # safe.  Insertion in shard order keeps global scan order.
        store = table.rows
        rowid = 1
        for _columns, rows in shard_results:
            for row in rows:
                store[rowid] = list(row)
                rowid += 1
        return Executor(scratch)._execute_select(plan.merge, params)

    # -- EXPLAIN -------------------------------------------------------------

    def explain_steps(self, executor, stmt: Select, params: Sequence[Any]):
        """Shard plan rows for EXPLAIN [ANALYZE], or None when the
        statement would not route through the shards."""
        if self.nshards <= 1:
            return None
        outcome = self._plan_for(stmt)
        if not isinstance(outcome, _ShardPlan):
            return None
        plan = outcome
        resident = plan.table in self.resident
        if not resident and self._index_bypass(stmt, plan, params):
            return None
        display = self.database.table(plan.table).name
        backing = "file" if resident else "memory"
        steps = [(
            f"SCATTER {display} INTO {self.nshards} {backing.upper()} "
            "SHARDS (contiguous row slabs)", None, None, None,
        )]
        for index in range(self.nshards):
            steps.append(
                (f"SHARD {index}: SCAN {display}", f"shard{index}", None, None)
            )
        merge_kind = (
            "partial-aggregate merge" if plan.kind == "grouped"
            else "ordered concat"
        )
        steps.append((f"GATHER ({merge_kind})", "gather", None, None))
        return steps

    # -- residency: parallel ingest, hydration, locality ---------------------

    def ingest_handle(self, table_name: str,
                      columns: Sequence[str]) -> Optional[ShardIngestHandle]:
        """A buffered parallel-ingest handle, or None when shard ingest
        cannot apply (memory mode, one shard, constraint conflicts)."""
        if self.directory is None or self.nshards <= 1:
            return None
        if not self.database.has_table(table_name):
            return None
        table = self.database.table(table_name)
        key = table.name.lower()
        covered = {c.lower() for c in columns}
        for column in table.columns:
            if column.lower_name in covered:
                continue
            if column.autoincrement or column.primary_key or column.not_null:
                return None  # would need per-row constraint machinery
        if key not in self.resident and len(table) > 0:
            # Rows already live in the primary; splitting new rows off to
            # the shards would make neither store authoritative.
            return None
        return ShardIngestHandle(self, table.name, columns)

    def parallel_ingest(self, table_name: str, columns: Sequence[str],
                        rows: Sequence[Sequence[Any]]) -> bool:
        """Scatter ``rows`` across the shard files, one writer process
        per shard.  Returns False when the caller must use the primary
        single-writer path instead."""
        if self.directory is None or self.nshards <= 1 or not rows:
            return False
        table = self.database.table(table_name)
        key = table.name.lower()
        if key not in self.resident and len(table) > 0:
            return False

        positions = {c.lower_name: i for i, c in enumerate(table.columns)}
        try:
            targets = [positions[c.lower()] for c in columns]
        except KeyError:
            return False
        width = len(table.columns)
        affinities = [c.affinity for c in table.columns]
        names = [c.name for c in table.columns]
        defaults = [c.default for c in table.columns]
        full_rows: list[list[Any]] = []
        for row in rows:
            full = list(defaults)
            for position, value in zip(targets, row):
                full[position] = value
            # Same lenient affinity coercion the primary's _prepare
            # applies, so a later hydration round-trips identical values.
            full_rows.append([
                coerce(value, affinities[i], names[i]) if value is not None
                else None
                for i, value in enumerate(full)
            ])

        watermarks = self._prepare_shard_schema(table)
        slabs = _slabs(full_rows, self.nshards)
        self._save_meta(pending={
            "op": "ingest", "table": key, "counts": watermarks,
        })
        specs = [
            (str(self._shard_path(index)), table.name, slabs[index], index)
            for index in range(self.nshards)
        ]
        started = time.perf_counter()
        with _tracer.span("minisql.shard.ingest", table=table.name,
                          shards=self.nshards, rows=len(full_rows)):
            outcomes = run_tasks(
                _ingest_worker, specs, workers=self.nshards,
                task_timeout=self.task_timeout, mp_context="fork",
            )
        failures = [o for o in outcomes if isinstance(o, TaskFailure)]
        if failures:
            _log.warning(
                "shard_ingest_rollback", table=table.name,
                error=str(failures[0].error),
                error_type=type(failures[0].error).__name__,
            )
            self._trim_shards(table.name, watermarks)
            self._save_meta(pending=None)
            return False
        self.resident[key] = [
            watermarks[index] + len(slabs[index])
            for index in range(self.nshards)
        ]
        self._save_meta(pending=None)
        self._derived.pop(key, None)
        self._generation += 1
        self.database.stats["shard_parallel_ingests"] += 1
        _INGESTS.inc()
        _log.info(
            "shard_ingest", table=table.name, rows=len(full_rows),
            shards=self.nshards,
            seconds=round(time.perf_counter() - started, 4),
        )
        return True

    def _prepare_shard_schema(self, table: Table) -> list[int]:
        """Create the table in every shard file (serial, coordinator
        side, so DDL/WAL logic stays in one process) and return current
        per-shard row counts as rollback watermarks."""
        from . import wal as _wal
        from .dump import _create_table_sql

        self._close_file_dbs()
        watermarks: list[int] = []
        for index in range(self.nshards):
            database = _wal.open_file_database(self._shard_path(index))
            if database.has_table(table.name):
                watermarks.append(len(database.table(table.name)))
            else:
                database.columnar_default = table.is_columnar
                shard_table = database.create_table(
                    table.name, _stripped_columns(table)
                )
                database.wal_log(
                    "ddl", _create_table_sql(shard_table, database)
                )
                watermarks.append(0)
            if database.wal is not None:
                # The checkpoint trailer also records columnar storage,
                # so recovery restores the layout.
                database.wal.checkpoint(database)
                database.wal.close()
        return watermarks

    def hydrate(self, table_name: str) -> None:
        """Move a resident table's rows back into the primary (in shard
        order, preserving global scan order) so any statement the
        splitter cannot route sees every row."""
        key = table_name.lower()
        if key not in self.resident:
            return
        if self.database.in_transaction:
            raise OperationalError(
                f"cannot hydrate sharded table {table_name} inside a "
                "transaction; run the statement outside it or keep the "
                "query shard-routable"
            )
        table = self.database.table(table_name)
        shard_dbs = self._ensure_file_dbs()
        rows: list[list[Any]] = []
        for shard_db in shard_dbs:
            if shard_db.has_table(table.name):
                rows.extend(
                    list(row) for _rowid, row in
                    shard_db.table(table.name).scan()
                )
        with _tracer.span("minisql.shard.hydrate", table=table.name,
                          rows=len(rows)):
            self._save_meta(pending={
                "op": "hydrate", "table": key, "primary_rows": len(table),
            })
            with self.database.txn_lock:
                own_bulk = not self.database.bulk_mode
                if own_bulk:
                    self.database.begin_bulk()
                try:
                    self.database.begin()
                    try:
                        self.database.bulk_insert_rows(table, rows)
                        self.database.commit()
                    except BaseException:
                        self.database.rollback()
                        raise
                finally:
                    if own_bulk:
                        self.database.end_bulk()
            for shard_db in shard_dbs:
                if shard_db.has_table(table.name):
                    shard_db.drop_table(table.name)
                    shard_db.wal_log("ddl", f"DROP TABLE {table.name};")
            self._close_file_dbs()
            del self.resident[key]
            self._save_meta(pending=None)
        self._derived.pop(key, None)
        self._generation += 1
        self.database.stats["shard_hydrations"] += 1
        _HYDRATIONS.inc()
        _log.info("shard_hydrate", table=table.name, rows=len(rows))

    def _hydrate_for_fallback(self, stmt: Select) -> None:
        if not self.resident:
            return
        for name in sorted(_select_tables(stmt)):
            if name in self.resident:
                self.hydrate(name)

    def ensure_local(self, statement: Statement) -> None:
        """Hydrate resident tables a statement needs in the primary.

        Called by the connection before dispatch (and before any lock is
        taken — hydration acquires ``txn_lock`` itself).  Shard-routable
        SELECTs hydrate nothing; everything else touching a resident
        table re-homes it first.
        """
        if not self.resident:
            return
        if isinstance(statement, Explain):
            if not statement.analyze:
                return  # plain EXPLAIN executes nothing
            statement = statement.statement
        if isinstance(statement, Select):
            touched = [
                name for name in _select_tables(statement)
                if name in self.resident
            ]
            if not touched:
                return
            plan = self._plan_for(statement)
            if (isinstance(plan, _ShardPlan) and len(touched) == 1
                    and plan.table == touched[0] and self.nshards > 1):
                return
            for name in touched:
                self.hydrate(name)
            return
        if isinstance(statement, Pragma):
            if statement.name == "columnar" and statement.argument:
                target = str(statement.argument).split()[0].lower()
                if target in self.resident:
                    self.hydrate(target)
            return
        table_name = getattr(statement, "table", None)
        if isinstance(statement, Insert):
            table_name = statement.table
        if isinstance(table_name, str) and table_name.lower() in self.resident:
            self.hydrate(table_name)

    # -- lifecycle / control -------------------------------------------------

    def reconfigure(self, nshards: int,
                    parallel: Optional[str] = None) -> None:
        nshards = max(1, int(nshards))
        if parallel is not None:
            self.parallel = parallel
        if nshards != self.nshards:
            # Shard files hold a fixed partition; re-home resident rows
            # before changing the slab count.
            for name in list(self.resident):
                self.hydrate(name)
            self.nshards = nshards
            self._mem_dbs = None
            self._file_dbs = None
            self._derived.clear()
            self._generation += 1
        self._teardown_pool()
        self._save_meta(pending=None)

    def set_parallel(self, policy: str) -> None:
        self.parallel = policy
        if policy == "off":
            self._teardown_pool()
        self._save_meta(pending=None)

    def status_rows(self) -> list[tuple[str, Any]]:
        return [
            ("enabled", 1),
            ("shards", self.nshards),
            ("parallel", self.parallel),
            ("mode", "file" if self.directory is not None else "memory"),
            ("derived", ",".join(sorted(self._derived))),
            ("resident", ",".join(sorted(self.resident))),
            ("pool_active", int(self._pool is not None)),
        ]

    def on_connection_close(self) -> None:
        """Per-connection cleanup: drop the worker pool (it reforks
        lazily if another connection keeps querying)."""
        self._teardown_pool()

    def close(self) -> None:
        self._teardown_pool()
        self._close_file_dbs()
        self._mem_dbs = None
        self._derived.clear()

    def detach(self) -> None:
        """``PRAGMA shards(off)``: hydrate everything, close, remove the
        persisted configuration."""
        for name in list(self.resident):
            self.hydrate(name)
        self.close()
        if self.directory is not None:
            try:
                self._meta_path().unlink()
            except OSError:
                pass


def _select_tables(stmt: Select) -> set[str]:
    """Every table name a SELECT tree references (joins, compound arms,
    IN-subqueries)."""
    out: set[str] = set()

    def visit(node: Select) -> None:
        if node.table is not None:
            out.add(node.table.name.lower())
        for join in node.joins:
            out.add(join.table.name.lower())
        for root in _select_roots(node):
            for sub in walk(root):
                if isinstance(sub, Subquery):
                    visit(sub.select)
        if node.compound is not None:
            visit(node.compound[1])

    visit(stmt)
    return out
