"""In-memory storage engine for MiniSQL: tables, rows, indexes, undo log.

Rows are stored as Python lists inside a per-table list; a row's identity
is its position-independent ``rowid``.  Secondary hash indexes map a
tuple of column values to the set of rowids holding that tuple; they
accelerate equality lookups (the planner consults them) and enforce
UNIQUE constraints.  Ordered (``USING BTREE``) indexes additionally keep
a sorted key array so the planner can answer range predicates and push
``ORDER BY ... LIMIT`` into the index.

Transactions are implemented with an undo log: every mutation appends an
inverse operation, and ROLLBACK replays the log backwards.  This keeps
the hot path (bulk INSERT during profile load) allocation-light, which
matters for PerfDMF's 1.6M-datapoint trials.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import defaultdict, deque
from collections.abc import MutableMapping
from itertools import islice
from contextlib import contextmanager
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Iterable, Iterator, Optional

from .ast_nodes import ColumnDef
from .errors import IntegrityError, OperationalError, ProgrammingError
from .types import coerce, sort_key

#: Sentinel marking a column omitted from an INSERT column list.  Unlike
#: an explicit NULL, an omitted column receives its DEFAULT (and NOT
#: NULL is checked after defaulting), matching standard SQL.
OMITTED = object()


@dataclass
class Column:
    """Schema entry for one table column."""

    name: str
    affinity: str
    not_null: bool = False
    primary_key: bool = False
    autoincrement: bool = False
    default: Any = None
    references: Optional[tuple[str, str]] = None

    @property
    def lower_name(self) -> str:
        return self.name.lower()


class Index:
    """A hash index over one or more columns.

    ``unique`` indexes reject duplicate non-NULL keys.  Keys containing a
    NULL are never considered duplicates (SQL UNIQUE semantics).
    """

    #: Access-method tag: ``"hash"`` (equality only) or ``"btree"`` (ordered).
    method = "hash"

    def __init__(self, name: str, table: "Table", columns: list[str], unique: bool):
        self.name = name
        self.table = table
        self.column_positions = [table.position_of(c) for c in columns]
        self.column_names = [table.columns[p].name for p in self.column_positions]
        self.unique = unique
        self.map: dict[tuple[Any, ...], set[int]] = {}
        #: Bulk-load suspension: while ``stale`` the index contents are
        #: untrustworthy — row mutations skip it and the planner must not
        #: consult it.  Cleared by ``rebuild()`` at the end of the batch.
        self.stale = False

    def key_for(self, row: list[Any]) -> tuple[Any, ...]:
        return tuple(row[p] for p in self.column_positions)

    def insert(self, rowid: int, row: list[Any]) -> None:
        key = self.key_for(row)
        bucket = self.map.get(key)
        if bucket is None:
            self.map[key] = {rowid}
            return
        if self.unique and None not in key and bucket:
            raise IntegrityError(
                f"UNIQUE constraint failed: "
                f"{self.table.name}({', '.join(self.column_names)})"
            )
        bucket.add(rowid)

    def check(self, row: list[Any]) -> None:
        """Raise if inserting ``row`` would violate uniqueness."""
        if not self.unique:
            return
        key = self.key_for(row)
        if None in key:
            return
        if self.map.get(key):
            raise IntegrityError(
                f"UNIQUE constraint failed: "
                f"{self.table.name}({', '.join(self.column_names)})"
            )

    def remove(self, rowid: int, row: list[Any]) -> None:
        key = self.key_for(row)
        bucket = self.map.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self.map[key]

    def lookup(self, key: tuple[Any, ...]) -> set[int]:
        return self.map.get(key, set())

    def rebuild(self) -> None:
        if self.unique:
            self.map.clear()
            for rowid, row in self.table.rows.items():
                self.insert(rowid, row)
            self.stale = False
            return
        # Non-unique rebuild is the bulk-load hot path (one pass at batch
        # end instead of N per-row inserts), so build the map with the
        # tightest loop available rather than going through insert().
        positions = self.column_positions
        rebuilt: defaultdict[tuple[Any, ...], set[int]] = defaultdict(set)
        if len(positions) == 1:
            position = positions[0]
            for rowid, row in self.table.rows.items():
                rebuilt[(row[position],)].add(rowid)
        else:
            getter = itemgetter(*positions)
            for rowid, row in self.table.rows.items():
                rebuilt[getter(row)].add(rowid)
        self.map = dict(rebuilt)  # plain dict: lookups must not grow it
        self.stale = False


class SortedIndex(Index):
    """An ordered index: the hash map plus a lazily-sorted key array.

    Equality probes and UNIQUE enforcement reuse the inherited hash map;
    range predicates and ``ORDER BY`` pushdown walk a parallel pair of
    lists — ordering keys (``sort_key`` tuples, totally ordered across
    NULL/number/text) and the raw keys they stand for.

    The array is maintained append-mostly: in-order inserts extend it
    directly, while out-of-order mutations merely mark it dirty and the
    next range scan re-sorts once from the hash map.  Bulk loads
    (PerfDMF's million-row profile imports) therefore stay O(n log n)
    overall instead of paying a per-row insertion sort.
    """

    method = "btree"

    def __init__(self, name: str, table: "Table", columns: list[str], unique: bool):
        super().__init__(name, table, columns, unique)
        self._okeys: list[tuple] = []  # ordering keys, sorted when clean
        self._keys: list[tuple[Any, ...]] = []  # raw keys, parallel to _okeys
        self._dirty = False

    @staticmethod
    def order_key(key: tuple[Any, ...]) -> tuple:
        return tuple(sort_key(value) for value in key)

    def insert(self, rowid: int, row: list[Any]) -> None:
        key = self.key_for(row)
        new_key = key not in self.map
        super().insert(rowid, row)
        if new_key:
            okey = self.order_key(key)
            self._okeys.append(okey)
            self._keys.append(key)
            if not self._dirty and len(self._okeys) > 1 and okey < self._okeys[-2]:
                self._dirty = True

    def remove(self, rowid: int, row: list[Any]) -> None:
        key = self.key_for(row)
        super().remove(rowid, row)
        if key not in self.map:
            # The array now holds a stale entry; purge lazily.
            self._dirty = True

    def rebuild(self) -> None:
        self._okeys.clear()
        self._keys.clear()
        self._dirty = False
        super().rebuild()
        if not self.unique and self.map:
            # The fast non-unique rebuild fills only the hash map; defer
            # the sorted arrays to the next range scan (lazy re-sort).
            self._dirty = True

    def _ensure_sorted(self) -> None:
        if not self._dirty:
            return
        pairs = sorted((self.order_key(key), key) for key in self.map)
        self._okeys = [okey for okey, _ in pairs]
        self._keys = [key for _, key in pairs]
        self._dirty = False

    def range_rowids(
        self,
        prefix: tuple[Any, ...] = (),
        lo: Optional[tuple[Any, bool]] = None,
        hi: Optional[tuple[Any, bool]] = None,
        descending: bool = False,
        include_null: bool = False,
    ) -> Iterator[int]:
        """Rowids whose key equals ``prefix`` on the leading columns and
        falls within ``lo``/``hi`` on the next column, in index order.

        ``lo``/``hi`` are ``(value, inclusive)`` pairs or ``None`` for
        unbounded.  NULLs in the bounded column are excluded unless
        ``include_null`` (SQL range predicates never match NULL; pure
        ORDER BY pushdown wants every row).

        Bound probes extend an ordering-key component with a trailing
        ``True``: tuples compare element-wise, so the extended probe
        sorts immediately after every entry sharing that component —
        an exclusive lower / inclusive upper bound without sentinels.
        """
        self._ensure_sorted()
        pre = self.order_key(prefix)
        if lo is not None:
            component = sort_key(lo[0])
            probe_lo = pre + ((component,) if lo[1] else (component + (True,),))
        elif include_null:
            probe_lo = pre
        else:
            probe_lo = pre + (sort_key(None) + (True,),)
        start = bisect_left(self._okeys, probe_lo)
        if hi is not None:
            component = sort_key(hi[0])
            probe_hi = pre + ((component + (True,),) if hi[1] else (component,))
            end = bisect_left(self._okeys, probe_hi, start)
        elif pre:
            probe_end = pre[:-1] + (pre[-1] + (True,),)
            end = bisect_left(self._okeys, probe_end, start)
        else:
            end = len(self._okeys)
        positions = range(start, end)
        for i in reversed(positions) if descending else positions:
            bucket = self.map.get(self._keys[i])
            if bucket:
                yield from sorted(bucket)


class Table:
    """One table: schema + row store + attached indexes."""

    #: Storage layout marker; :class:`ColumnTable` overrides to True.
    #: Kept as a plain attribute so WAL/dump code can test it without
    #: importing the columnar machinery.
    is_columnar = False

    def __init__(self, name: str, columns: list[Column]):
        self.name = name
        self.columns = columns
        self.rows: dict[int, list[Any]] = {}
        self.indexes: dict[str, Index] = {}
        self._positions = {c.lower_name: i for i, c in enumerate(columns)}
        self._next_rowid = 1
        self.last_autoincrement = 0
        #: Data-version counter: bumped on every row mutation and column
        #: addition.  The shard manager keys its derived per-shard
        #: copies on (schema_version, version) to invalidate lazily.
        self.version = 0
        #: True while the table is inside an active bulk load (some of
        #: its secondary indexes may be suspended/stale).
        self.bulk_active = False
        # implicit unique index for single-column INTEGER PRIMARY KEY
        self._pk_positions = [
            i for i, c in enumerate(columns) if c.primary_key
        ]

    # -- schema ------------------------------------------------------------

    def position_of(self, column_name: str) -> int:
        try:
            return self._positions[column_name.lower()]
        except KeyError:
            raise OperationalError(
                f"table {self.name} has no column named {column_name}"
            ) from None

    def has_column(self, column_name: str) -> bool:
        return column_name.lower() in self._positions

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def add_column(self, column: Column) -> None:
        if self.has_column(column.name):
            raise OperationalError(
                f"duplicate column name: {column.name} in table {self.name}"
            )
        self.columns.append(column)
        self._positions[column.lower_name] = len(self.columns) - 1
        # Rebind rather than append in place: snapshot clones share row
        # lists with the live table (update_row already replaces lists),
        # so widening must produce fresh lists too.
        rows = self.rows
        for rowid, row in list(rows.items()):
            rows[rowid] = row + [column.default]
        self.version += 1

    # -- row operations ------------------------------------------------------

    def next_rowid(self) -> int:
        rowid = self._next_rowid
        self._next_rowid += 1
        return rowid

    def peek_rowid(self) -> int:
        """The rowid the next inserted row will receive (bulk watermark)."""
        return self._next_rowid

    def insert_row(self, row: list[Any]) -> int:
        """Validate constraints, apply affinity, store; returns rowid."""
        if len(row) != len(self.columns):
            raise ProgrammingError(
                f"table {self.name} has {len(self.columns)} columns but "
                f"{len(row)} values were supplied"
            )
        prepared = self._prepare(row)
        for index in self.indexes.values():
            if not index.stale:
                index.check(prepared)
        rowid = self.next_rowid()
        self.rows[rowid] = prepared
        for index in self.indexes.values():
            if not index.stale:
                index.insert(rowid, prepared)
        self.version += 1
        return rowid

    # -- bulk load -----------------------------------------------------------

    def suspend_secondary(self) -> int:
        """Enter bulk load: mark non-unique indexes stale.

        Stale indexes receive no per-row maintenance and must not be
        consulted by the planner; unique indexes stay live so constraint
        violations are still detected at the offending row.  Returns the
        number of indexes suspended.
        """
        suspended = 0
        for index in self.indexes.values():
            if not index.unique and not index.stale:
                index.stale = True
                suspended += 1
        self.bulk_active = True
        return suspended

    def finish_bulk(self) -> int:
        """Leave bulk load: rebuild every suspended index once.

        This is the single index-rebuild point that replaces N per-row
        inserts; returns the number of indexes rebuilt.
        """
        rebuilt = 0
        for index in self.indexes.values():
            if index.stale:
                index.rebuild()
                rebuilt += 1
        self.bulk_active = False
        return rebuilt

    def append_rows(self, rows: Iterable[list[Any]]) -> int:
        """Bulk append: same constraints as :meth:`insert_row`, but with
        per-cell work hoisted out of the per-row loop.

        Stale (suspended) indexes are skipped entirely.  The whole batch
        is first screened column-wise (:meth:`_prepare_batch`); when the
        live indexes are plain unique hash indexes whose batch keys are
        collision-free and NULL-free, index maintenance collapses to one
        dict update per index.  Any condition the fast paths cannot
        prove falls back to per-row handling, which raises at exactly
        the offending row.  Returns the number of rows appended.
        """
        batch = rows if isinstance(rows, list) else list(rows)
        if not batch:
            return 0
        width = len(self.columns)
        for row in batch:
            if len(row) != width:
                raise ProgrammingError(
                    f"table {self.name} has {width} columns but "
                    f"{len(row)} values were supplied"
                )
        live = [index for index in self.indexes.values() if not index.stale]
        prepared = self._prepare_batch(batch)
        if prepared is None:
            prepared = [self._prepare(list(row)) for row in batch]
        if all(index.unique and type(index) is Index for index in live):
            index_keys: list[tuple[Index, list[tuple[Any, ...]]]] = []
            provable = True
            for index in live:
                positions = index.column_positions
                if len(positions) == 1:
                    p = positions[0]
                    keys = [(row[p],) for row in prepared]
                else:
                    getter = itemgetter(*positions)
                    keys = list(map(getter, prepared))
                key_set = set(keys)
                if (
                    len(key_set) != len(keys)
                    or (index.map.keys() & key_set)
                    or any(None in k for k in keys)
                ):
                    provable = False  # collision or NULL key: go per-row
                    break
                index_keys.append((index, keys))
            if provable:
                start = self._next_rowid
                stop = start + len(prepared)
                self.rows.update(zip(range(start, stop), prepared))
                self._next_rowid = stop
                for index, keys in index_keys:
                    index.map.update(
                        (key, {rowid})
                        for key, rowid in zip(keys, range(start, stop))
                    )
                self.version += 1
                return len(prepared)
        store = self.rows
        count = 0
        for row in prepared:
            for index in live:
                index.check(row)
            rowid = self.next_rowid()
            store[rowid] = row
            for index in live:
                index.insert(rowid, row)
            count += 1
        self.version += 1
        return count

    def _prepare_batch(self, rows: list) -> Optional[list[list[Any]]]:
        """Column-screened batch prepare.

        When every value in a column already has exactly the Python type
        its affinity stores (int for INTEGER, float for REAL, str for
        TEXT), per-cell coercion, NULL handling, and default logic are
        all no-ops and the rows can be stored as-is.  Returns None when
        any column needs the per-row path (mixed types, NULLs, omitted
        values, other affinities).
        """
        columns = self.columns
        for i, column in enumerate(columns):
            kinds = set(map(type, [row[i] for row in rows]))
            affinity = column.affinity
            if affinity == "INTEGER":
                if kinds != {int}:
                    return None
            elif affinity == "REAL":
                if kinds != {float}:
                    return None
            elif affinity == "TEXT":
                if kinds != {str}:
                    return None
            else:
                return None
        if type(rows[0]) is not list:
            rows = [list(row) for row in rows]
        for position in self._pk_positions:
            if columns[position].affinity == "INTEGER":
                top = max(row[position] for row in rows)
                if top > self.last_autoincrement:
                    self.last_autoincrement = top
        return rows

    def _is_rowid_column(self, column: Column) -> bool:
        return column.autoincrement or (
            column.primary_key
            and column.affinity == "INTEGER"
            and len(self._pk_positions) == 1
        )

    def _prepare(self, row: list[Any]) -> list[Any]:
        prepared = list(row)
        for i, column in enumerate(self.columns):
            value = prepared[i]
            if value is OMITTED:
                if self._is_rowid_column(column):
                    value = self.last_autoincrement + 1
                elif column.default is not None:
                    value = column.default
                elif column.not_null:
                    raise IntegrityError(
                        f"NOT NULL constraint failed: {self.name}.{column.name}"
                    )
                else:
                    value = None
            elif value is None:
                # Explicit NULL: integer primary keys auto-assign (sqlite
                # semantics); NOT NULL columns reject it; defaults do NOT
                # apply.
                if self._is_rowid_column(column):
                    value = self.last_autoincrement + 1
                elif column.not_null:
                    raise IntegrityError(
                        f"NOT NULL constraint failed: {self.name}.{column.name}"
                    )
            if value is not None:
                value = coerce(value, column.affinity, f"{self.name}.{column.name}")
            if (
                column.affinity == "INTEGER"
                and column.primary_key
                and isinstance(value, int)
                and value > self.last_autoincrement
            ):
                self.last_autoincrement = value
            prepared[i] = value
        return prepared

    def delete_row(self, rowid: int) -> list[Any]:
        row = self.rows.pop(rowid)
        for index in self.indexes.values():
            if not index.stale:
                index.remove(rowid, row)
        self.version += 1
        return row

    def update_row(self, rowid: int, new_values: dict[int, Any]) -> list[Any]:
        """Apply ``{position: value}`` updates; returns the OLD row copy."""
        row = self.rows[rowid]
        old = list(row)
        candidate = list(row)
        for position, value in new_values.items():
            column = self.columns[position]
            if value is None and column.not_null:
                raise IntegrityError(
                    f"NOT NULL constraint failed: {self.name}.{column.name}"
                )
            if value is not None:
                value = coerce(value, column.affinity, f"{self.name}.{column.name}")
            candidate[position] = value
        for index in self.indexes.values():
            if index.stale:
                continue
            # Only re-check indexes whose key changed.
            if index.key_for(old) != index.key_for(candidate):
                index.remove(rowid, old)
                try:
                    index.check(candidate)
                except IntegrityError:
                    index.insert(rowid, old)
                    raise
                index.insert(rowid, candidate)
        self.rows[rowid] = candidate
        self.version += 1
        return old

    def restore_row(self, rowid: int, row: list[Any]) -> None:
        """Undo helper: put a deleted row back verbatim."""
        self.rows[rowid] = row
        for index in self.indexes.values():
            if not index.stale:
                index.insert(rowid, row)
        self.version += 1

    def apply_raw_update(self, rowid: int, pairs: Iterable[tuple[int, Any]]) -> None:
        """WAL-replay helper: overwrite cells without constraint checks.

        Indexes are not maintained — recovery rebuilds them wholesale
        afterwards.  Writing back through ``self.rows`` makes the update
        stick for column-store tables, whose row reads are materialised
        copies rather than the backing storage.
        """
        row = self.rows.get(rowid)
        if row is None:
            return
        # Build a fresh list instead of poking the stored one: snapshot
        # clones share row lists with the live store, and replica replay
        # runs this concurrently with pinned snapshot reads.
        row = list(row)
        for position, value in pairs:
            row[position] = value
        self.rows[rowid] = row
        self.version += 1

    def scan(self) -> Iterator[tuple[int, list[Any]]]:
        return iter(self.rows.items())

    def scan_batches(
        self,
        batch_size: int = 1024,
        positions: Optional[tuple[int, ...]] = None,
    ) -> Iterator[list]:
        """Yield rows in chunks for the compiled execution pipeline.

        With ``positions`` the scan projects each row down to just those
        columns (as a tuple) before handing it out — column-projection
        pushdown, so a ``SELECT stddev(exclusive)`` over a 10-column
        table never materialises the other 9 values.  Without it the
        chunks hold the stored row lists themselves; callers must not
        mutate them.
        """
        it = iter(self.rows.values())
        if positions is None:
            while True:
                chunk = list(islice(it, batch_size))
                if not chunk:
                    return
                yield chunk
        else:
            if len(positions) == 1:
                p = positions[0]

                def project(row: list[Any]) -> tuple:
                    return (row[p],)
            else:
                project = itemgetter(*positions)
            while True:
                chunk = [project(row) for row in islice(it, batch_size)]
                if not chunk:
                    return
                yield chunk

    def __len__(self) -> int:
        return len(self.rows)


class ColumnData:
    """Typed storage for one column of a :class:`ColumnTable`.

    Layout by affinity::

        INTEGER / BOOLEAN  -> kind "i": array('q') + NULL byte-map
        REAL               -> kind "f": array('d') + NULL byte-map
        TEXT               -> kind "t": plain list (str/None guaranteed
                                        by affinity coercion)
        anything else      -> kind "o": plain list, numeric purity
                                        tracked incrementally

    MiniSQL's lenient affinity rules mean an INTEGER column may legally
    hold a non-integral float or an unconvertible string; such values
    cannot live in the typed array, so they go into the ``exc`` escape
    hatch (slot -> value) and the column loses *purity*.  The vectorized
    execution paths only engage on pure columns; everything still reads
    and writes correctly through :meth:`get`/:meth:`set` either way.

    The NULL map is a byte-per-slot bytearray rather than a packed
    bitmap: in pure Python the 8x memory trade buys O(1) unshifted
    access, and a byte per row is still ~50x smaller than a boxed float.
    """

    __slots__ = ("kind", "data", "nulls", "null_count", "exc", "numeric_only")

    def __init__(self, affinity: str):
        if affinity in ("INTEGER", "BOOLEAN"):
            self.kind = "i"
            self.data: Any = array("q")
        elif affinity == "REAL":
            self.kind = "f"
            self.data = array("d")
        elif affinity == "TEXT":
            self.kind = "t"
            self.data = []
        else:
            self.kind = "o"
            self.data = []
        self.nulls = bytearray()
        self.null_count = 0
        self.exc: dict[int, Any] = {}
        self.numeric_only = True

    def __len__(self) -> int:
        return len(self.data)

    def copy(self) -> "ColumnData":
        """Slab-level copy for snapshot clones: typed arrays memcpy,
        NULL maps and escape hatches copy shallowly (values immutable)."""
        clone = ColumnData.__new__(ColumnData)
        clone.kind = self.kind
        if self.kind in ("i", "f"):
            clone.data = array(self.data.typecode, self.data)
        else:
            clone.data = list(self.data)
        clone.nulls = bytearray(self.nulls)
        clone.null_count = self.null_count
        clone.exc = dict(self.exc)
        clone.numeric_only = self.numeric_only
        return clone

    @property
    def pure(self) -> bool:
        """True when every stored value matches the vectorized fast-path
        contract: int/float/None for "i"/"f"/"o", str/None for "t"."""
        if self.kind == "t":
            return True
        if self.kind == "o":
            return self.numeric_only
        return not self.exc

    def append(self, value: Any) -> None:
        kind = self.kind
        if kind == "t":
            self.data.append(value)
            return
        if kind == "o":
            self.data.append(value)
            if (
                self.numeric_only
                and value is not None
                and not isinstance(value, (int, float))
            ):
                self.numeric_only = False
            return
        if value is None:
            self.data.append(0)
            self.nulls.append(1)
            self.null_count += 1
            return
        if kind == "i" and type(value) is int:
            try:
                self.data.append(value)
            except OverflowError:  # beyond 64-bit: keep the Python int
                self.exc[len(self.data)] = value
                self.data.append(0)
        elif kind == "f" and type(value) is float:
            self.data.append(value)
        else:
            self.exc[len(self.data)] = value
            self.data.append(0)
        self.nulls.append(0)

    def append_many(self, values: Iterable[Any]) -> None:
        values = values if isinstance(values, (list, tuple)) else list(values)
        kind = self.kind
        if kind == "t":
            self.data.extend(values)
            return
        if kind == "o":
            self.data.extend(values)
            if self.numeric_only:
                for value in values:
                    if value is not None and not isinstance(value, (int, float)):
                        self.numeric_only = False
                        break
            return
        start = len(self.nulls)
        clean = all(type(v) is int for v in values) if kind == "i" else all(
            type(v) is float for v in values
        )
        if clean:
            try:
                self.data.extend(values)
                self.nulls.extend(b"\x00" * len(values))
                return
            except OverflowError:
                del self.data[start:]  # roll back the partial extend
        for value in values:
            self.append(value)

    def get(self, slot: int) -> Any:
        if self.kind in ("t", "o"):
            return self.data[slot]
        if self.nulls[slot]:
            return None
        if self.exc:
            value = self.exc.get(slot, _MISSING)
            if value is not _MISSING:
                return value
        return self.data[slot]

    def set(self, slot: int, value: Any) -> None:
        kind = self.kind
        if kind == "t":
            self.data[slot] = value
            return
        if kind == "o":
            self.data[slot] = value
            if (
                self.numeric_only
                and value is not None
                and not isinstance(value, (int, float))
            ):
                self.numeric_only = False
            return
        if value is None:
            if not self.nulls[slot]:
                self.nulls[slot] = 1
                self.null_count += 1
            self.exc.pop(slot, None)
            return
        if self.nulls[slot]:
            self.nulls[slot] = 0
            self.null_count -= 1
        if kind == "i" and type(value) is int:
            try:
                self.data[slot] = value
                self.exc.pop(slot, None)
                return
            except OverflowError:
                pass
        elif kind == "f" and type(value) is float:
            self.data[slot] = value
            self.exc.pop(slot, None)
            return
        self.exc[slot] = value

    def materialize(self, live: bytearray, dead_count: int) -> list[Any]:
        """All live values in slot order, as a fresh list."""
        if self.kind in ("t", "o"):
            if not dead_count:
                return list(self.data)
            return [v for v, alive in zip(self.data, live) if alive]
        out = self.data.tolist()
        if self.exc:
            for slot, value in self.exc.items():
                out[slot] = value
        if self.null_count:
            out = [None if n else v for n, v in zip(self.nulls, out)]
        if dead_count:
            out = [v for v, alive in zip(out, live) if alive]
        return out


_MISSING = object()


class _ColumnRowsView(MutableMapping):
    """Dict-shaped facade over a :class:`ColumnTable`'s column store.

    Everything that treats ``table.rows`` as a ``{rowid: row}`` mapping —
    the undo log, WAL replay, checkpoint metadata, index rebuilds — works
    unchanged through this view.  Reads materialise fresh row lists;
    in-place mutation of a returned row does *not* write through (use
    ``view[rowid] = row`` or :meth:`Table.apply_raw_update`).
    """

    __slots__ = ("_t",)

    def __init__(self, table: "ColumnTable"):
        self._t = table

    def __len__(self) -> int:
        return len(self._t._slot_of)

    def __iter__(self) -> Iterator[int]:
        t = self._t
        if not t._dead_count:
            return iter(t._slot_rowids)
        return (r for r, alive in zip(t._slot_rowids, t._live) if alive)

    def __contains__(self, rowid: object) -> bool:
        return rowid in self._t._slot_of

    def __getitem__(self, rowid: int) -> list[Any]:
        t = self._t
        slot = t._slot_of[rowid]
        return [col.get(slot) for col in t._cols]

    def __setitem__(self, rowid: int, row: list[Any]) -> None:
        self._t._cstore(rowid, row)

    def __delitem__(self, rowid: int) -> None:
        self._t._cdelete(rowid)

    def pop(self, rowid: int, *default: Any) -> Any:
        try:
            return self._t._cdelete(rowid)
        except KeyError:
            if default:
                return default[0]
            raise

    def update(self, other=(), **kwargs) -> None:  # type: ignore[override]
        t = self._t
        pairs = list(other.items()) if hasattr(other, "items") else list(other)
        if pairs and not any(rowid in t._slot_of for rowid, _ in pairs):
            # Pure append (the bulk-load fast path): transpose once and
            # extend each column, instead of per-cell dispatch.
            base = len(t._slot_rowids)
            rowids = [rowid for rowid, _ in pairs]
            t._slot_rowids.extend(rowids)
            for offset, rowid in enumerate(rowids):
                t._slot_of[rowid] = base + offset
            t._live.extend(b"\x01" * len(rowids))
            for col, values in zip(t._cols, zip(*[row for _, row in pairs])):
                col.append_many(values)
        else:
            for rowid, row in pairs:
                t._cstore(rowid, row)
        for rowid, row in kwargs.items():
            t._cstore(rowid, row)

    def items(self):  # bulk: avoid per-key dict lookups
        return list(self._t.scan())

    def values(self):
        return [row for _, row in self._t.scan()]


class ColumnTable(Table):
    """Column-store table: per-column typed vectors instead of row lists.

    Scan order must match the row store's dict-insertion order exactly
    (delete + reinsert moves a row to the end), so rows live in
    append-ordered *slots* with tombstoned deletes; slots are only
    reclaimed by :meth:`_compact` once tombstones dominate.  The ``rows``
    attribute is a mapping view (:class:`_ColumnRowsView`) so every
    row-store consumer keeps working; hot paths (scan, batched scan,
    bulk append) are overridden with whole-column implementations.
    """

    is_columnar = True

    @property
    def rows(self):  # type: ignore[override]
        return self._view

    @rows.setter
    def rows(self, mapping) -> None:
        # Table.__init__ assigns ``self.rows = {}``, and WAL checkpoint
        # restore assigns a full replacement dict; both land here.
        self._cols = [ColumnData(c.affinity) for c in self.columns]
        self._slot_rowids: list[int] = []
        self._slot_of: dict[int, int] = {}
        self._live = bytearray()
        self._dead_count = 0
        self._view = _ColumnRowsView(self)
        for rowid, row in mapping.items():
            self._cstore_new(rowid, row)

    # -- column-store internals ---------------------------------------------

    def _cstore_new(self, rowid: int, row: list[Any]) -> None:
        self._slot_of[rowid] = len(self._slot_rowids)
        self._slot_rowids.append(rowid)
        self._live.append(1)
        for col, value in zip(self._cols, row):
            col.append(value)

    def _cstore(self, rowid: int, row: list[Any]) -> None:
        slot = self._slot_of.get(rowid)
        if slot is None:
            self._cstore_new(rowid, row)
        else:
            for col, value in zip(self._cols, row):
                col.set(slot, value)

    def _cdelete(self, rowid: int) -> list[Any]:
        slot = self._slot_of.pop(rowid)  # KeyError on unknown rowid
        row = [col.get(slot) for col in self._cols]
        self._live[slot] = 0
        self._dead_count += 1
        if self._dead_count > 256 and self._dead_count > len(self._slot_of):
            self._compact()
        return row

    def _compact(self) -> None:
        """Drop tombstoned slots; live order (and thus scan order) is
        preserved, so this is invisible to every reader."""
        pairs = list(self.scan())
        self._cols = [ColumnData(c.affinity) for c in self.columns]
        self._slot_rowids = []
        self._slot_of = {}
        self._live = bytearray()
        self._dead_count = 0
        for rowid, row in pairs:
            self._cstore_new(rowid, row)

    def _live_rowids(self) -> list[int]:
        if not self._dead_count:
            return list(self._slot_rowids)
        return [r for r, alive in zip(self._slot_rowids, self._live) if alive]

    @property
    def live_count(self) -> int:
        return len(self._slot_of)

    def column_values(self, position: int) -> list[Any]:
        """One whole column (live rows, scan order) for vectorized
        execution."""
        return self._cols[position].materialize(self._live, self._dead_count)

    def column_pure(self, position: int) -> bool:
        return self._cols[position].pure

    def check_columns(self) -> list[str]:
        """Internal column-store invariants for ``PRAGMA integrity_check``:
        every column aligned to the slot count, tombstone accounting
        consistent, and the rowid<->slot maps mutual inverses."""
        problems: list[str] = []
        n_slots = len(self._slot_rowids)
        if len(self._live) != n_slots:
            problems.append(
                f"{self.name}: live map covers {len(self._live)} slots, "
                f"expected {n_slots}"
            )
        for column, col in zip(self.columns, self._cols):
            if len(col.data) != n_slots:
                problems.append(
                    f"{self.name}.{column.name}: column holds "
                    f"{len(col.data)} slots, expected {n_slots}"
                )
            if col.kind in ("i", "f"):
                if len(col.nulls) != n_slots:
                    problems.append(
                        f"{self.name}.{column.name}: NULL map covers "
                        f"{len(col.nulls)} slots, expected {n_slots}"
                    )
                elif col.null_count != sum(col.nulls):
                    problems.append(
                        f"{self.name}.{column.name}: null_count "
                        f"{col.null_count} != {sum(col.nulls)} NULL slots"
                    )
        dead = n_slots - len(self._slot_of)
        if self._dead_count != dead:
            problems.append(
                f"{self.name}: dead_count {self._dead_count} != "
                f"{dead} tombstoned slots"
            )
        if len(self._live) == n_slots and sum(
            1 for alive in self._live if not alive
        ) != dead:
            problems.append(
                f"{self.name}: live map disagrees with the slot directory"
            )
        for rowid, slot in self._slot_of.items():
            if (
                slot >= n_slots
                or self._slot_rowids[slot] != rowid
                or not self._live[slot]
            ):
                problems.append(
                    f"{self.name}: slot directory entry for rowid {rowid} "
                    f"is broken"
                )
                break
        return problems

    # -- overridden row operations -------------------------------------------

    def add_column(self, column: Column) -> None:
        if self.has_column(column.name):
            raise OperationalError(
                f"duplicate column name: {column.name} in table {self.name}"
            )
        self.columns.append(column)
        self._positions[column.lower_name] = len(self.columns) - 1
        col = ColumnData(column.affinity)
        # Slot-aligned backfill: tombstoned slots get the default too.
        for _ in range(len(self._slot_rowids)):
            col.append(column.default)
        self._cols.append(col)
        self.version += 1

    def scan(self) -> Iterator[tuple[int, list[Any]]]:
        mats = [col.materialize(self._live, self._dead_count) for col in self._cols]
        rowids = self._live_rowids()
        if len(mats) == 1:
            return zip(rowids, ([v] for v in mats[0]))
        return zip(rowids, map(list, zip(*mats)))

    def scan_batches(
        self,
        batch_size: int = 1024,
        positions: Optional[tuple[int, ...]] = None,
    ) -> Iterator[list]:
        """Columnar batched scan: materialise only the requested columns,
        then zip them into row tuples chunk by chunk.

        Chunking happens *after* tombstone compression, so a batch
        boundary can never land inside a deleted-row run and drop or
        short-change a chunk (the tail edge case pinned by
        ``tests/db/test_scan_batches.py``).
        """
        if positions is None:
            mats = [
                col.materialize(self._live, self._dead_count) for col in self._cols
            ]
        else:
            mats = [
                self._cols[p].materialize(self._live, self._dead_count)
                for p in positions
            ]
        it = zip(*mats) if len(mats) > 1 else zip(mats[0])
        while True:
            chunk = list(islice(it, batch_size))
            if not chunk:
                return
            yield chunk

    def __len__(self) -> int:
        return len(self._slot_of)


class Database:
    """Top-level catalog: tables, indexes, foreign keys, undo log.

    The undo log stores plain tuples rather than closures — at PerfDMF
    bulk-load scale (millions of inserts inside one transaction) the
    per-record allocation cost of a lambda is measurable.
    Record shapes::

        ("ins", table, rowid)              # undo: delete the row
        ("del", table, rowid, row)         # undo: restore the row
        ("upd", table, rowid, positions)   # undo: re-apply old values
        ("bulk", table, watermark)         # undo: drop rowids >= watermark
        ("mk_table", key)                  # undo: remove created table
        ("rm_table", key, table)           # undo: re-attach dropped table

    In bulk-load mode a single ``bulk`` record per table per transaction
    replaces one ``ins`` record per row: every bulk-appended row has a
    rowid at or above the recorded watermark, so rollback deletes that
    rowid range and stays all-or-nothing without per-row bookkeeping.
    """

    #: Access-path counters surfaced through ``Connection.stats()``.
    _STAT_KEYS = (
        "rows_scanned", "rows_via_index", "full_scans",
        "index_eq_probes", "index_range_scans", "order_pushdowns",
        "bulk_loads", "bulk_rows", "bulk_index_rebuilds",
        "plan_cache_hits", "plan_cache_misses", "compile_fallbacks",
        "vector_selects", "vector_fallbacks", "columnar_conversions",
        "shard_queries", "shard_pool_queries", "shard_fallbacks",
        "shard_bypasses", "shard_rebuilds", "shard_hydrations",
        "shard_parallel_ingests",
        "snapshot_selects", "snapshot_refreshes", "snapshot_table_clones",
        "snapshot_stale_serves",
    )

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        self.index_owner: dict[str, str] = {}  # index name -> table name
        self.foreign_keys: dict[str, list[tuple[list[str], str, list[str]]]] = {}
        self.in_transaction = False
        self._undo: list[tuple] = []
        #: Monotonic catalog generation.  Any DDL (create/drop/rename
        #: table, create/drop index, ADD COLUMN, or a rollback that undoes
        #: one) bumps it; compiled plans are keyed on it, so a stale plan
        #: — compiled against old column offsets — can never be served.
        self.schema_version = 0
        #: ``PRAGMA compile on/off`` switch for the query-compilation
        #: layer; interpretation is always available as the fallback.
        self.compile_enabled = True
        #: When True, newly created tables use columnar storage
        #: (``PRAGMA columnar(on/off)`` with no table name).
        self.columnar_default = False
        self.stats: dict[str, int] = {key: 0 for key in self._STAT_KEYS}
        self.bulk_mode = False
        #: Tables whose secondary indexes are suspended for the current
        #: bulk load; rebuilt once in :meth:`end_bulk`.
        self._bulk_tables: set[Table] = set()
        #: Per-transaction first-bulk-rowid watermarks backing the
        #: ``bulk`` undo records; cleared at commit/rollback.
        self._bulk_txn_tables: dict[Table, int] = {}
        # Serialises writers on shared databases: a connection holds this
        # for the duration of its transaction (sqlite's database lock).
        self.txn_lock = __import__("threading").Lock()
        #: Attached write-ahead log for file-backed databases (see
        #: :mod:`~repro.db.minisql.wal`); None for in-memory databases.
        #: Duck-typed so this module never imports the WAL machinery.
        self.wal = None
        #: Monotonic transaction ids for WAL records; 0 is reserved for
        #: auto-committed operations.
        self._txn_seq = 0
        self._txn_id = 0
        #: Attached :class:`~repro.db.minisql.shard.ShardManager` when
        #: ``PRAGMA shards(<n>)`` is active; None otherwise.  Duck-typed
        #: so this module never imports the shard machinery.
        self.shard_mgr = None
        #: Attached :class:`~repro.db.minisql.snapshot.SnapshotManager`
        #: when ``PRAGMA snapshot_isolation(on)`` is active; None
        #: otherwise.  Duck-typed so this module never imports the
        #: snapshot machinery.
        self.snapshot_mgr = None
        #: Slow-query threshold in milliseconds (``PRAGMA slow_query_ms``);
        #: None disables statement timing entirely.
        self.slow_query_ms: Optional[float] = None
        #: Most recent slow statements: {"sql", "plan", "duration_ms"}.
        self.slow_queries: "deque[dict]" = deque(maxlen=256)

    def reset_stats(self) -> None:
        for key in self._STAT_KEYS:
            self.stats[key] = 0

    # -- catalog --------------------------------------------------------------

    def table(self, name: str) -> Table:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise OperationalError(f"no such table: {name}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def create_table(self, name: str, columns: list[Column]) -> Table:
        key = name.lower()
        if key in self.tables:
            raise OperationalError(f"table {name} already exists")
        seen: set[str] = set()
        for column in columns:
            if column.lower_name in seen:
                raise OperationalError(f"duplicate column name: {column.name}")
            seen.add(column.lower_name)
        table_cls = ColumnTable if self.columnar_default else Table
        table = table_cls(name, columns)
        self.tables[key] = table
        self.schema_version += 1
        if self.in_transaction:
            self._undo.append(("mk_table", key))
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        table = self.table(name)
        for index_name in list(table.indexes):
            self.index_owner.pop(index_name.lower(), None)
        del self.tables[key]
        self.foreign_keys.pop(key, None)
        self.schema_version += 1
        if self.in_transaction:
            self._undo.append(("rm_table", key, table))

    def rename_table(self, name: str, new_name: str) -> None:
        key = name.lower()
        new_key = new_name.lower()
        if new_key in self.tables:
            raise OperationalError(f"table {new_name} already exists")
        table = self.table(name)
        del self.tables[key]
        table.name = new_name
        self.tables[new_key] = table
        for index_name, owner in list(self.index_owner.items()):
            if owner == key:
                self.index_owner[index_name] = new_key
        self.schema_version += 1

    def set_table_storage(self, name: str, columnar: bool) -> bool:
        """Switch one table between row and columnar layout in place.

        Rowids, scan order, autoincrement state, and every index are
        preserved; the swap bumps ``schema_version`` so cached compiled
        plans (which may bake in vectorized sections) are invalidated.
        Returns False when the table is already in the requested layout.
        Callers must reject mid-transaction / mid-bulk conversions; this
        method only performs the swap.
        """
        key = name.lower()
        table = self.table(name)
        if table.is_columnar == bool(columnar):
            return False
        if table.bulk_active:
            raise OperationalError(
                f"cannot change storage of {table.name} during a bulk load"
            )
        table_cls = ColumnTable if columnar else Table
        replacement = table_cls(table.name, table.columns)
        store = replacement.rows
        for rowid, row in table.scan():
            store[rowid] = list(row)
        replacement._next_rowid = table._next_rowid
        replacement.last_autoincrement = table.last_autoincrement
        for index_key, index in table.indexes.items():
            clone = type(index)(
                index.name, replacement, list(index.column_names), index.unique
            )
            clone.rebuild()
            replacement.indexes[index_key] = clone
        self.tables[key] = replacement
        self.schema_version += 1
        self.stats["columnar_conversions"] += 1
        return True

    def create_index(
        self, name: str, table_name: str, columns: list[str], unique: bool,
        using: str = "hash",
    ) -> Index:
        key = name.lower()
        if key in self.index_owner:
            raise OperationalError(f"index {name} already exists")
        table = self.table(table_name)
        index_cls = SortedIndex if using == "btree" else Index
        index = index_cls(name, table, columns, unique)
        index.rebuild()
        table.indexes[key] = index
        self.index_owner[key] = table_name.lower()
        self.schema_version += 1
        if self.in_transaction:
            self._undo.append(("mk_index", key, table_name.lower()))
        return index

    def drop_index(self, name: str) -> None:
        key = name.lower()
        owner = self.index_owner.pop(key, None)
        if owner is None:
            raise OperationalError(f"no such index: {name}")
        table = self.tables.get(owner)
        if table is not None:
            table.indexes.pop(key, None)
        self.schema_version += 1

    def register_foreign_keys(
        self, table_name: str, specs: list[tuple[list[str], str, list[str]]]
    ) -> None:
        self.foreign_keys.setdefault(table_name.lower(), []).extend(specs)

    # -- write-ahead logging ----------------------------------------------------

    def wal_log(self, op: str, *args: Any) -> None:
        """Append one logical record to the attached WAL, if any.

        Inside a transaction the record carries the transaction id and
        durability waits for the commit barrier; outside, it is tagged
        as auto-committed (txn 0) and flushed immediately.
        """
        wal = self.wal
        if wal is None:
            return
        if self.in_transaction:
            wal.append(op, self._txn_id, *args)
        else:
            wal.append(op, 0, *args)
            wal.barrier()
            if wal.should_checkpoint():
                wal.checkpoint(self)

    # -- transactional mutation -------------------------------------------------

    def begin(self) -> None:
        if self.in_transaction:
            raise OperationalError("cannot start a transaction within a transaction")
        self.in_transaction = True
        self._undo.clear()
        if self.wal is not None:
            self._txn_seq += 1
            self._txn_id = self._txn_seq
            self.wal.log_begin(self._txn_id)

    def commit(self) -> None:
        was_transaction = self.in_transaction
        self.in_transaction = False
        self._undo.clear()
        self._bulk_txn_tables.clear()
        wal = self.wal
        if wal is not None and was_transaction:
            wal.log_commit(self._txn_id)
            if wal.should_checkpoint():
                wal.checkpoint(self)

    def rollback(self) -> None:
        if not self.in_transaction:
            self._undo.clear()
            self._bulk_txn_tables.clear()
            return
        if self.wal is not None:
            # Logged before the undo replay so a crash mid-rollback still
            # finds the record; recovery discards the txn either way.
            self.wal.log_rollback(self._txn_id)
        undid_ddl = False
        for record in reversed(self._undo):
            op = record[0]
            if op == "ins":
                record[1].delete_row(record[2])
            elif op == "bulk":
                table, watermark = record[1], record[2]
                for rowid in [r for r in table.rows if r >= watermark]:
                    table.delete_row(rowid)
            elif op == "del":
                record[1].restore_row(record[2], record[3])
            elif op == "upd":
                record[1].update_row(record[2], record[3])
            elif op == "mk_table":
                undid_ddl = True
                self.tables.pop(record[1], None)
                # purge index registrations owned by the undone table
                for index_name, owner in list(self.index_owner.items()):
                    if owner == record[1]:
                        del self.index_owner[index_name]
                self.foreign_keys.pop(record[1], None)
            elif op == "rm_table":
                undid_ddl = True
                self.tables[record[1]] = record[2]
                table = record[2]
                for index_name in table.indexes:
                    self.index_owner[index_name] = record[1]
            elif op == "mk_index":
                undid_ddl = True
                index_name, owner = record[1], record[2]
                self.index_owner.pop(index_name, None)
                table = self.tables.get(owner)
                if table is not None:
                    table.indexes.pop(index_name, None)
        if undid_ddl:
            self.schema_version += 1
        self._undo.clear()
        self._bulk_txn_tables.clear()
        self.in_transaction = False

    # -- bulk load -----------------------------------------------------------

    def begin_bulk(self) -> None:
        """Enter bulk-load mode (``PRAGMA bulk_load(on)``).

        Tables are suspended lazily at their first bulk insert, so the
        mode costs nothing for tables the batch never touches.
        """
        if self.bulk_mode:
            return
        self.bulk_mode = True
        self.stats["bulk_loads"] += 1

    def end_bulk(self) -> None:
        """Leave bulk-load mode (``PRAGMA bulk_load(off)``): rebuild each
        suspended index exactly once from the loaded rows."""
        if not self.bulk_mode:
            return
        self.bulk_mode = False
        for table in self._bulk_tables:
            self.stats["bulk_index_rebuilds"] += table.finish_bulk()
        self._bulk_tables.clear()

    @contextmanager
    def bulk_load(self) -> Iterator["Database"]:
        """Scoped bulk-load mode; indexes are rebuilt on exit even when
        the body raises (rollback is the caller's responsibility)."""
        self.begin_bulk()
        try:
            yield self
        finally:
            self.end_bulk()

    def _enter_bulk_table(self, table: Table) -> None:
        if table not in self._bulk_tables:
            table.suspend_secondary()
            self._bulk_tables.add(table)
        if self.in_transaction and table not in self._bulk_txn_tables:
            watermark = table.peek_rowid()
            self._bulk_txn_tables[table] = watermark
            self._undo.append(("bulk", table, watermark))

    def bulk_insert_rows(self, table: Table, rows: Iterable[list[Any]]) -> int:
        """Append a batch under bulk mode; one undo record, no per-row
        index upkeep on suspended indexes.  Returns rows appended."""
        self._enter_bulk_table(table)
        start = table.peek_rowid()
        try:
            count = table.append_rows(rows)
        finally:
            if self.wal is not None:
                # Bulk appends are rowid-contiguous from the watermark, so
                # one record covers the batch.  Logging the landed count
                # (not the requested one) keeps the WAL honest when a
                # constraint fails mid-batch: the rows that made it into
                # the store are exactly the rows logged.
                landed = table.peek_rowid() - start
                if landed:
                    self.wal_log(
                        "bmany", table.name, start,
                        [table.rows[r] for r in range(start, start + landed)],
                    )
        self.stats["bulk_rows"] += count
        return count

    def insert(self, table: Table, row: list[Any]) -> int:
        if self.bulk_mode:
            self._enter_bulk_table(table)
            rowid = table.insert_row(row)
            self.stats["bulk_rows"] += 1
            if self.wal is not None:
                self.wal_log("ins", table.name, rowid, table.rows[rowid])
            return rowid
        rowid = table.insert_row(row)
        if self.in_transaction:
            self._undo.append(("ins", table, rowid))
        if self.wal is not None:
            # Log the stored (coerced/defaulted) row, not the input row.
            self.wal_log("ins", table.name, rowid, table.rows[rowid])
        return rowid

    def delete(self, table: Table, rowid: int) -> None:
        row = table.delete_row(rowid)
        if self.in_transaction:
            self._undo.append(("del", table, rowid, row))
        if self.wal is not None:
            self.wal_log("del", table.name, rowid)

    def update(self, table: Table, rowid: int, new_values: dict[int, Any]) -> None:
        old = table.update_row(rowid, new_values)
        if self.in_transaction:
            self._undo.append(("upd", table, rowid, {i: old[i] for i in new_values}))
        if self.wal is not None:
            row = table.rows[rowid]
            self.wal_log(
                "upd", table.name, rowid,
                [(position, row[position]) for position in new_values],
            )
