"""Recursive-descent parser for the MiniSQL dialect.

Grammar coverage (everything PerfDMF's schema and query layer emits, plus
enough generality for user analysis queries):

* ``CREATE TABLE`` with column constraints, table-level PRIMARY KEY /
  UNIQUE / FOREIGN KEY, ``IF NOT EXISTS``
* ``DROP TABLE [IF EXISTS]``, ``CREATE [UNIQUE] INDEX``, ``DROP INDEX``
* ``ALTER TABLE .. ADD COLUMN`` / ``RENAME TO``
* ``INSERT INTO .. VALUES (..), (..)`` and ``INSERT INTO .. SELECT``
* ``UPDATE .. SET .. WHERE``, ``DELETE FROM .. WHERE``
* ``SELECT`` with DISTINCT, expressions + aliases, multi-way INNER /
  LEFT [OUTER] / CROSS JOIN, WHERE, GROUP BY, HAVING, ORDER BY,
  LIMIT/OFFSET, and UNION [ALL] / EXCEPT / INTERSECT compounds
* ``BEGIN`` / ``COMMIT`` / ``ROLLBACK``, ``PRAGMA name(arg)``
* ``?`` placeholders anywhere an expression is allowed

Expression grammar follows standard SQL precedence:
``OR`` < ``AND`` < ``NOT`` < comparison/IS/IN/LIKE/BETWEEN <
additive < multiplicative < unary < postfix (function call) < primary.
"""

from __future__ import annotations

from typing import Optional

from .ast_nodes import (
    AlterTableAddColumn, AlterTableRename, Between, BeginTransaction,
    BinaryOp, CaseExpr, CastExpr, ColumnDef, ColumnRef, CommitTransaction,
    CreateIndex, CreateTable, Delete, DropIndex, DropTable, Expression,
    ForeignKeySpec, FunctionCall, InList, Insert, IsNull, Join, Like,
    Literal, OrderItem, Placeholder, Pragma, RollbackTransaction, Select,
    SelectItem, Star, Statement, Subquery, TableRef, UnaryOp, Update,
)
from .errors import SQLSyntaxError
from .lexer import tokenize
from .tokens import Token, TokenType
from .types import canonical_type

_COMPARISON_OPS = {"=", "<>", "!=", "<", ">", "<=", ">="}
_TYPE_KEYWORDS = {
    "INTEGER", "INT", "BIGINT", "SMALLINT", "REAL", "DOUBLE", "FLOAT",
    "TEXT", "VARCHAR", "CHAR", "BOOLEAN", "BLOB", "NUMERIC", "DECIMAL",
}
_AGGREGATE_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


def parse(sql: str) -> list[Statement]:
    """Parse ``sql`` (possibly several ``;``-separated statements)."""
    return Parser(sql).parse_script()


def parse_one(sql: str) -> Statement:
    """Parse exactly one statement; raise if there are zero or several."""
    statements = parse(sql)
    if len(statements) != 1:
        raise SQLSyntaxError(
            f"expected exactly one statement, found {len(statements)}"
        )
    return statements[0]


class Parser:
    """Stateful single-pass parser over a token list."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self.placeholder_count = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def check_keyword(self, *keywords: str) -> bool:
        return self.current.type is TokenType.KEYWORD and self.current.value in keywords

    def accept_keyword(self, *keywords: str) -> Optional[str]:
        if self.check_keyword(*keywords):
            return self.advance().value
        return None

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            self.error(f"expected {keyword}")

    def accept_punct(self, value: str) -> bool:
        if self.current.matches(TokenType.PUNCTUATION, value):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            self.error(f"expected {value!r}")

    def accept_operator(self, value: str) -> bool:
        if self.current.matches(TokenType.OPERATOR, value):
            self.advance()
            return True
        return False

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self.current
        # Unreserved-ish keywords may appear as identifiers (e.g. a column
        # named "key" or an aggregate name used as a table alias is NOT
        # allowed, but type keywords frequently name columns in the wild).
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            return token.value
        if token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS | {
            "KEY", "INDEX", "COLUMN", "DEFAULT", "PRAGMA", "ALL", "COUNT",
            "SUM", "AVG", "MIN", "MAX",
        }:
            self.advance()
            return token.value.lower()
        self.error(f"expected {what}")
        raise AssertionError  # unreachable

    def error(self, message: str) -> None:
        raise SQLSyntaxError(message, self.current.position, self.sql)

    # -- entry points -------------------------------------------------------

    def parse_script(self) -> list[Statement]:
        statements: list[Statement] = []
        while self.current.type is not TokenType.EOF:
            if self.accept_punct(";"):
                continue
            statements.append(self.parse_statement())
            if not self.accept_punct(";") and self.current.type is not TokenType.EOF:
                self.error("expected ';' between statements")
        return statements

    def parse_statement(self) -> Statement:
        token = self.current
        if token.type is not TokenType.KEYWORD:
            self.error("expected a statement keyword")
        keyword = token.value
        if keyword == "SELECT":
            return self.parse_select()
        if keyword == "INSERT":
            return self.parse_insert()
        if keyword == "UPDATE":
            return self.parse_update()
        if keyword == "DELETE":
            return self.parse_delete()
        if keyword == "CREATE":
            return self.parse_create()
        if keyword == "DROP":
            return self.parse_drop()
        if keyword == "ALTER":
            return self.parse_alter()
        if keyword == "BEGIN":
            self.advance()
            self.accept_keyword("TRANSACTION")
            return BeginTransaction()
        if keyword == "COMMIT":
            self.advance()
            self.accept_keyword("TRANSACTION")
            return CommitTransaction()
        if keyword == "ROLLBACK":
            self.advance()
            self.accept_keyword("TRANSACTION")
            return RollbackTransaction()
        if keyword == "PRAGMA":
            return self.parse_pragma()
        if keyword == "EXPLAIN":
            self.advance()
            from .ast_nodes import Explain

            analyze = False
            current = self.current
            if (
                current.type in (TokenType.IDENTIFIER, TokenType.KEYWORD)
                and current.value.upper() == "ANALYZE"
            ):
                self.advance()
                analyze = True
            return Explain(self.parse_statement(), analyze=analyze)
        self.error(f"unsupported statement {keyword}")
        raise AssertionError  # unreachable

    # -- DDL ------------------------------------------------------------------

    def parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        unique = bool(self.accept_keyword("UNIQUE"))
        if self.accept_keyword("TABLE"):
            if unique:
                self.error("UNIQUE is not valid before TABLE")
            return self.parse_create_table()
        if self.accept_keyword("INDEX"):
            return self.parse_create_index(unique)
        self.error("expected TABLE or INDEX after CREATE")
        raise AssertionError

    def parse_create_table(self) -> CreateTable:
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_identifier("table name")
        self.expect_punct("(")
        columns: list[ColumnDef] = []
        primary_key: list[str] = []
        uniques: list[list[str]] = []
        foreign_keys: list[ForeignKeySpec] = []
        while True:
            if self.check_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                primary_key = self._parse_paren_name_list()
            elif self.check_keyword("UNIQUE"):
                self.advance()
                uniques.append(self._parse_paren_name_list())
            elif self.check_keyword("FOREIGN"):
                self.advance()
                self.expect_keyword("KEY")
                cols = self._parse_paren_name_list()
                self.expect_keyword("REFERENCES")
                ref_table = self.expect_identifier("referenced table")
                ref_cols = self._parse_paren_name_list()
                foreign_keys.append(ForeignKeySpec(cols, ref_table, ref_cols))
            elif self.check_keyword("CHECK"):
                # Accepted and ignored (documented limitation).
                self.advance()
                self._skip_parenthesized()
            else:
                columns.append(self.parse_column_def())
            if self.accept_punct(","):
                continue
            self.expect_punct(")")
            break
        return CreateTable(
            table=name,
            columns=columns,
            if_not_exists=if_not_exists,
            primary_key=primary_key,
            unique_constraints=uniques,
            foreign_keys=foreign_keys,
        )

    def parse_column_def(self) -> ColumnDef:
        name = self.expect_identifier("column name")
        type_token = self.current
        if type_token.type is TokenType.KEYWORD and type_token.value in _TYPE_KEYWORDS:
            self.advance()
            type_text = type_token.value
            if type_text == "DOUBLE" and self.accept_keyword("PRECISION"):
                type_text = "DOUBLE PRECISION"
            # optional (n) / (n, m) length specifier
            if self.accept_punct("("):
                while not self.accept_punct(")"):
                    self.advance()
        elif type_token.type is TokenType.IDENTIFIER:
            # Unknown types fall back to NUMERIC affinity like sqlite.
            self.advance()
            type_text = "NUMERIC"
        else:
            type_text = "NUMERIC"
        column = ColumnDef(name=name, type_name=canonical_type(type_text))
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                column.not_null = True
            elif self.accept_keyword("NULL"):
                pass  # explicit nullable, the default
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                column.primary_key = True
                column.not_null = True
            elif self.accept_keyword("AUTOINCREMENT"):
                column.autoincrement = True
            elif self.accept_keyword("UNIQUE"):
                column.unique = True
            elif self.accept_keyword("DEFAULT"):
                column.default = self.parse_primary()
            elif self.accept_keyword("REFERENCES"):
                ref_table = self.expect_identifier("referenced table")
                ref_column = "id"
                if self.accept_punct("("):
                    ref_column = self.expect_identifier("referenced column")
                    self.expect_punct(")")
                column.references = (ref_table, ref_column)
            elif self.accept_keyword("CHECK"):
                self._skip_parenthesized()
            else:
                break
        return column

    def _parse_paren_name_list(self) -> list[str]:
        self.expect_punct("(")
        names = [self.expect_identifier("column name")]
        while self.accept_punct(","):
            names.append(self.expect_identifier("column name"))
        self.expect_punct(")")
        return names

    def _skip_parenthesized(self) -> None:
        self.expect_punct("(")
        depth = 1
        while depth:
            token = self.advance()
            if token.type is TokenType.EOF:
                self.error("unterminated parenthesis")
            if token.matches(TokenType.PUNCTUATION, "("):
                depth += 1
            elif token.matches(TokenType.PUNCTUATION, ")"):
                depth -= 1

    def parse_create_index(self, unique: bool) -> CreateIndex:
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_identifier("index name")
        self.expect_keyword("ON")
        table = self.expect_identifier("table name")
        columns = self._parse_paren_name_list()
        using = "hash"
        if self.accept_keyword("USING"):
            method = self.expect_identifier("index method").upper()
            if method not in ("HASH", "BTREE"):
                self.error("expected HASH or BTREE after USING")
            using = method.lower()
        return CreateIndex(
            name=name, table=table, columns=columns,
            unique=unique, if_not_exists=if_not_exists, using=using,
        )

    def parse_drop(self) -> Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            if_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("EXISTS")
                if_exists = True
            return DropTable(self.expect_identifier("table name"), if_exists)
        if self.accept_keyword("INDEX"):
            if_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("EXISTS")
                if_exists = True
            return DropIndex(self.expect_identifier("index name"), if_exists)
        self.error("expected TABLE or INDEX after DROP")
        raise AssertionError

    def parse_alter(self) -> Statement:
        self.expect_keyword("ALTER")
        self.expect_keyword("TABLE")
        table = self.expect_identifier("table name")
        if self.accept_keyword("ADD"):
            self.accept_keyword("COLUMN")
            return AlterTableAddColumn(table, self.parse_column_def())
        if self.accept_keyword("RENAME"):
            self.expect_keyword("TO")
            return AlterTableRename(table, self.expect_identifier("new name"))
        self.error("expected ADD or RENAME after ALTER TABLE")
        raise AssertionError

    def parse_pragma(self) -> Pragma:
        self.expect_keyword("PRAGMA")
        name = self.expect_identifier("pragma name")
        argument = None
        if self.accept_punct("("):
            argument = self._parse_pragma_argument()
            # Multi-token form — PRAGMA columnar(metric on) — joins the
            # extra tokens with spaces; a lone token keeps its raw value
            # (PRAGMA wal_autocheckpoint(65536) must stay an int).
            extra = []
            while True:
                more = self._parse_pragma_argument()
                if more is None:
                    break
                extra.append(more)
            if extra:
                argument = " ".join(str(part) for part in [argument, *extra])
            self.expect_punct(")")
        elif self.accept_operator("="):
            # sqlite's assignment form: PRAGMA bulk_load = on
            argument = self._parse_pragma_argument()
        return Pragma(name=name.lower(), argument=argument)

    def _parse_pragma_argument(self):
        token = self.current
        if token.type in (TokenType.IDENTIFIER, TokenType.STRING, TokenType.NUMBER):
            self.advance()
            return token.value
        if token.type is TokenType.KEYWORD:
            self.advance()
            return token.value.lower()
        return None

    # -- DML ------------------------------------------------------------------

    def parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier("table name")
        columns: list[str] = []
        if self.current.matches(TokenType.PUNCTUATION, "("):
            columns = self._parse_paren_name_list()
        if self.check_keyword("SELECT"):
            return Insert(table=table, columns=columns, select=self.parse_select())
        self.expect_keyword("VALUES")
        rows: list[list[Expression]] = []
        while True:
            self.expect_punct("(")
            row = [self.parse_expression()]
            while self.accept_punct(","):
                row.append(self.parse_expression())
            self.expect_punct(")")
            rows.append(row)
            if not self.accept_punct(","):
                break
        return Insert(table=table, columns=columns, rows=rows)

    def parse_update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier("table name")
        self.expect_keyword("SET")
        assignments: list[tuple[str, Expression]] = []
        while True:
            column = self.expect_identifier("column name")
            if not self.accept_operator("="):
                self.error("expected '=' in SET clause")
            assignments.append((column, self.parse_expression()))
            if not self.accept_punct(","):
                break
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return Update(table=table, assignments=assignments, where=where)

    def parse_delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier("table name")
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return Delete(table=table, where=where)

    # -- SELECT -----------------------------------------------------------------

    def parse_select(self) -> Select:
        select = self._parse_select_core()
        while self.check_keyword("UNION", "EXCEPT", "INTERSECT"):
            op = self.advance().value
            if op == "UNION" and self.accept_keyword("ALL"):
                op = "UNION ALL"
            rhs = self._parse_select_core()
            # A trailing ORDER BY / LIMIT lexically binds to the last core
            # select but semantically applies to the whole compound; move it
            # to the head select where the executor looks for it.
            if rhs.order_by and not select.order_by:
                select.order_by, rhs.order_by = rhs.order_by, []
            if rhs.limit is not None and select.limit is None:
                select.limit, rhs.limit = rhs.limit, None
                select.offset, rhs.offset = rhs.offset, None
            # Chain compounds left-associatively.
            node = select
            while node.compound is not None:
                node = node.compound[1]
            node.compound = (op, rhs)
        # ORDER BY / LIMIT after a compound apply to the whole compound; we
        # attach them to the head select and the executor handles it.
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            select.order_by = self._parse_order_items()
        if self.accept_keyword("LIMIT"):
            select.limit = self.parse_expression()
            if self.accept_keyword("OFFSET"):
                select.offset = self.parse_expression()
        return select

    def _parse_select_core(self) -> Select:
        self.expect_keyword("SELECT")
        select = Select()
        if self.accept_keyword("DISTINCT"):
            select.distinct = True
        else:
            self.accept_keyword("ALL")
        select.items.append(self._parse_select_item())
        while self.accept_punct(","):
            select.items.append(self._parse_select_item())
        if self.accept_keyword("FROM"):
            select.table = self._parse_table_ref()
            while True:
                join = self._parse_join_opt()
                if join is None:
                    break
                select.joins.append(join)
        if self.accept_keyword("WHERE"):
            select.where = self.parse_expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            select.group_by.append(self.parse_expression())
            while self.accept_punct(","):
                select.group_by.append(self.parse_expression())
        if self.accept_keyword("HAVING"):
            select.having = self.parse_expression()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            select.order_by = self._parse_order_items()
        if self.accept_keyword("LIMIT"):
            select.limit = self.parse_expression()
            if self.accept_keyword("OFFSET"):
                select.offset = self.parse_expression()
        return select

    def _parse_order_items(self) -> list[OrderItem]:
        items = [self._parse_order_item()]
        while self.accept_punct(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr=expr, descending=descending)

    def _parse_select_item(self) -> SelectItem:
        if self.current.matches(TokenType.OPERATOR, "*"):
            self.advance()
            return SelectItem(expr=Star())
        # table.* form
        if (
            self.current.type is TokenType.IDENTIFIER
            and self.tokens[self.pos + 1].matches(TokenType.PUNCTUATION, ".")
            and self.tokens[self.pos + 2].matches(TokenType.OPERATOR, "*")
        ):
            table = self.advance().value
            self.advance()  # '.'
            self.advance()  # '*'
            return SelectItem(expr=Star(table=table))
        expr = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return SelectItem(expr=expr, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        name = self.expect_identifier("table name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return TableRef(name=name, alias=alias)

    def _parse_join_opt(self) -> Optional[Join]:
        if self.accept_punct(","):
            return Join(kind="CROSS", table=self._parse_table_ref())
        kind = None
        if self.accept_keyword("INNER"):
            kind = "INNER"
            self.expect_keyword("JOIN")
        elif self.accept_keyword("LEFT"):
            self.accept_keyword("OUTER")
            kind = "LEFT"
            self.expect_keyword("JOIN")
        elif self.accept_keyword("CROSS"):
            kind = "CROSS"
            self.expect_keyword("JOIN")
        elif self.accept_keyword("JOIN"):
            kind = "INNER"
        elif self.check_keyword("RIGHT"):
            self.error("RIGHT JOIN is not supported; rewrite as LEFT JOIN")
        if kind is None:
            return None
        table = self._parse_table_ref()
        condition = None
        if kind != "CROSS":
            self.expect_keyword("ON")
            condition = self.parse_expression()
        return Join(kind=kind, table=table, condition=condition)

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        while True:
            token = self.current
            if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
                self.advance()
                op = "<>" if token.value == "!=" else token.value
                left = BinaryOp(op, left, self._parse_additive())
                continue
            negated = False
            save = self.pos
            if self.accept_keyword("NOT"):
                negated = True
            if self.accept_keyword("IS"):
                is_not = bool(self.accept_keyword("NOT")) or negated
                self.expect_keyword("NULL")
                left = IsNull(left, negated=is_not)
                continue
            if self.accept_keyword("IN"):
                self.expect_punct("(")
                if self.check_keyword("SELECT"):
                    items: list[Expression] = [Subquery(self.parse_select())]
                else:
                    items = [self.parse_expression()]
                    while self.accept_punct(","):
                        items.append(self.parse_expression())
                self.expect_punct(")")
                left = InList(left, items, negated=negated)
                continue
            if self.accept_keyword("LIKE"):
                left = Like(left, self._parse_additive(), negated=negated)
                continue
            if self.accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self.expect_keyword("AND")
                high = self._parse_additive()
                left = Between(left, low, high, negated=negated)
                continue
            if negated:
                self.pos = save  # plain NOT handled one level up
            break
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            if self.accept_operator("+"):
                left = BinaryOp("+", left, self._parse_multiplicative())
            elif self.accept_operator("-"):
                left = BinaryOp("-", left, self._parse_multiplicative())
            elif self.accept_operator("||"):
                left = BinaryOp("||", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            if self.accept_operator("*"):
                left = BinaryOp("*", left, self._parse_unary())
            elif self.accept_operator("/"):
                left = BinaryOp("/", left, self._parse_unary())
            elif self.accept_operator("%"):
                left = BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self.accept_operator("-"):
            return UnaryOp("-", self._parse_unary())
        if self.accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary_postfix()

    def _parse_primary_postfix(self) -> Expression:
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.PLACEHOLDER:
            self.advance()
            index = self.placeholder_count
            self.placeholder_count += 1
            return Placeholder(index)
        if token.type is TokenType.KEYWORD:
            if token.value == "NULL":
                self.advance()
                return Literal(None)
            if token.value == "TRUE":
                self.advance()
                return Literal(1)
            if token.value == "FALSE":
                self.advance()
                return Literal(0)
            if token.value == "CASE":
                return self._parse_case()
            if token.value == "CAST":
                return self._parse_cast()
            if token.value in _AGGREGATE_KEYWORDS:
                # aggregate keyword used as function name
                if self.tokens[self.pos + 1].matches(TokenType.PUNCTUATION, "("):
                    self.advance()
                    return self._parse_function_call(token.value)
            # Soft keywords usable as bare column names (e.g. a column
            # called "key" or "index").
            if token.value in _TYPE_KEYWORDS | {
                "KEY", "INDEX", "COLUMN", "DEFAULT", "ALL",
            }:
                self.advance()
                if self.current.matches(TokenType.PUNCTUATION, "."):
                    self.advance()
                    column = self.expect_identifier("column name")
                    return ColumnRef(name=column, table=token.value.lower())
                return ColumnRef(name=token.value.lower())
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            # function call?
            if self.current.matches(TokenType.PUNCTUATION, "("):
                return self._parse_function_call(token.value.upper())
            # qualified column?
            if self.current.matches(TokenType.PUNCTUATION, "."):
                self.advance()
                column = self.expect_identifier("column name")
                return ColumnRef(name=column, table=token.value)
            return ColumnRef(name=token.value)
        if token.matches(TokenType.PUNCTUATION, "("):
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        self.error("expected an expression")
        raise AssertionError

    def _parse_function_call(self, name: str) -> FunctionCall:
        self.expect_punct("(")
        distinct = bool(self.accept_keyword("DISTINCT"))
        args: list[Expression] = []
        if self.current.matches(TokenType.OPERATOR, "*"):
            self.advance()
            args.append(Star())
        elif not self.current.matches(TokenType.PUNCTUATION, ")"):
            args.append(self.parse_expression())
            while self.accept_punct(","):
                args.append(self.parse_expression())
        self.expect_punct(")")
        return FunctionCall(name=name, args=args, distinct=distinct)

    def _parse_case(self) -> CaseExpr:
        self.expect_keyword("CASE")
        operand = None
        if not self.check_keyword("WHEN"):
            operand = self.parse_expression()
        whens: list[tuple[Expression, Expression]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expression()))
        if not whens:
            self.error("CASE requires at least one WHEN")
        default = self.parse_expression() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return CaseExpr(operand=operand, whens=whens, default=default)

    def _parse_cast(self) -> CastExpr:
        self.expect_keyword("CAST")
        self.expect_punct("(")
        operand = self.parse_expression()
        self.expect_keyword("AS")
        token = self.current
        if token.type is TokenType.KEYWORD and token.value in _TYPE_KEYWORDS:
            self.advance()
            type_text = token.value
            if type_text == "DOUBLE":
                self.accept_keyword("PRECISION")
            if self.accept_punct("("):
                while not self.accept_punct(")"):
                    self.advance()
        else:
            type_text = self.expect_identifier("type name")
        self.expect_punct(")")
        return CastExpr(operand=operand, target_type=canonical_type(type_text))
