"""Expression evaluation for MiniSQL.

The evaluator works against a *row context*: a mapping from column keys
to values.  Keys are stored in three forms so unqualified, qualified and
alias references all resolve: ``name``, ``table.name``.  Ambiguous
unqualified names (same column in two joined tables) raise
``ProgrammingError`` at bind time, matching real engines.

Three-valued logic: SQL NULL propagates through comparisons and
arithmetic; ``AND``/``OR`` follow Kleene logic (NULL AND FALSE = FALSE).
"""

from __future__ import annotations

import re
from typing import Any, Mapping, Optional, Sequence

from .ast_nodes import (
    Between, BinaryOp, CaseExpr, CastExpr, ColumnRef, Expression,
    FunctionCall, InList, IsNull, Like, Literal, Placeholder, Star, UnaryOp,
)
from .errors import DataError, ProgrammingError
from .functions import call_scalar, is_aggregate
from .types import cast_value


class RowContext:
    """Resolves column references against the current row.

    ``columns`` maps *resolution keys* to positions in the row tuple.
    A key is either ``"name"`` (if unambiguous) or ``"table.name"``.
    """

    __slots__ = ("columns", "row", "ambiguous")

    def __init__(self, columns: Mapping[str, int], ambiguous: frozenset[str] = frozenset()):
        self.columns = columns
        self.ambiguous = ambiguous
        self.row: Sequence[Any] = ()

    def bind(self, row: Sequence[Any]) -> "RowContext":
        self.row = row
        return self

    def resolve(self, ref: ColumnRef) -> int:
        key = ref.qualified.lower()
        try:
            return self.columns[key]
        except KeyError:
            pass
        if ref.table is None and ref.name.lower() in self.ambiguous:
            raise ProgrammingError(f"ambiguous column name: {ref.name}")
        raise ProgrammingError(f"no such column: {ref.qualified}")

    def lookup(self, ref: ColumnRef) -> Any:
        return self.row[self.resolve(ref)]


def evaluate(
    expr: Expression,
    context: Optional[RowContext] = None,
    params: Sequence[Any] = (),
) -> Any:
    """Evaluate ``expr`` against the bound row in ``context``."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Placeholder):
        try:
            return params[expr.index]
        except IndexError:
            raise ProgrammingError(
                f"statement uses parameter {expr.index + 1} but only "
                f"{len(params)} supplied"
            ) from None
    if isinstance(expr, ColumnRef):
        if context is None:
            raise ProgrammingError(f"column reference {ref_name(expr)} outside a row context")
        return context.lookup(expr)
    if isinstance(expr, UnaryOp):
        return _eval_unary(expr, context, params)
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, context, params)
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, context, params)
        result = value is None
        return int(result != expr.negated)
    if isinstance(expr, InList):
        return _eval_in(expr, context, params)
    if isinstance(expr, Between):
        return _eval_between(expr, context, params)
    if isinstance(expr, Like):
        return _eval_like(expr, context, params)
    if isinstance(expr, FunctionCall):
        # Multi-argument MIN/MAX are scalar functions (sqlite semantics);
        # other aggregate names never evaluate outside GROUP BY handling.
        if is_aggregate(expr.name) and not (
            expr.name in ("MIN", "MAX") and len(expr.args) >= 2
        ):
            raise ProgrammingError(
                f"misuse of aggregate function {expr.name}() outside GROUP BY context"
            )
        args = [evaluate(a, context, params) for a in expr.args]
        return call_scalar(expr.name, args)
    if isinstance(expr, CaseExpr):
        return _eval_case(expr, context, params)
    if isinstance(expr, CastExpr):
        return cast_value(evaluate(expr.operand, context, params), expr.target_type)
    if isinstance(expr, Star):
        raise ProgrammingError("'*' is only valid in a select list or COUNT(*)")
    raise ProgrammingError(f"cannot evaluate expression node {type(expr).__name__}")


def ref_name(expr: Expression) -> str:
    """Human-readable name for an expression (used for result columns)."""
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FunctionCall):
        inner = ", ".join(ref_name(a) for a in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name.lower()}({prefix}{inner})"
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, Literal):
        return repr(expr.value) if isinstance(expr.value, str) else str(expr.value)
    if isinstance(expr, BinaryOp):
        return f"{ref_name(expr.left)} {expr.op} {ref_name(expr.right)}"
    if isinstance(expr, UnaryOp):
        return f"{expr.op} {ref_name(expr.operand)}"
    if isinstance(expr, CastExpr):
        return f"cast({ref_name(expr.operand)} as {expr.target_type.lower()})"
    if isinstance(expr, Placeholder):
        return "?"
    return type(expr).__name__.lower()


def truthy(value: Any) -> bool:
    """SQL truth for WHERE/HAVING/ON: NULL and 0 are not true."""
    if value is None:
        return False
    if isinstance(value, str):
        # sqlite coerces numeric-looking strings in boolean context
        try:
            return float(value) != 0
        except ValueError:
            return False
    return bool(value)


# ---------------------------------------------------------------------------
# operator implementations
# ---------------------------------------------------------------------------


def _eval_unary(expr: UnaryOp, context: Optional[RowContext], params: Sequence[Any]) -> Any:
    value = evaluate(expr.operand, context, params)
    if expr.op == "NOT":
        if value is None:
            return None
        return int(not truthy(value))
    if value is None:
        return None
    if expr.op == "-":
        _require_number(value, "unary -")
        return -value
    raise ProgrammingError(f"unknown unary operator {expr.op}")


def _eval_binary(expr: BinaryOp, context: Optional[RowContext], params: Sequence[Any]) -> Any:
    op = expr.op
    if op == "AND":
        left = evaluate(expr.left, context, params)
        if left is not None and not truthy(left):
            return 0
        right = evaluate(expr.right, context, params)
        if right is not None and not truthy(right):
            return 0
        if left is None or right is None:
            return None
        return 1
    if op == "OR":
        left = evaluate(expr.left, context, params)
        if left is not None and truthy(left):
            return 1
        right = evaluate(expr.right, context, params)
        if right is not None and truthy(right):
            return 1
        if left is None or right is None:
            return None
        return 0

    left = evaluate(expr.left, context, params)
    right = evaluate(expr.right, context, params)
    if op == "||":
        if left is None or right is None:
            return None
        return _as_text(left) + _as_text(right)
    if op in ("=", "<>", "<", ">", "<=", ">="):
        return _compare(op, left, right)
    # arithmetic
    if left is None or right is None:
        return None
    _require_number(left, op)
    _require_number(right, op)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # sqlite yields NULL on division by zero
        if isinstance(left, int) and isinstance(right, int):
            return left // right if left % right == 0 else left / right
        return left / right
    if op == "%":
        if right == 0:
            return None
        return left % right
    raise ProgrammingError(f"unknown operator {op}")


def _compare(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    # numeric vs text never equal, like sqlite; but allow bool-as-int
    if isinstance(left, str) != isinstance(right, str):
        # try numeric coercion of the string side for PerfDMF convenience
        if isinstance(left, str):
            left = _maybe_number(left)
        else:
            right = _maybe_number(right)
        if isinstance(left, str) != isinstance(right, str):
            return int(op == "<>")  # incomparable: only <> is true
    if op == "=":
        return int(left == right)
    if op == "<>":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == ">":
        return int(left > right)
    if op == "<=":
        return int(left <= right)
    if op == ">=":
        return int(left >= right)
    raise ProgrammingError(f"unknown comparison {op}")


def _eval_in(expr: InList, context: Optional[RowContext], params: Sequence[Any]) -> Any:
    value = evaluate(expr.operand, context, params)
    if value is None:
        return None
    saw_null = False
    for item in expr.items:
        candidate = evaluate(item, context, params)
        if candidate is None:
            saw_null = True
            continue
        hit = _compare("=", value, candidate)
        if hit:
            return int(not expr.negated)
    if saw_null:
        return None
    return int(expr.negated)


def _eval_between(expr: Between, context: Optional[RowContext], params: Sequence[Any]) -> Any:
    value = evaluate(expr.operand, context, params)
    low = evaluate(expr.low, context, params)
    high = evaluate(expr.high, context, params)
    if value is None or low is None or high is None:
        return None
    result = bool(_compare(">=", value, low)) and bool(_compare("<=", value, high))
    return int(result != expr.negated)


def _eval_like(expr: Like, context: Optional[RowContext], params: Sequence[Any]) -> Any:
    value = evaluate(expr.operand, context, params)
    pattern = evaluate(expr.pattern, context, params)
    if value is None or pattern is None:
        return None
    result = like_match(str(pattern), str(value))
    return int(result != expr.negated)


def like_match(pattern: str, value: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` one char; case-insensitive."""
    regex = _like_regex(pattern)
    return regex.match(value) is not None


_LIKE_CACHE: dict[str, re.Pattern[str]] = {}


def _like_regex(pattern: str) -> re.Pattern[str]:
    cached = _LIKE_CACHE.get(pattern)
    if cached is not None:
        return cached
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    compiled = re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)
    if len(_LIKE_CACHE) > 1024:
        _LIKE_CACHE.clear()
    _LIKE_CACHE[pattern] = compiled
    return compiled


def _eval_case(expr: CaseExpr, context: Optional[RowContext], params: Sequence[Any]) -> Any:
    if expr.operand is not None:
        subject = evaluate(expr.operand, context, params)
        for condition, result in expr.whens:
            candidate = evaluate(condition, context, params)
            if subject is not None and candidate is not None and _compare("=", subject, candidate):
                return evaluate(result, context, params)
    else:
        for condition, result in expr.whens:
            if truthy(evaluate(condition, context, params)):
                return evaluate(result, context, params)
    if expr.default is not None:
        return evaluate(expr.default, context, params)
    return None


def _require_number(value: Any, op: str) -> None:
    if not isinstance(value, (int, float)):
        raise DataError(f"non-numeric operand for {op}: {value!r}")


def _maybe_number(text: str) -> Any:
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


def _as_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        return repr(value)
    return str(value)


# ---------------------------------------------------------------------------
# analysis helpers used by the planner
# ---------------------------------------------------------------------------


def walk(expr: Expression):
    """Yield ``expr`` and every sub-expression."""
    yield expr
    if isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, IsNull):
        yield from walk(expr.operand)
    elif isinstance(expr, InList):
        yield from walk(expr.operand)
        for item in expr.items:
            yield from walk(item)
    elif isinstance(expr, Between):
        yield from walk(expr.operand)
        yield from walk(expr.low)
        yield from walk(expr.high)
    elif isinstance(expr, Like):
        yield from walk(expr.operand)
        yield from walk(expr.pattern)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, CaseExpr):
        if expr.operand is not None:
            yield from walk(expr.operand)
        for condition, result in expr.whens:
            yield from walk(condition)
            yield from walk(result)
        if expr.default is not None:
            yield from walk(expr.default)
    elif isinstance(expr, CastExpr):
        yield from walk(expr.operand)


def is_aggregate_call(node: Expression) -> bool:
    """True for genuine aggregate calls (excludes scalar 2+-arg MIN/MAX)."""
    return (
        isinstance(node, FunctionCall)
        and is_aggregate(node.name)
        and not (node.name in ("MIN", "MAX") and len(node.args) >= 2)
    )


def contains_aggregate(expr: Expression) -> bool:
    return any(is_aggregate_call(node) for node in walk(expr))


def column_refs(expr: Expression) -> list[ColumnRef]:
    return [node for node in walk(expr) if isinstance(node, ColumnRef)]
