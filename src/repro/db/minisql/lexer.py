"""Hand-written lexer for the MiniSQL dialect.

The lexer converts SQL text into a flat list of :class:`Token` objects.
It understands:

* line comments (``-- ...``) and block comments (``/* ... */``),
* single-quoted string literals with ``''`` escaping,
* double-quoted *identifiers* (so reserved words can name columns),
* integer and floating point literals (including ``1e-3`` notation),
* ``?`` positional placeholders,
* the operator and punctuation sets from :mod:`repro.db.minisql.tokens`.
"""

from __future__ import annotations

from .errors import SQLSyntaxError
from .tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenType

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_SPACE = frozenset(" \t\r\n\f\v")


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` and return the token list terminated by EOF."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch in _SPACE:
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise SQLSyntaxError("unterminated block comment", i, sql)
            i = end + 2
            continue
        if ch == "'":
            value, i2 = _scan_string(sql, i)
            tokens.append(Token(TokenType.STRING, value, i))
            i = i2
            continue
        if ch == '"':
            value, i2 = _scan_quoted_identifier(sql, i)
            tokens.append(Token(TokenType.IDENTIFIER, value, i))
            i = i2
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and sql[i + 1] in _DIGITS):
            value, i2 = _scan_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            i = i2
            continue
        if ch in _IDENT_START:
            j = i + 1
            while j < n and sql[j] in _IDENT_CONT:
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PLACEHOLDER, "?", i))
            i += 1
            continue
        op = _match_operator(sql, i)
        if op is not None:
            tokens.append(Token(TokenType.OPERATOR, op, i))
            i += len(op)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", i, sql)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _scan_string(sql: str, start: int) -> tuple[str, int]:
    """Scan a single-quoted literal beginning at ``start``; '' escapes '."""
    parts: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", start, sql)


def _scan_quoted_identifier(sql: str, start: int) -> tuple[str, int]:
    """Scan a double-quoted identifier; "" escapes a literal quote."""
    parts: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == '"':
            if i + 1 < n and sql[i + 1] == '"':
                parts.append('"')
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated quoted identifier", start, sql)


def _scan_number(sql: str, start: int) -> tuple[str, int]:
    """Scan an integer or float literal (``12``, ``1.5``, ``.5``, ``2e10``)."""
    i = start
    n = len(sql)
    while i < n and sql[i] in _DIGITS:
        i += 1
    if i < n and sql[i] == ".":
        i += 1
        while i < n and sql[i] in _DIGITS:
            i += 1
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and sql[j] in _DIGITS:
            i = j
            while i < n and sql[i] in _DIGITS:
                i += 1
    return sql[start:i], i


def _match_operator(sql: str, i: int) -> str | None:
    for op in OPERATORS:
        if sql.startswith(op, i):
            return op
    return None
