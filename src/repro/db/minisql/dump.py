"""SQL dump and restore for MiniSQL databases.

MiniSQL is an in-memory engine; persistence follows sqlite's ``.dump``
model — serialise the catalog and every row as portable SQL text, and
restore by executing the script.  Because the dump is plain SQL in the
shared dialect, a MiniSQL archive restores into sqlite (and vice versa),
which doubles as yet another engine-portability check.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Iterator

from .engine import Connection


def dump_sql(connection: Connection) -> Iterator[str]:
    """Yield SQL statements reconstructing the connection's database."""
    database = connection._database
    yield "BEGIN;"
    for table in database.tables.values():
        yield _create_table_sql(table, database)
        columns = ", ".join(c.name for c in table.columns)
        for _rowid, row in sorted(table.scan()):
            values = ", ".join(_render_value(v) for v in row)
            yield f"INSERT INTO {table.name} ({columns}) VALUES ({values});"
    for index_name, owner in database.index_owner.items():
        if index_name.startswith("__"):
            continue  # implicit PK/UNIQUE indexes are recreated by DDL
        table = database.tables.get(owner)
        if table is None:
            continue
        index = table.indexes[index_name]
        unique = "UNIQUE " if index.unique else ""
        columns = ", ".join(index.column_names)
        # The USING {HASH|BTREE} clause is deliberately dropped: dumps
        # must restore into sqlite unchanged, so ordered indexes degrade
        # to hash on a MiniSQL round-trip (results stay identical; only
        # range-scan acceleration is lost until the index is recreated).
        yield (
            f"CREATE {unique}INDEX {index.name} ON {table.name} ({columns});"
        )
    yield "COMMIT;"


def _create_table_sql(table, database) -> str:
    pk_columns = [c.name for c in table.columns if c.primary_key]
    composite = len(pk_columns) > 1
    parts = []
    for column in table.columns:
        bits = [column.name, column.affinity]
        if column.primary_key and not composite:
            bits.append("PRIMARY KEY")
            if column.autoincrement:
                bits.append("AUTOINCREMENT")
        elif column.not_null:
            bits.append("NOT NULL")
        if column.default is not None:
            bits.append(f"DEFAULT {_render_value(column.default)}")
        if column.references is not None:
            ref_table, ref_column = column.references
            bits.append(f"REFERENCES {ref_table}({ref_column})")
        parts.append(" ".join(bits))
    if composite:
        # sqlite rejects repeated inline PRIMARY KEY markers; a composite
        # key must be a single table-level constraint.
        parts.append(f"PRIMARY KEY ({', '.join(pk_columns)})")
    return f"CREATE TABLE {table.name} ({', '.join(parts)});"


def _render_value(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def save_database(connection: Connection, path: str | os.PathLike) -> Path:
    """Write the database to ``path`` as a SQL script."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write("-- MiniSQL dump\n")
        for statement in dump_sql(connection):
            fh.write(statement + "\n")
    return out


def load_database(connection: Connection, path: str | os.PathLike) -> int:
    """Execute a dump script into ``connection``; returns statement count.

    The target database should be empty (restores do not merge).
    """
    script = Path(path).read_text(encoding="utf-8")
    statements = [
        line for line in script.splitlines()
        if line.strip() and not line.lstrip().startswith("--")
    ]
    connection.executescript("\n".join(statements))
    return len(statements)
