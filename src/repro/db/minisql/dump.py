"""SQL dump and restore for MiniSQL databases.

MiniSQL is an in-memory engine; persistence follows sqlite's ``.dump``
model — serialise the catalog and every row as portable SQL text, and
restore by executing the script.  Because the dump is plain SQL in the
shared dialect, a MiniSQL archive restores into sqlite (and vice versa),
which doubles as yet another engine-portability check.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator, Optional

#: Marker for the machine-readable trailer the WAL checkpoint appends to
#: a dump.  sqlite (and ``load_database``) skip it as a comment; MiniSQL
#: recovery reads the original rowid numbering back out of it.
META_PREFIX = "-- minisql-meta: "


def dump_sql(connection) -> Iterator[str]:
    """Yield SQL statements reconstructing the connection's database.

    Accepts either an engine ``Connection`` or a bare storage
    ``Database`` (duck-typed, so the WAL checkpoint path can dump
    without importing the engine front end).
    """
    yield from dump_database_sql(getattr(connection, "_database", connection))


def dump_database_sql(database) -> Iterator[str]:
    """Yield SQL statements reconstructing ``database`` (storage-level)."""
    yield "BEGIN;"
    for table in database.tables.values():
        yield _create_table_sql(table, database)
        columns = ", ".join(c.name for c in table.columns)
        for _rowid, row in sorted(table.scan()):
            values = ", ".join(_render_value(v) for v in row)
            yield f"INSERT INTO {table.name} ({columns}) VALUES ({values});"
    for index_name, owner in database.index_owner.items():
        if index_name.startswith("__"):
            continue  # implicit PK/UNIQUE indexes are recreated by DDL
        table = database.tables.get(owner)
        if table is None:
            continue
        index = table.indexes[index_name]
        unique = "UNIQUE " if index.unique else ""
        columns = ", ".join(index.column_names)
        # The USING {HASH|BTREE} clause is deliberately dropped: dumps
        # must restore into sqlite unchanged, so ordered indexes degrade
        # to hash on a MiniSQL round-trip (results stay identical; only
        # range-scan acceleration is lost until the index is recreated).
        yield (
            f"CREATE {unique}INDEX {index.name} ON {table.name} ({columns});"
        )
    yield "COMMIT;"


def _create_table_sql(table, database) -> str:
    pk_columns = [c.name for c in table.columns if c.primary_key]
    composite = len(pk_columns) > 1
    parts = []
    for column in table.columns:
        bits = [column.name, column.affinity]
        if column.primary_key and not composite:
            bits.append("PRIMARY KEY")
            if column.autoincrement:
                bits.append("AUTOINCREMENT")
        elif column.not_null:
            bits.append("NOT NULL")
        if column.default is not None:
            bits.append(f"DEFAULT {_render_value(column.default)}")
        if column.references is not None:
            ref_table, ref_column = column.references
            bits.append(f"REFERENCES {ref_table}({ref_column})")
        parts.append(" ".join(bits))
    if composite:
        # sqlite rejects repeated inline PRIMARY KEY markers; a composite
        # key must be a single table-level constraint.
        parts.append(f"PRIMARY KEY ({', '.join(pk_columns)})")
    return f"CREATE TABLE {table.name} ({', '.join(parts)});"


def _render_value(value: Any) -> str:
    # Only quotes need escaping: restores tokenize the whole script with
    # the real lexer (never line filtering), so control characters —
    # newlines, carriage returns, text resembling comments or keywords —
    # ride inside the quoted literal byte-for-byte.
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def checkpoint_meta(database, last_lsn: int) -> dict:
    """The recovery trailer for a checkpoint of ``database``.

    Restoring a dump renumbers rows sequentially (INSERT order), so the
    trailer records each table's original rowids — in the sorted order
    the dump emits them — plus the rowid/autoincrement high-water marks.
    ``last_lsn`` marks how much of the WAL the checkpoint already
    contains; recovery skips records at or below it.
    """
    tables = {}
    for key, table in database.tables.items():
        entry = {
            "rowids": sorted(table.rows),
            "next_rowid": table._next_rowid,
            "last_autoincrement": table.last_autoincrement,
        }
        # The SQL body of a dump is deliberately storage-agnostic (a
        # columnar table dumps byte-identically to a row table); the
        # trailer alone carries the storage mode across a recovery.
        if getattr(table, "is_columnar", False):
            entry["columnar"] = True
        tables[key] = entry
    return {"last_lsn": last_lsn, "tables": tables}


def render_meta(meta: dict) -> str:
    return META_PREFIX + json.dumps(meta, separators=(",", ":"))


def parse_meta(script: str) -> Optional[dict]:
    """Extract the checkpoint trailer from a dump script, if present."""
    for line in reversed(script.splitlines()):
        line = line.strip()
        if line.startswith(META_PREFIX):
            return json.loads(line[len(META_PREFIX):])
        if line and not line.startswith("--"):
            return None
    return None


def save_database(connection, path: str | os.PathLike) -> Path:
    """Write the database to ``path`` as a SQL script.

    ``newline=""`` disables newline translation so a ``\\r`` inside a
    TEXT value lands in the file verbatim (and survives the matching
    untranslated read in :func:`load_database`).
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8", newline="") as fh:
        fh.write("-- MiniSQL dump\n")
        for statement in dump_sql(connection):
            fh.write(statement + "\n")
    return out


def load_database(connection, path: str | os.PathLike) -> int:
    """Execute a dump script into ``connection``; returns statement count.

    The whole script goes through the engine's tokenizer — which skips
    comments and keeps string literals intact — rather than any
    line-based filtering, so values containing newlines, ``--``, or
    transaction keywords restore exactly.  The target database should
    be empty (restores do not merge).
    """
    from .parser import parse

    with open(path, "r", encoding="utf-8", newline="") as fh:
        script = fh.read()
    connection.executescript(script)
    return len(parse(script))
