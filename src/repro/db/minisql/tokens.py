"""Token definitions for the MiniSQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.db.minisql.lexer.Lexer`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PLACEHOLDER = "placeholder"
    EOF = "eof"


#: Reserved words recognised by the parser.  Matching is case-insensitive;
#: the lexer upper-cases keyword lexemes.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
        "LIMIT", "OFFSET", "ASC", "DESC", "AS", "DISTINCT", "ALL",
        "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
        "CREATE", "TABLE", "DROP", "INDEX", "ON", "IF", "EXISTS",
        "NOT", "NULL", "PRIMARY", "KEY", "UNIQUE", "FOREIGN",
        "REFERENCES", "DEFAULT", "AUTOINCREMENT", "CHECK",
        "AND", "OR", "IN", "IS", "LIKE", "BETWEEN", "CASE", "WHEN",
        "THEN", "ELSE", "END", "CAST", "JOIN", "INNER", "LEFT",
        "RIGHT", "OUTER", "CROSS", "UNION", "EXCEPT", "INTERSECT",
        "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION",
        "INTEGER", "INT", "BIGINT", "SMALLINT", "REAL", "DOUBLE",
        "FLOAT", "PRECISION", "TEXT", "VARCHAR", "CHAR", "BOOLEAN",
        "BLOB", "NUMERIC", "DECIMAL", "TRUE", "FALSE", "ALTER",
        "ADD", "COLUMN", "RENAME", "TO", "PRAGMA", "EXPLAIN", "USING",
        "COUNT", "SUM", "AVG", "MIN", "MAX",
    }
)

#: Multi-character operators, longest first so the lexer can scan greedily.
OPERATORS = ("<>", "!=", ">=", "<=", "||", "=", "<", ">", "+", "-", "*", "/", "%")

PUNCTUATION = ("(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded payload: keyword lexemes are upper-cased,
    string literals have quotes stripped and doubled quotes collapsed,
    numbers remain text (the parser converts to int/float).
    """

    type: TokenType
    value: str
    position: int

    def matches(self, ttype: TokenType, value: str | None = None) -> bool:
        """Return True when this token has type ``ttype`` (and ``value``)."""
        if self.type is not ttype:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}@{self.position})"
