"""MiniSQL — a from-scratch, pure-Python, in-memory relational engine.

MiniSQL is the second storage engine behind :mod:`repro.db.api` (the
first is the stdlib ``sqlite3``).  It exists to make PerfDMF's central
portability claim — *one data-management API over interchangeable SQL
engines, with no vendor-specific SQL* — mechanically testable: the whole
PerfDMF test suite runs against both engines.

Public surface::

    from repro.db import minisql
    conn = minisql.connect()
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
    conn.executemany("INSERT INTO t (x) VALUES (?)", [(1.5,), (2.5,)])
    rows = conn.execute("SELECT avg(x) FROM t").fetchall()
"""

from .dump import dump_sql, load_database, save_database
from .engine import (
    Connection, Cursor, apilevel, connect, paramstyle,
    reset_shared_databases, threadsafety,
)
from .wal import WriteAheadLog, open_file_database
from .errors import (
    DatabaseError, DataError, IntegrityError, InterfaceError, InternalError,
    MiniSQLError, NotSupportedError, OperationalError, ProgrammingError,
    SQLSyntaxError, Warning,
)

__all__ = [
    "Connection", "Cursor", "connect", "reset_shared_databases",
    "dump_sql", "save_database", "load_database",
    "WriteAheadLog", "open_file_database",
    "apilevel", "paramstyle", "threadsafety",
    "MiniSQLError", "Warning", "InterfaceError", "DatabaseError",
    "DataError", "OperationalError", "IntegrityError", "InternalError",
    "ProgrammingError", "NotSupportedError", "SQLSyntaxError",
]
