"""Write-ahead logging, checkpoints and crash recovery for MiniSQL.

PerfDMF parks profile data in a database precisely so it outlives the
tools that produced it (paper §3.1) — which an in-memory engine cannot
promise.  This module gives file-backed MiniSQL archives
(``minisql:///path/archive.mdb``) sqlite-style durability:

* an **append-only write-ahead log** of logical records — one per
  mutation (insert/delete/update, batched bulk appends, DDL as SQL
  text) plus transaction boundaries (begin/commit/rollback).  Each
  record is length-prefixed and CRC32-checksummed, so a torn tail left
  by a crash is detected, not misread.  The log rotates into numbered
  segment files; replay walks them in order;
* **atomic checkpoints** that reuse the SQL dump format
  (:mod:`~repro.db.minisql.dump`): write to a temp file, fsync,
  ``os.replace`` over the archive, then truncate the WAL.  The dump
  carries a machine-readable trailer (original rowids, high-water
  marks, the WAL position it contains) that sqlite skips as a comment;
* **recovery on open**: restore the checkpoint, replay committed WAL
  records past the checkpoint LSN, discard uncommitted transactions,
  stop at the first bad checksum.  A fresh checkpoint is then written
  so every open starts from a clean, empty log.

Durability knobs mirror sqlite's ``PRAGMA synchronous``:

======== ==========================================================
off       no fsync anywhere; flush-to-OS at commit (survives
          ``kill -9``, not power loss)
normal    fsync at checkpoints and segment rotation (default)
full      additionally fsync every commit barrier
======== ==========================================================

Record payloads are pickled (binary floats round-trip exactly and the
encoder is an order of magnitude faster than JSON on PerfDMF's
million-value bulk batches); the framing is written through
:mod:`repro.testing.faults` so crash-matrix tests can kill the process
at any named protocol step or tear a record mid-write.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.obs.log import get_logger
from repro.obs.metrics import registry as _registry
from repro.obs.trace import tracer as _tracer
from repro.testing import faults

from .dump import checkpoint_meta, dump_database_sql, parse_meta, render_meta
from .errors import OperationalError

_log = get_logger("repro.db.minisql.wal")

#: Record framing: little-endian payload length + CRC32 of the payload.
_HEADER = struct.Struct("<II")

SYNC_POLICIES = ("off", "normal", "full")

#: Active segment size that triggers rotation into the next segment.
DEFAULT_SEGMENT_BYTES = 16 * 1024 * 1024

#: WAL bytes since the last checkpoint that trigger an automatic
#: checkpoint at the next commit boundary.
DEFAULT_AUTOCHECKPOINT_BYTES = 256 * 1024 * 1024


def _encode_record(record: tuple) -> bytes:
    payload = pickle.dumps(record, protocol=4)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _segment_name(path: Path, seq: int) -> Path:
    return path.parent / f"{path.name}.wal.{seq:06d}"


def list_segments(path: Path) -> list[Path]:
    """Existing WAL segments for archive ``path``, in replay order."""
    prefix = f"{path.name}.wal."
    found = []
    for entry in path.parent.glob(prefix + "*"):
        suffix = entry.name[len(prefix):]
        if suffix.isdigit():
            found.append((int(suffix), entry))
    return [entry for _seq, entry in sorted(found)]


def decode_buffer(data: bytes) -> tuple[list[tuple], bool]:
    """Decode CRC-framed records from a byte buffer; returns
    (records, clean).

    ``clean`` is False when the buffer ends in a torn or corrupt
    record — every byte before the tear still decodes, so the committed
    prefix is preserved.  Shared by segment reads and by replicas
    decoding shipped WAL bytes (the same framing travels the wire, so
    corruption anywhere between primary disk and replica memory is
    caught here).
    """
    records: list[tuple] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            return records, False  # torn tail: length promises more bytes
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, False  # bit rot or torn rewrite
        try:
            record = pickle.loads(payload)
        except Exception:
            return records, False
        if not isinstance(record, tuple) or len(record) < 3:
            return records, False
        records.append(record)
        offset = end
    return records, offset == total


def _read_segment(segment: Path) -> tuple[list[tuple], bool]:
    """Decode one segment; returns (records, clean)."""
    return decode_buffer(segment.read_bytes())


def read_records(path: Path) -> tuple[list[tuple], bool]:
    """All decodable WAL records for ``path`` across segments, in order.

    Stops at the first bad record; later segments after a tear are
    ignored (they postdate the corruption, so replaying them would break
    prefix consistency).
    """
    records: list[tuple] = []
    for segment in list_segments(path):
        segment_records, clean = _read_segment(segment)
        records.extend(segment_records)
        if not clean:
            return records, False
    return records, True


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platform without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """The append-only log for one file-backed archive.

    Records are tuples ``(lsn, txn, op, *args)``; ``txn`` 0 marks
    auto-committed operations (always replayed), any other id is
    replayed only if its ``commit`` record made it to disk.  Ops:

    ========= ======================================================
    begin     transaction opened
    commit    transaction durable — the commit barrier fsyncs here
              under ``synchronous=full``
    rollback  transaction abandoned (recovery skips it either way)
    ins       (table, rowid, row) single stored row
    bmany     (table, start_rowid, rows) contiguous bulk append
    del       (table, rowid)
    upd       (table, rowid, [(position, new_value), ...])
    ddl       (sql,) schema change replayed through the executor
    ========= ======================================================

    All mutating methods hold an internal re-entrant mutex: connections
    to the same archive share one WAL, and autocommit writers run
    without the database transaction lock, so append/rotation/LSN
    bookkeeping — and especially checkpoint truncation racing a
    concurrent append — must serialise here.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        synchronous: str = "normal",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        autocheckpoint_bytes: Optional[int] = DEFAULT_AUTOCHECKPOINT_BYTES,
    ):
        if synchronous not in SYNC_POLICIES:
            raise ValueError(f"synchronous must be one of {SYNC_POLICIES}")
        self.path = Path(path)
        self.synchronous = synchronous
        self.segment_bytes = segment_bytes
        self.autocheckpoint_bytes = autocheckpoint_bytes
        self.records_written = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self.checkpoints = 0
        self.bytes_since_checkpoint = 0
        self.last_lsn = 0
        #: LSN already folded into the on-disk checkpoint: records at or
        #: below it no longer exist in the segments.  Replication uses
        #: this as the resync watermark — a replica whose applied LSN is
        #: behind it can no longer tail incrementally.
        self.checkpoint_lsn = 0
        self._lock = threading.RLock()
        existing = list_segments(self.path)
        if existing:
            last = existing[-1].name.rpartition(".")[2]
            self._seq = int(last) + 1
        else:
            self._seq = 1
        self._fh: Optional[io.BufferedWriter] = None
        self._segment_size = 0
        self._open_segment()

    # -- segment lifecycle -------------------------------------------------

    def _open_segment(self) -> None:
        segment = _segment_name(self.path, self._seq)
        self._fh = open(segment, "ab")
        self._segment_size = self._fh.tell()

    def _rotate(self) -> None:
        faults.crash_point("wal.rotate.before")
        assert self._fh is not None
        self._fh.flush()
        if self.synchronous != "off":
            self._fsync()
        self._fh.close()
        self._seq += 1
        self._open_segment()
        faults.crash_point("wal.rotate.after")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.flush()
                    self._fh.close()
                except (OSError, ValueError):
                    pass
                self._fh = None

    def _fsync(self) -> None:
        assert self._fh is not None
        faults.fsync(self._fh, "wal.fsync")
        self.fsyncs += 1
        _registry.counter("minisql.wal.fsyncs").inc()

    # -- appending ---------------------------------------------------------

    def append(self, op: str, txn: int, *args: Any) -> int:
        """Append one logical record; returns its LSN.

        The write lands in the Python/OS buffers only — durability is
        the commit barrier's job.  Torn-write faults armed on
        ``wal.append`` tear exactly here.
        """
        with self._lock:
            assert self._fh is not None, "WAL is closed"
            self.last_lsn += 1
            encoded = _encode_record((self.last_lsn, txn, op) + args)
            faults.crash_point("wal.append.before")
            faults.write(self._fh, encoded, "wal.append")
            faults.crash_point("wal.append.after")
            self.records_written += 1
            self.bytes_written += len(encoded)
            self.bytes_since_checkpoint += len(encoded)
            self._segment_size += len(encoded)
            _registry.counter("minisql.wal.records").inc()
            _registry.counter("minisql.wal.bytes").inc(len(encoded))
            if self._segment_size >= self.segment_bytes:
                self._rotate()
            return self.last_lsn

    def barrier(self) -> None:
        """Make everything appended so far crash-durable per policy:
        always flushed to the OS, fsynced under ``synchronous=full``."""
        with self._lock:
            assert self._fh is not None
            self._fh.flush()
            if self.synchronous == "full":
                self._fsync()

    # -- transaction records -----------------------------------------------

    def log_begin(self, txn: int) -> None:
        self.append("begin", txn)

    def log_commit(self, txn: int) -> None:
        with self._lock:
            faults.crash_point("wal.commit.before_record")
            self.append("commit", txn)
            faults.crash_point("wal.commit.after_record")
            self.barrier()
            faults.crash_point("wal.commit.after_barrier")
        _registry.counter("minisql.wal.commits").inc()

    def log_rollback(self, txn: int) -> None:
        with self._lock:
            self.append("rollback", txn)
            self.barrier()

    def should_checkpoint(self) -> bool:
        return (
            self.autocheckpoint_bytes is not None
            and self.bytes_since_checkpoint >= self.autocheckpoint_bytes
        )

    # -- checkpoint ---------------------------------------------------------

    def checkpoint(self, database) -> None:
        """Atomically persist ``database`` and truncate the log.

        Protocol: dump to ``<archive>.tmp`` (with the recovery trailer),
        fsync, rename over the archive, fsync the directory, delete the
        now-redundant segments.  A crash at any step recovers: before
        the rename the old checkpoint + full WAL still reconstruct the
        state; after it, the trailer's LSN makes replay skip everything
        the new checkpoint already contains.
        """
        if database.in_transaction:
            raise OperationalError("cannot checkpoint inside a transaction")
        with self._lock, _tracer.span(
            "minisql.checkpoint", path=str(self.path)
        ):
            faults.crash_point("checkpoint.before_dump")
            tmp = self.path.parent / (self.path.name + ".tmp")
            with open(tmp, "w", encoding="utf-8", newline="") as fh:
                fh.write("-- MiniSQL dump\n")
                for statement in dump_database_sql(database):
                    fh.write(statement + "\n")
                fh.write(render_meta(checkpoint_meta(database, self.last_lsn)) + "\n")
                fh.flush()
                if self.synchronous != "off":
                    faults.fsync(fh, "checkpoint.fsync")
            faults.crash_point("checkpoint.after_dump")
            os.replace(tmp, self.path)
            if self.synchronous != "off":
                _fsync_dir(self.path.parent)
            faults.crash_point("checkpoint.after_rename")
            self._truncate()
            faults.crash_point("checkpoint.after_truncate")
            self.checkpoint_lsn = self.last_lsn
        self.checkpoints += 1
        self.bytes_since_checkpoint = 0
        _registry.counter("minisql.wal.checkpoints").inc()

    def _truncate(self) -> None:
        """Drop every segment and start a fresh one."""
        self.close()
        for segment in list_segments(self.path):
            try:
                segment.unlink()
            except OSError:
                pass
        self._seq += 1
        self._open_segment()

    # -- introspection ------------------------------------------------------

    def status(self) -> dict[str, Any]:
        with self._lock:
            return {
                "path": str(self.path),
                "synchronous": self.synchronous,
                "segment": self._seq,
                "segment_bytes": self.segment_bytes,
                "autocheckpoint_bytes": self.autocheckpoint_bytes,
                "records": self.records_written,
                "bytes": self.bytes_written,
                "bytes_since_checkpoint": self.bytes_since_checkpoint,
                "fsyncs": self.fsyncs,
                "checkpoints": self.checkpoints,
                "last_lsn": self.last_lsn,
                "checkpoint_lsn": self.checkpoint_lsn,
            }


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


def open_file_database(
    path: str | os.PathLike,
    synchronous: str = "normal",
    segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    autocheckpoint_bytes: Optional[int] = DEFAULT_AUTOCHECKPOINT_BYTES,
):
    """Open (and recover) the file-backed database at ``path``.

    Returns a :class:`~repro.db.minisql.storage.Database` with an
    attached, freshly-truncated :class:`WriteAheadLog`.  Recovery
    replays checkpoint + committed WAL records, then immediately writes
    a new checkpoint so the archive file reflects everything recovered
    and the log restarts empty.
    """
    from .storage import Database

    archive = Path(path).resolve()
    archive.parent.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()
    database = Database()
    checkpoint_lsn = 0
    restored = False
    with _tracer.span("minisql.recover", path=str(archive)) as span:
        if archive.exists():
            # newline="" matches the checkpoint writer: no universal-
            # newline translation, so \r inside TEXT values survives.
            with open(archive, "r", encoding="utf-8", newline="") as fh:
                script = fh.read()
            meta = parse_meta(script)
            _restore_checkpoint(database, script, meta)
            restored = True
            if meta is not None:
                checkpoint_lsn = int(meta.get("last_lsn", 0))
        records, clean = read_records(archive)
        applied, discarded = _apply_records(database, records, checkpoint_lsn)
        _rebuild_after_recovery(database)
        max_lsn = max(
            [checkpoint_lsn] + [record[0] for record in records], default=0
        )
        span.set(
            records=len(records), applied=applied,
            discarded_txns=len(discarded), torn=not clean,
        )
    wal = WriteAheadLog(
        archive,
        synchronous=synchronous,
        segment_bytes=segment_bytes,
        autocheckpoint_bytes=autocheckpoint_bytes,
    )
    wal.last_lsn = max_lsn
    # Collapse the recovered state into a fresh checkpoint: the old
    # segments stay on disk until the new archive file is in place, so
    # a crash *during* recovery just recovers again.
    wal.checkpoint(database)
    database.wal = wal
    duration_ms = round((time.perf_counter() - t0) * 1000.0, 3)
    _registry.counter("minisql.wal.recoveries").inc()
    _registry.counter("minisql.wal.recovered_records").inc(applied)
    _log.info(
        "recover",
        path=str(archive),
        checkpoint_restored=restored,
        wal_records=len(records),
        applied=applied,
        discarded_txns=len(discarded),
        torn_tail=not clean,
        duration_ms=duration_ms,
    )
    return database


def _restore_checkpoint(database, script: str, meta: Optional[dict]) -> None:
    """Execute a dump script into ``database`` and restore the original
    rowid numbering from the checkpoint trailer.

    The script is parsed whole by the real tokenizer — comments and
    transaction framing are dropped at the statement level, never by
    line filtering, so TEXT values containing newlines, ``--``, or
    ``BEGIN;``/``COMMIT;`` restore byte-for-byte.
    """
    from .ast_nodes import (
        BeginTransaction, CommitTransaction, RollbackTransaction,
    )
    from .executor import Executor
    from .parser import parse

    executor = None
    for statement in parse(script):
        if isinstance(
            statement,
            (BeginTransaction, CommitTransaction, RollbackTransaction),
        ):
            continue
        if executor is None:
            executor = Executor(database)
        executor.execute(statement)
    if meta is None:
        return
    for key, table_meta in meta.get("tables", {}).items():
        table = database.tables.get(key)
        if table is None:
            continue
        rowids = table_meta.get("rowids", [])
        # The dump emits rows in sorted-rowid order and the restore
        # assigned fresh sequential rowids in that same order — zip the
        # original numbering back on.
        current = [table.rows[rowid] for rowid in sorted(table.rows)]
        if len(rowids) == len(current):
            table.rows = dict(zip(rowids, current))
        table._next_rowid = int(table_meta.get("next_rowid", table._next_rowid))
        table.last_autoincrement = int(
            table_meta.get("last_autoincrement", table.last_autoincrement)
        )
        # The dump script is storage-agnostic (restores recreate plain
        # row tables); the trailer records which tables were columnar.
        if table_meta.get("columnar") and not table.is_columnar:
            database.set_table_storage(key, True)


def _apply_records(
    database, records: list[tuple], checkpoint_lsn: int
) -> tuple[int, set[int]]:
    """Replay committed records past ``checkpoint_lsn``.

    Returns (applied_count, discarded_txn_ids).  Row mutations are
    applied straight to the row stores; indexes are rebuilt once
    afterwards (:func:`_rebuild_after_recovery`).
    """
    committed = {0}
    for record in records:
        if record[2] == "commit":
            committed.add(record[1])
    applied = 0
    discarded: set[int] = set()
    executor = None
    for record in records:
        lsn, txn, op = record[0], record[1], record[2]
        if lsn <= checkpoint_lsn:
            continue
        if txn not in committed:
            if op not in ("begin", "commit", "rollback"):
                discarded.add(txn)
            continue
        if op in ("begin", "commit", "rollback"):
            continue
        if op == "ddl":
            if executor is None:
                from .executor import Executor

                executor = Executor(database)
            from .parser import parse

            for statement in parse(record[3]):
                executor.execute(statement)
            applied += 1
            continue
        table = database.tables.get(str(record[3]).lower())
        if table is None:
            continue  # table dropped later in history; nothing to apply
        if op == "ins":
            rowid, row = record[4], list(record[5])
            table.rows[rowid] = row
            if rowid >= table._next_rowid:
                table._next_rowid = rowid + 1
        elif op == "bmany":
            start, rows = record[4], record[5]
            for i, row in enumerate(rows):
                table.rows[start + i] = list(row)
            if rows and start + len(rows) > table._next_rowid:
                table._next_rowid = start + len(rows)
        elif op == "del":
            table.rows.pop(record[4], None)
        elif op == "upd":
            # Via apply_raw_update, not in-place row mutation: column
            # tables hand out materialised copies, so writes must go
            # back through the store.
            table.apply_raw_update(record[4], record[5])
        applied += 1
    return applied, discarded


def _rebuild_after_recovery(database) -> None:
    """Make derived state consistent with the replayed row stores:
    every index rebuilt, rowid/autoincrement high-water marks bumped."""
    for table in database.tables.values():
        if table.rows:
            top = max(table.rows)
            if top >= table._next_rowid:
                table._next_rowid = top + 1
        for position in table._pk_positions:
            if table.columns[position].affinity != "INTEGER":
                continue
            for row in table.rows.values():
                value = row[position]
                if isinstance(value, int) and value > table.last_autoincrement:
                    table.last_autoincrement = value
        for index in table.indexes.values():
            index.rebuild()
