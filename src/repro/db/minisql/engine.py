"""DB-API 2.0 style front end for MiniSQL.

``connect()`` returns a :class:`Connection` whose cursors behave like
sqlite3 cursors: ``execute(sql, params)``, ``executemany``,
``fetchone/fetchmany/fetchall``, ``description``, ``lastrowid``,
``rowcount``, iteration.  Parsed statements are cached by SQL text so
``executemany`` and repeated prepared statements skip the parser — the
difference is ~20x on PerfDMF's bulk-insert path.

Connections support sqlite3-compatible *deferred* transactions: the
first mutating statement implicitly begins a transaction, and
``commit()``/``rollback()`` end it.  ``isolation_level=None`` gives
autocommit.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence

from repro.obs.log import get_logger
from repro.obs.metrics import registry as _metrics_registry
from repro.obs.trace import tracer as _tracer

from .ast_nodes import (
    AlterTableAddColumn, AlterTableRename, BeginTransaction,
    CommitTransaction, CreateIndex, CreateTable, Delete, DropIndex,
    DropTable, Explain, Insert, Pragma, RollbackTransaction, Select,
    Statement, Update,
)
from .errors import InterfaceError, ProgrammingError
from .executor import Executor, ResultSet
from .parser import parse
from .storage import Database

_slow_log = get_logger("repro.db.minisql")

_snapshot_reads = _metrics_registry.counter("minisql.snapshot.reads")

apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"

_MUTATING = (Insert, Update, Delete)
#: Statements that change the catalog: they never open a deferred
#: transaction (sqlite semantics) but still take the database writer
#: lock when run outside one, so concurrent checkpoints/dumps see a
#: consistent catalog.
_DDL = (
    AlterTableAddColumn, AlterTableRename, CreateIndex, CreateTable,
    DropIndex, DropTable,
)

#: Per-connection parsed-statement cache capacity (LRU-evicted).
_STATEMENT_CACHE_SIZE = 512

#: Shared in-memory databases, keyed by name — mirrors sqlite's
#: ``file::memory:?cache=shared`` so several connections can see one DB
#: (PerfExplorer's server threads use this).
_SHARED_DATABASES: dict[str, Database] = {}
#: File-backed (WAL-durable) databases, keyed by resolved archive path.
#: Connections to the same path share one Database + WAL, like in-process
#: sqlite; there is no cross-process file locking (single-writer-process
#: assumption, documented in DESIGN.md §9).
_FILE_DATABASES: dict[str, Database] = {}
_SHARED_LOCK = threading.Lock()


def _is_file_target(database: str) -> bool:
    """File-backed archives are opt-in via an explicit marker: the
    ``.mdb`` suffix or a ``file:`` prefix.  Any other name — even one
    containing path separators — keeps its pre-durability meaning of a
    named shared in-memory database, so no previously valid target
    silently starts creating files on disk."""
    return database.startswith("file:") or database.endswith(".mdb")


def connect(database: str = ":memory:", isolation_level: Optional[str] = "") -> "Connection":
    """Open a MiniSQL connection.

    ``":memory:"`` creates a fresh private database.  A target ending
    in ``.mdb`` — or carrying an explicit ``file:`` prefix, for archive
    paths with other extensions — opens a durable file-backed archive:
    the database is recovered from its checkpoint + write-ahead log on
    first open and every mutation is WAL-logged (see
    :mod:`~repro.db.minisql.wal`).  Any other name (path separators
    included) refers to a named shared in-memory database: connections
    passing the same name share one catalog.
    """
    if database == ":memory:":
        db = Database()
    elif _is_file_target(database):
        from pathlib import Path

        from . import wal as _wal

        target = database[len("file:"):] if database.startswith("file:") else database
        key = str(Path(target).resolve())
        with _SHARED_LOCK:
            db = _FILE_DATABASES.get(key)
            if db is None:
                db = _wal.open_file_database(key)
                _FILE_DATABASES[key] = db
                # Re-attach a persisted shard configuration (PRAGMA
                # shards on a previous open); recovers any half-finished
                # shard ingest/hydration from its pending marker.
                from .shard import ShardManager

                db.shard_mgr = ShardManager.attach(db)
    else:
        with _SHARED_LOCK:
            db = _SHARED_DATABASES.setdefault(database, Database())
    return Connection(db, isolation_level=isolation_level)


def register_shared_database(name: str, database: Database) -> str:
    """Publish an existing Database object under a shared name.

    Later ``connect(name)`` calls return connections onto this object —
    the hook replicas use to mount their replayed database behind the
    PerfExplorer server.  Returns the name for convenience.
    """
    if name == ":memory:" or _is_file_target(name):
        raise ProgrammingError(f"cannot register {name!r} as a shared database")
    with _SHARED_LOCK:
        _SHARED_DATABASES[name] = database
    return name


def reset_shared_databases() -> None:
    """Drop all named shared and file-backed databases (test isolation
    helper).  File-backed databases are checkpointed first so their
    archives stay loadable by a later open."""
    with _SHARED_LOCK:
        for db in _SHARED_DATABASES.values():
            if db.shard_mgr is not None:
                db.shard_mgr.close()
                db.shard_mgr = None
        _SHARED_DATABASES.clear()
        for db in _FILE_DATABASES.values():
            if db.shard_mgr is not None:
                # Shard files are opened directly (not via connect), so
                # they are not in _FILE_DATABASES — close them here.
                db.shard_mgr.close()
                db.shard_mgr = None
            if db.wal is not None:
                try:
                    if not db.in_transaction:
                        db.wal.checkpoint(db)
                except OSError:
                    pass  # archive directory may be gone (tmp_path teardown)
                finally:
                    db.wal.close()
                    db.wal = None
        _FILE_DATABASES.clear()


class Connection:
    """One client connection to a MiniSQL database."""

    def __init__(self, database: Database, isolation_level: Optional[str] = ""):
        self._database = database
        self._executor = Executor(database)
        self._closed = False
        self._statement_cache: OrderedDict[str, list[Statement]] = OrderedDict()
        self._lock = threading.RLock()
        self.isolation_level = isolation_level  # None = autocommit
        self.in_transaction = False

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            if self.in_transaction:
                self.rollback()
            database = self._database
            if database.shard_mgr is not None:
                # Drop the scatter worker pool; shard state and files
                # stay (another connection reforks the pool lazily).
                database.shard_mgr.on_connection_close()
            if database.wal is not None:
                # Fold the WAL into a fresh checkpoint so a clean close
                # leaves a plain (sqlite-loadable) dump and an empty log.
                # The txn lock keeps another connection's open transaction
                # out of the dump.
                with database.txn_lock:
                    database.wal.checkpoint(database)
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ProgrammingError("cannot operate on a closed connection")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    # -- transactions --------------------------------------------------------

    def _begin_transaction(self) -> None:
        """Start a transaction, waiting for the database writer lock.

        Named shared databases may have several connections; like
        sqlite's database-level lock, only one transaction runs at a
        time and others block until commit/rollback.
        """
        if self.in_transaction:
            return
        self._database.txn_lock.acquire()
        self._database.begin()
        self.in_transaction = True

    def commit(self) -> None:
        self._check_open()
        with self._lock:
            if self.in_transaction:
                self._database.commit()
                self.in_transaction = False
                self._database.txn_lock.release()

    def rollback(self) -> None:
        self._check_open()
        with self._lock:
            if self.in_transaction:
                self._database.rollback()
                self.in_transaction = False
                self._database.txn_lock.release()

    # -- bulk load ------------------------------------------------------------

    @contextmanager
    def bulk_load(self) -> Iterator["Connection"]:
        """Scoped bulk-load mode (``PRAGMA bulk_load``).

        Inside the block, ``executemany`` inserts append rows with
        secondary index maintenance deferred; indexes are rebuilt once on
        exit (even on error — rollback remains the caller's call).
        """
        self.execute("PRAGMA bulk_load(on)")
        try:
            yield self
        finally:
            self.execute("PRAGMA bulk_load(off)")

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Snapshot of the database's access-path counters.

        ``rows_scanned`` counts every row produced by a base-table access
        path (full scans charge the whole table); ``rows_via_index`` is
        the subset that came through an index, so an indexed range query
        shows rows-scanned proportional to its result, not the table.
        Counters are shared by all connections to the same database.
        """
        self._check_open()
        stats = dict(self._database.stats)
        stats["columnar_tables"] = sum(
            1 for t in self._database.tables.values() if t.is_columnar
        )
        wal = self._database.wal
        if wal is not None:
            stats["wal_records"] = wal.records_written
            stats["wal_bytes"] = wal.bytes_written
            stats["wal_fsyncs"] = wal.fsyncs
            stats["wal_checkpoints"] = wal.checkpoints
        return stats

    def reset_stats(self) -> None:
        """Zero the access-path counters (benchmark bracketing helper)."""
        self._check_open()
        self._database.reset_stats()

    # -- cursors ---------------------------------------------------------------

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        return self.cursor().execute(sql, params)

    def executemany(self, sql: str, seq_of_params: Iterator[Sequence[Any]]) -> "Cursor":
        return self.cursor().executemany(sql, seq_of_params)

    def executescript(self, script: str) -> "Cursor":
        cursor = self.cursor()
        self.commit()
        for statement in self._parse(script):
            self._run(statement, (), cursor)
        self.commit()
        return cursor

    # -- internals ----------------------------------------------------------------

    def _parse(self, sql: str) -> list[Statement]:
        cache = self._statement_cache
        cached = cache.get(sql)
        if cached is None:
            cached = parse(sql)
            while len(cache) >= _STATEMENT_CACHE_SIZE:
                cache.popitem(last=False)  # evict least recently used
            cache[sql] = cached
        else:
            cache.move_to_end(sql)
        return cached

    def _run(self, statement: Statement, params: Sequence[Any], cursor: "Cursor") -> ResultSet:
        with self._lock:
            if isinstance(statement, BeginTransaction):
                self._begin_transaction()
                return ResultSet([], [], rowcount=0)
            if isinstance(statement, CommitTransaction):
                self.commit()
                return ResultSet([], [], rowcount=0)
            if isinstance(statement, RollbackTransaction):
                self.rollback()
                return ResultSet([], [], rowcount=0)
            snap_mgr = self._database.snapshot_mgr
            if (
                snap_mgr is not None
                and isinstance(statement, Select)
                and not self.in_transaction
                and self._database.shard_mgr is None
            ):
                # MVCC snapshot read: execute against the pinned
                # copy-on-write snapshot — never touches (or waits on)
                # the writer lock.  Inside an explicit transaction the
                # connection reads its own uncommitted state instead,
                # and sharded databases keep their scatter-gather path
                # (shard-resident tables may not be hydrated locally).
                self._database.stats["snapshot_selects"] += 1
                _snapshot_reads.inc()
                return Executor(snap_mgr.pin()).execute(statement, params)
            mgr = self._database.shard_mgr
            if mgr is not None:
                # Hydrate shard-resident tables the statement needs in
                # the primary (shard-routable SELECTs hydrate nothing).
                # Must run before any lock below: hydration takes the
                # database writer lock itself.
                mgr.ensure_local(statement)
            mutating = isinstance(statement, _MUTATING) or (
                isinstance(statement, Explain)
                and statement.analyze
                and isinstance(statement.statement, _MUTATING)
            )
            if mutating and self.isolation_level is not None:
                self._begin_transaction()
            elif (
                (mutating or isinstance(statement, _DDL))
                and not self.in_transaction
            ):
                # Autocommit (or DDL outside a transaction): hold the
                # database writer lock for the statement so shared-DB
                # writes serialise against other connections'
                # transactions and close-time checkpoints.
                with self._database.txn_lock:
                    return self._executor.execute(statement, params)
            return self._executor.execute(statement, params)

    # -- statement observation ------------------------------------------------

    def _observing(self) -> bool:
        """True when statement timing is worth the perf_counter calls."""
        return self._database.slow_query_ms is not None or _tracer.enabled

    def _observe_statement(
        self,
        sql: str,
        statement: Statement,
        elapsed: float,
        params: Sequence[Any] = (),
    ) -> None:
        """Record a timed statement: trace span and/or slow-query log."""
        if _tracer.enabled:
            _tracer.record("minisql.execute", elapsed, sql=sql.strip()[:200])
        threshold = self._database.slow_query_ms
        if (
            threshold is not None
            and elapsed * 1000.0 >= threshold
            and not isinstance(statement, Pragma)  # don't log the observer
        ):
            entry = {
                "sql": sql.strip()[:500],
                "plan": self._plan_summary(statement, params),
                "duration_ms": round(elapsed * 1000.0, 3),
            }
            self._database.slow_queries.append(entry)
            _slow_log.warning("slow_query", **entry)

    def _plan_summary(self, statement: Statement, params: Sequence[Any]) -> str:
        """Plan description for the slow-query log (lazy: only slow
        statements pay for the EXPLAIN re-plan)."""
        try:
            if isinstance(statement, Select):
                result = self._executor.execute(Explain(statement), params)
                return "; ".join(str(row[1]) for row in result.rows)
        except Exception:
            pass
        return type(statement).__name__.upper()


class Cursor:
    """sqlite3-compatible cursor."""

    arraysize = 1

    def __init__(self, connection: Connection):
        self.connection = connection
        self._rows: list[tuple[Any, ...]] = []
        self._cursor_index = 0
        self.description: Optional[list[tuple]] = None
        self.rowcount = -1
        self.lastrowid: Optional[int] = None
        self._closed = False

    # -- execution ------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> "Cursor":
        self._check_open()
        if isinstance(params, (str, bytes)):
            raise InterfaceError("parameters must be a sequence, not a string")
        statements = self.connection._parse(sql)
        if len(statements) != 1:
            raise ProgrammingError(
                "execute() accepts exactly one statement; use executescript()"
            )
        connection = self.connection
        if connection._observing():
            t0 = time.perf_counter()
            result = connection._run(statements[0], tuple(params), self)
            connection._observe_statement(
                sql, statements[0], time.perf_counter() - t0, tuple(params)
            )
        else:
            result = connection._run(statements[0], tuple(params), self)
        self._install(result)
        return self

    def executemany(self, sql: str, seq_of_params) -> "Cursor":
        self._check_open()
        statements = self.connection._parse(sql)
        if len(statements) != 1:
            raise ProgrammingError("executemany() accepts exactly one statement")
        statement = statements[0]
        if isinstance(statement, Select):
            raise ProgrammingError("executemany() cannot be used with SELECT")
        connection = self.connection
        if (
            isinstance(statement, Insert)
            and statement.select is None
            and len(statement.rows) == 1
        ):
            # Bulk-insert fast path: one lock acquisition, one dispatch.
            mgr = connection._database.shard_mgr
            if mgr is not None:
                # This path bypasses _run, so re-home shard-resident
                # rows here before taking any lock.
                mgr.ensure_local(statement)
            observing = connection._observing()
            t0 = time.perf_counter() if observing else 0.0
            with connection._lock:
                if connection.isolation_level is not None:
                    connection._begin_transaction()
                if connection.in_transaction:
                    result = connection._executor.execute_insert_batch(
                        statement, seq_of_params
                    )
                else:
                    # Autocommit batch: serialise on the writer lock like
                    # any other autocommit mutation.
                    with connection._database.txn_lock:
                        result = connection._executor.execute_insert_batch(
                            statement, seq_of_params
                        )
            if observing:
                connection._observe_statement(
                    sql, statement, time.perf_counter() - t0
                )
            self._install(result)
            return self
        total = 0
        result = None
        for params in seq_of_params:
            result = self.connection._run(statement, tuple(params), self)
            if result.rowcount > 0:
                total += result.rowcount
        if result is None:
            result = ResultSet([], [], rowcount=0)
        result.rowcount = total
        self._install(result)
        return self

    def executescript(self, script: str) -> "Cursor":
        self.connection.executescript(script)
        return self

    def _install(self, result: ResultSet) -> None:
        self._rows = result.rows
        self._cursor_index = 0
        self.rowcount = result.rowcount
        if result.lastrowid is not None:
            self.lastrowid = result.lastrowid
        if result.columns:
            self.description = [
                (name, None, None, None, None, None, None) for name in result.columns
            ]
        else:
            self.description = None

    # -- fetching -------------------------------------------------------------

    def fetchone(self) -> Optional[tuple[Any, ...]]:
        self._check_open()
        if self._cursor_index >= len(self._rows):
            return None
        row = self._rows[self._cursor_index]
        self._cursor_index += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple[Any, ...]]:
        self._check_open()
        if size is None:
            size = self.arraysize
        chunk = self._rows[self._cursor_index : self._cursor_index + size]
        self._cursor_index += len(chunk)
        return list(chunk)

    def fetchall(self) -> list[tuple[Any, ...]]:
        self._check_open()
        chunk = self._rows[self._cursor_index :]
        self._cursor_index = len(self._rows)
        return list(chunk)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def close(self) -> None:
        self._closed = True
        self._rows = []

    def _check_open(self) -> None:
        if self._closed:
            raise ProgrammingError("cannot operate on a closed cursor")
        self.connection._check_open()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
