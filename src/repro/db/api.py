"""Backend-neutral database connectivity — PerfDMF's JDBC analog.

The paper (§3.1): *"Access to the SQL interface is provided using the
Java Database Connectivity (JDBC) API.  Because all supported databases
are accessed through a common interface, the tool programmer does not
need to worry about vendor-specific SQL syntax."*

This module is that common interface for the Python reproduction.  A
:class:`DBConnection` wraps a DB-API connection from either runnable
engine and adds

* URL-based connection strings (``sqlite:///path``, ``sqlite://:memory:``,
  ``minisql://shared-name``) mirroring JDBC URLs,
* uniform exceptions (:class:`DatabaseError` et al. re-exported here),
* ``get_metadata(table)`` — the ``getMetaData()`` analog PerfDMF's
  flexible-schema feature is built on,
* registration of the statistics aggregates (STDDEV, VARIANCE) that the
  PerfDMF aggregate API requires but sqlite lacks natively.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.obs.metrics import registry as _registry
from repro.obs.trace import tracer as _tracer

from . import minisql
from .dialects import Dialect, get_dialect

# Uniform exception aliases: both engines raise compatible hierarchies,
# and callers of repro.db catch these.
DatabaseError = (sqlite3.DatabaseError, minisql.DatabaseError)
IntegrityError = (sqlite3.IntegrityError, minisql.IntegrityError)
OperationalError = (sqlite3.OperationalError, minisql.OperationalError)
ProgrammingError = (sqlite3.ProgrammingError, minisql.ProgrammingError)


@dataclass(frozen=True)
class ColumnMetadata:
    """One column as reported by ``get_metadata`` (getMetaData analog)."""

    name: str
    type_name: str
    not_null: bool
    primary_key: bool
    default: Any = None


class _SqliteStddev:
    """Sample standard deviation aggregate for sqlite (Welford)."""

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def step(self, value: Any) -> None:
        if value is None:
            return
        x = float(value)
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)

    def finalize(self) -> Optional[float]:
        if self.n < 2:
            return None
        return (self.m2 / (self.n - 1)) ** 0.5


class _SqliteVariance(_SqliteStddev):
    def finalize(self) -> Optional[float]:  # type: ignore[override]
        if self.n < 2:
            return None
        return self.m2 / (self.n - 1)


def parse_url(url: str) -> tuple[str, str]:
    """Split a connection URL into (backend, target).

    Accepted forms::

        sqlite://:memory:          in-memory sqlite
        sqlite:///abs/path.db      file-backed sqlite
        sqlite://relative.db       relative path
        minisql://:memory:         private in-memory MiniSQL
        minisql://name             named shared MiniSQL database
        minisql:///abs/path.mdb    durable file-backed MiniSQL archive
                                   (WAL + checkpoint, crash recovery on
                                   open; see repro.db.minisql.wal)
        minisql://file:/abs/path   durable archive at a non-.mdb path

    File-backed MiniSQL is opt-in via the ``.mdb`` suffix or ``file:``
    prefix; any other target (slashes included) is a named shared
    in-memory database.
    """
    if "://" not in url:
        raise ValueError(
            f"malformed database URL {url!r}; expected backend://target"
        )
    backend, _, target = url.partition("://")
    backend = backend.lower()
    if backend not in ("sqlite", "minisql"):
        raise ValueError(
            f"unsupported backend {backend!r}; runnable backends are "
            "'sqlite' and 'minisql'"
        )
    if not target:
        target = ":memory:"
    return backend, target


def connect(url: str = "sqlite://:memory:") -> "DBConnection":
    """Open a :class:`DBConnection` for ``url``."""
    backend, target = parse_url(url)
    if backend == "sqlite":
        raw = sqlite3.connect(target, check_same_thread=False)
        raw.create_aggregate("stddev", 1, _SqliteStddev)
        raw.create_aggregate("stdev", 1, _SqliteStddev)
        raw.create_aggregate("variance", 1, _SqliteVariance)
        dialect = get_dialect("sqlite")
    else:
        raw = minisql.connect(target)
        dialect = get_dialect("minisql")
    return DBConnection(raw, backend=backend, dialect=dialect, url=url)


class DBConnection:
    """A live connection to one of the runnable engines.

    Thin by design: PerfDMF's higher layers (schema manager, DB sessions)
    speak plain portable SQL through this object and never import a
    driver module directly.
    """

    def __init__(self, raw: Any, backend: str, dialect: Dialect, url: str):
        self._raw = raw
        self.backend = backend
        self.dialect = dialect
        self.url = url
        self._lock = threading.RLock()
        self._closed = False
        #: Per-stage timings from the most recent bulk ingest
        #: (``ingest_*_seconds``, ``ingest_rows``, ``ingest_rows_per_second``),
        #: filled in by ``save_trial`` and merged into :meth:`stats`.
        self.ingest_stats: dict[str, float] = {}

    # -- core statement API ---------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any:
        """Execute one statement; returns the backend cursor."""
        if _tracer.enabled:
            with _tracer.span(
                "db.execute", backend=self.backend, sql=sql.strip()[:200]
            ):
                with self._lock:
                    return self._raw.execute(sql, tuple(params))
        with self._lock:
            return self._raw.execute(sql, tuple(params))

    def executemany(self, sql: str, seq: Iterable[Sequence[Any]]) -> Any:
        if _tracer.enabled:
            with _tracer.span(
                "db.executemany", backend=self.backend, sql=sql.strip()[:200]
            ):
                with self._lock:
                    return self._raw.executemany(sql, seq)
        with self._lock:
            return self._raw.executemany(sql, seq)

    def executescript(self, script: str) -> None:
        with self._lock:
            self._raw.executescript(script)

    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        """Execute and fetch all rows."""
        return self.execute(sql, params).fetchall()

    def query_one(self, sql: str, params: Sequence[Any] = ()) -> Optional[tuple]:
        return self.execute(sql, params).fetchone()

    def scalar(self, sql: str, params: Sequence[Any] = ()) -> Any:
        """Execute and return the first column of the first row (or None)."""
        row = self.query_one(sql, params)
        return None if row is None else row[0]

    def insert(self, sql: str, params: Sequence[Any] = ()) -> Optional[int]:
        """Execute an INSERT and return ``lastrowid``."""
        with self._lock:
            cursor = self._raw.execute(sql, tuple(params))
            return cursor.lastrowid

    def stats(self) -> dict[str, Any]:
        """Access-path counters (rows scanned vs. via index) plus the
        per-stage ingest timings of the most recent bulk load.

        Only the minisql backend instruments its planner; sqlite reports
        just the ingest timings so callers can probe either engine
        uniformly.
        """
        merged: dict[str, Any] = {}
        if self.backend == "minisql":
            with self._lock:
                merged.update(self._raw.stats())
        merged.update(self.ingest_stats)
        # Publish the snapshot into the process-global registry so
        # ``repro stats`` and the Prometheus exposition see it too.
        _registry.absorb("db", merged)
        return merged

    def reset_stats(self) -> None:
        self.ingest_stats.clear()
        if self.backend == "minisql":
            with self._lock:
                self._raw.reset_stats()

    # -- bulk load -------------------------------------------------------------

    def begin_bulk(self) -> None:
        """Enter bulk-load mode.

        On minisql this defers secondary index maintenance until
        :meth:`end_bulk` (``PRAGMA bulk_load``); sqlite needs no mode —
        its bulk path is ``executemany`` batching — and silently ignores
        the pragma, keeping the two backends drop-in interchangeable.
        """
        with self._lock:
            self._raw.execute("PRAGMA bulk_load(on)")

    def end_bulk(self) -> None:
        """Leave bulk-load mode, rebuilding deferred indexes (minisql)."""
        with self._lock:
            self._raw.execute("PRAGMA bulk_load(off)")

    @contextmanager
    def bulk_load(self) -> Iterator["DBConnection"]:
        """Transactional bulk load: commit on success, all-or-nothing
        rollback on error; indexes are rebuilt on exit either way."""
        self.begin_bulk()
        try:
            yield self
        except BaseException:
            self.rollback()
            self.end_bulk()
            raise
        else:
            self.end_bulk()
            self.commit()

    def shard_ingest_handle(self, table: str, columns: Sequence[str]):
        """A buffered handle for writing ``table`` rows straight into
        MiniSQL's parallel shard files, or None whenever shard ingest
        does not apply (sqlite backend, no ``PRAGMA shards`` manager,
        in-memory shards, or a table already populated in the primary).

        Callers add rows instead of running ``executemany`` and must
        call ``handle.flush(connection)`` *after* committing the
        surrounding transaction — flush falls back to a single-writer
        ``executemany`` on this connection if parallel ingest refuses.
        """
        if self.backend != "minisql":
            return None
        mgr = getattr(getattr(self._raw, "_database", None), "shard_mgr", None)
        if mgr is None:
            return None
        return mgr.ingest_handle(table, columns)

    def commit(self) -> None:
        with self._lock:
            self._raw.commit()

    def rollback(self) -> None:
        with self._lock:
            self._raw.rollback()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._raw.close()
                self._closed = True

    def __enter__(self) -> "DBConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        self.close()

    # -- metadata (the getMetaData() analog) ------------------------------------

    def table_names(self) -> list[str]:
        if self.backend == "sqlite":
            rows = self.query(
                "SELECT name FROM sqlite_master WHERE type = 'table' "
                "AND name NOT LIKE 'sqlite_%' ORDER BY name"
            )
            return [r[0] for r in rows]
        rows = self.query("PRAGMA table_list")
        return sorted(r[0] for r in rows)

    def has_table(self, name: str) -> bool:
        return name.lower() in {t.lower() for t in self.table_names()}

    def get_metadata(self, table: str) -> list[ColumnMetadata]:
        """Column metadata for ``table``.

        This is the mechanism behind PerfDMF's *flexible schema*: the
        APPLICATION / EXPERIMENT / TRIAL tables may gain or lose metadata
        columns without any code change, because entity objects discover
        columns at runtime instead of hard-coding them (paper §3.2).
        """
        if not _is_safe_identifier(table):
            raise ValueError(f"invalid table name {table!r}")
        rows = self.query(f"PRAGMA table_info({table})")
        if not rows:
            raise LookupError(f"no such table: {table}")
        return [
            ColumnMetadata(
                name=row[1],
                type_name=str(row[2]).upper(),
                not_null=bool(row[3]),
                primary_key=bool(row[5]),
                default=row[4],
            )
            for row in rows
        ]

    def column_names(self, table: str) -> list[str]:
        return [c.name for c in self.get_metadata(table)]


def _is_safe_identifier(name: str) -> bool:
    return bool(name) and all(c.isalnum() or c == "_" for c in name)
