"""``repro.db`` — the relational substrate behind PerfDMF.

Two runnable engines behind one API:

* ``sqlite`` — the stdlib C engine (with STDDEV/VARIANCE registered),
* ``minisql`` — a from-scratch pure-Python engine (:mod:`repro.db.minisql`).

Use :func:`repro.db.connect` with a URL::

    from repro import db
    conn = db.connect("sqlite://:memory:")
    conn = db.connect("minisql://shared-archive")
"""

from .api import (
    ColumnMetadata, DatabaseError, DBConnection, IntegrityError,
    OperationalError, ProgrammingError, connect, parse_url,
)
from .dialects import DIALECTS, Dialect, get_dialect
from .pool import ConnectionPool, PoolTimeout

__all__ = [
    "connect", "parse_url", "DBConnection", "ColumnMetadata",
    "ConnectionPool", "PoolTimeout", "Dialect", "DIALECTS", "get_dialect",
    "DatabaseError", "IntegrityError", "OperationalError", "ProgrammingError",
]
