"""A small thread-safe connection pool.

PerfExplorer's analysis server handles concurrent client requests; each
worker borrows a connection from a pool instead of opening its own
(paper §5.3's client-server design).  For file-backed sqlite the pool
amortises open/close cost; for named MiniSQL databases every pooled
connection shares the same in-memory catalog.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import registry as _registry

from .api import DBConnection, connect


class PoolTimeout(TimeoutError):
    """Raised when ``acquire`` waits past its timeout for a connection."""


class ConnectionPool:
    """Fixed-capacity pool of :class:`DBConnection` objects."""

    def __init__(self, url: str, size: int = 4):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.url = url
        self.size = size
        self._idle: queue.LifoQueue[DBConnection] = queue.LifoQueue(maxsize=size)
        self._created = 0
        self._lock = threading.Lock()
        self._closed = False

    def acquire(self, timeout: float | None = None) -> DBConnection:
        """Borrow a connection, creating one lazily up to ``size``.

        Blocks until a connection is returned when the pool is exhausted;
        with ``timeout``, raises :class:`PoolTimeout` instead of waiting
        forever.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        t0 = time.perf_counter()
        try:
            conn = self._idle.get_nowait()
            self._observe_acquire(t0)
            return conn
        except queue.Empty:
            pass
        with self._lock:
            if self._created < self.size:
                self._created += 1
                conn = connect(self.url)
                self._observe_acquire(t0)
                return conn
        try:
            conn = self._idle.get(timeout=timeout)
        except queue.Empty:
            _registry.counter("db.pool.timeouts").inc()
            raise PoolTimeout(
                f"no connection available within {timeout}s "
                f"(pool size {self.size}, all borrowed)"
            ) from None
        self._observe_acquire(t0)
        return conn

    @staticmethod
    def _observe_acquire(t0: float) -> None:
        _registry.counter("db.pool.acquires").inc()
        _registry.histogram("db.pool.acquire_wait_seconds").observe(
            time.perf_counter() - t0
        )

    def release(self, connection: DBConnection) -> None:
        """Return a borrowed connection to the pool."""
        if self._closed:
            connection.close()
            return
        try:
            self._idle.put_nowait(connection)
        except queue.Full:  # over-released; drop it
            connection.close()

    @contextmanager
    def connection(self, timeout: float | None = None) -> Iterator[DBConnection]:
        """``with pool.connection() as conn:`` borrow/return helper."""
        conn = self.acquire(timeout=timeout)
        try:
            yield conn
        finally:
            self.release(conn)

    def close(self) -> None:
        """Close every idle connection and refuse further acquires."""
        self._closed = True
        while True:
            try:
                self._idle.get_nowait().close()
            except queue.Empty:
                return

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
