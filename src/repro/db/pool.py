"""A small thread-safe connection pool.

PerfExplorer's analysis server handles concurrent client requests; each
worker borrows a connection from a pool instead of opening its own
(paper §5.3's client-server design).  For file-backed sqlite the pool
amortises open/close cost; for named MiniSQL databases every pooled
connection shares the same in-memory catalog.
"""

from __future__ import annotations

import queue
import threading
import time
import weakref
from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import registry as _registry

from .api import DBConnection, connect


class PoolTimeout(TimeoutError):
    """Raised when ``acquire`` waits past its timeout for a connection."""


class ConnectionPool:
    """Fixed-capacity pool of :class:`DBConnection` objects.

    A borrowed connection that is never released — its holder crashed,
    leaked, or simply forgot — does not leak its slot forever: a
    ``weakref.finalize`` on every created connection gives the capacity
    back when the object is garbage-collected, and ``acquire`` re-checks
    capacity after a timed-out wait before giving up.
    """

    def __init__(self, url: str, size: int = 4):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.url = url
        self.size = size
        self._idle: queue.LifoQueue[DBConnection] = queue.LifoQueue(maxsize=size)
        self._created = 0
        self._lock = threading.Lock()
        self._closed = False
        self._finalizers: dict[int, weakref.finalize] = {}

    def _create(self) -> DBConnection:
        conn = connect(self.url)
        self._finalizers[id(conn)] = weakref.finalize(
            conn, self._reclaim_slot
        )
        return conn

    def _reclaim_slot(self) -> None:
        """A created connection was garbage-collected without being
        released: free its capacity so acquire() can replace it."""
        with self._lock:
            if self._created > 0:
                self._created -= 1
        _registry.counter("db.pool.reclaimed").inc()

    def _forget(self, connection: DBConnection) -> None:
        finalizer = self._finalizers.pop(id(connection), None)
        if finalizer is not None:
            finalizer.detach()

    def acquire(self, timeout: float | None = None) -> DBConnection:
        """Borrow a connection, creating one lazily up to ``size``.

        Blocks until a connection is returned when the pool is exhausted;
        with ``timeout``, raises :class:`PoolTimeout` instead of waiting
        forever (after one last capacity check, in case a leaked
        connection was reclaimed while we waited).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        t0 = time.perf_counter()
        try:
            conn = self._idle.get_nowait()
            self._observe_acquire(t0)
            return conn
        except queue.Empty:
            pass
        with self._lock:
            if self._created < self.size:
                self._created += 1
                conn = self._create()
                self._observe_acquire(t0)
                return conn
        try:
            conn = self._idle.get(timeout=timeout)
        except queue.Empty:
            with self._lock:
                if self._created < self.size:
                    # A leaked connection was finalized during the wait.
                    self._created += 1
                    conn = self._create()
                    self._observe_acquire(t0)
                    return conn
            _registry.counter("db.pool.timeouts").inc()
            raise PoolTimeout(
                f"no connection available within {timeout}s "
                f"(pool size {self.size}, all borrowed)"
            ) from None
        self._observe_acquire(t0)
        return conn

    @staticmethod
    def _observe_acquire(t0: float) -> None:
        _registry.counter("db.pool.acquires").inc()
        _registry.histogram("db.pool.acquire_wait_seconds").observe(
            time.perf_counter() - t0
        )

    def release(self, connection: DBConnection) -> None:
        """Return a borrowed connection to the pool."""
        if self._closed:
            self._forget(connection)
            connection.close()
            return
        try:
            self._idle.put_nowait(connection)
        except queue.Full:  # over-released; drop it
            if id(connection) in self._finalizers:
                self._forget(connection)
                with self._lock:
                    if self._created > 0:
                        self._created -= 1
            connection.close()

    @contextmanager
    def connection(self, timeout: float | None = None) -> Iterator[DBConnection]:
        """``with pool.connection() as conn:`` borrow/return helper."""
        conn = self.acquire(timeout=timeout)
        try:
            yield conn
        finally:
            self.release(conn)

    def close(self) -> None:
        """Close every idle connection and refuse further acquires."""
        self._closed = True
        while True:
            try:
                conn = self._idle.get_nowait()
            except queue.Empty:
                return
            self._forget(conn)
            conn.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
