"""A small thread-safe connection pool.

PerfExplorer's analysis server handles concurrent client requests; each
worker borrows a connection from a pool instead of opening its own
(paper §5.3's client-server design).  For file-backed sqlite the pool
amortises open/close cost; for named MiniSQL databases every pooled
connection shares the same in-memory catalog.
"""

from __future__ import annotations

import queue
import threading
import time
import weakref
from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import registry as _registry

from .api import DBConnection, connect


class PoolTimeout(TimeoutError):
    """Raised when ``acquire`` waits past its timeout for a connection."""


#: Queue sentinel posted by the leak-reclaim finalizer: it wakes one
#: blocked acquirer (even an untimed one) so the freed capacity turns
#: into a replacement connection instead of a wait for a release that
#: will never come.
_RECLAIMED = object()


class ConnectionPool:
    """Fixed-capacity pool of :class:`DBConnection` objects.

    A borrowed connection that is never released — its holder crashed,
    leaked, or simply forgot — does not leak its slot forever: a
    ``weakref.finalize`` on every created connection gives the capacity
    back when the object is garbage-collected, and ``acquire`` re-checks
    capacity after a timed-out wait before giving up.
    """

    def __init__(self, url: str, size: int = 4):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.url = url
        self.size = size
        self._idle: queue.LifoQueue[DBConnection] = queue.LifoQueue(maxsize=size)
        self._created = 0
        self._lock = threading.Lock()
        self._closed = False
        self._finalizers: dict[int, weakref.finalize] = {}

    def _create(self) -> DBConnection:
        conn = connect(self.url)
        self._finalizers[id(conn)] = weakref.finalize(
            conn, self._reclaim_slot
        )
        return conn

    def _reclaim_slot(self) -> None:
        """A created connection was garbage-collected without being
        released: free its capacity and wake one blocked acquirer so
        the slot is replaceable immediately — not only after a timed
        wait expires."""
        with self._lock:
            if self._created > 0:
                self._created -= 1
        try:
            self._idle.put_nowait(_RECLAIMED)
        except queue.Full:  # idle connections exist, so nobody is parked
            pass
        _registry.counter("db.pool.reclaimed").inc()

    def _forget(self, connection: DBConnection) -> None:
        finalizer = self._finalizers.pop(id(connection), None)
        if finalizer is not None:
            finalizer.detach()

    def acquire(self, timeout: float | None = None) -> DBConnection:
        """Borrow a connection, creating one lazily up to ``size``.

        Blocks until a connection is returned when the pool is exhausted;
        with ``timeout``, raises :class:`PoolTimeout` instead of waiting
        forever.  A leaked connection's finalizer posts a wake-up
        sentinel, so blocked acquirers — timed or not — create a
        replacement as soon as the slot is reclaimed.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        t0 = time.perf_counter()
        deadline = None if timeout is None else t0 + timeout
        while True:
            try:
                item = self._idle.get_nowait()
            except queue.Empty:
                item = None
            if item is not None and item is not _RECLAIMED:
                self._observe_acquire(t0)
                return item
            # Queue empty, or a reclaim sentinel freed capacity: create.
            with self._lock:
                if self._created < self.size:
                    self._created += 1
                    conn = self._create()
                    self._observe_acquire(t0)
                    return conn
            if item is _RECLAIMED:
                continue  # capacity raced away — re-check the queue
            remaining = (
                None if deadline is None else deadline - time.perf_counter()
            )
            if remaining is not None and remaining <= 0:
                self._raise_timeout(timeout)
            try:
                item = self._idle.get(timeout=remaining)
            except queue.Empty:
                with self._lock:
                    if self._created < self.size:
                        # A leaked connection was finalized during the
                        # wait but its sentinel went to another waiter.
                        self._created += 1
                        conn = self._create()
                        self._observe_acquire(t0)
                        return conn
                self._raise_timeout(timeout)
            if item is _RECLAIMED:
                continue
            self._observe_acquire(t0)
            return item

    def _raise_timeout(self, timeout: float | None) -> None:
        _registry.counter("db.pool.timeouts").inc()
        raise PoolTimeout(
            f"no connection available within {timeout}s "
            f"(pool size {self.size}, all borrowed)"
        ) from None

    @staticmethod
    def _observe_acquire(t0: float) -> None:
        _registry.counter("db.pool.acquires").inc()
        _registry.histogram("db.pool.acquire_wait_seconds").observe(
            time.perf_counter() - t0
        )

    def release(self, connection: DBConnection) -> None:
        """Return a borrowed connection to the pool."""
        if self._closed:
            self._forget(connection)
            connection.close()
            return
        try:
            self._idle.put_nowait(connection)
        except queue.Full:  # over-released; drop it
            if id(connection) in self._finalizers:
                self._forget(connection)
                with self._lock:
                    if self._created > 0:
                        self._created -= 1
            connection.close()

    @contextmanager
    def connection(self, timeout: float | None = None) -> Iterator[DBConnection]:
        """``with pool.connection() as conn:`` borrow/return helper."""
        conn = self.acquire(timeout=timeout)
        try:
            yield conn
        finally:
            self.release(conn)

    def close(self) -> None:
        """Close every idle connection and refuse further acquires."""
        self._closed = True
        while True:
            try:
                conn = self._idle.get_nowait()
            except queue.Empty:
                return
            if conn is _RECLAIMED:
                continue
            self._forget(conn)
            conn.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
