#!/usr/bin/env python3
"""PerfExplorer data mining on sPPM counter profiles (paper §5.3).

Reproduces the paper's flagship analysis: k-means clustering of
per-thread PAPI counter profiles rediscovers the *"interesting floating
point operation behavior in the sPPM application"* first reported by
Ahn & Vetter — boundary-handling threads form a distinct population
from interior threads.

The full client-server architecture is exercised: an analysis server
backed by a PerfDMF database, a TCP client, and analysis results saved
back through the extended schema.

Run with::

    python examples/sppm_datamining.py
"""

import numpy as np

from repro.core.session import PerfDMFSession
from repro.explorer import AnalysisServer, PerfExplorerClient, SocketServer
from repro.tau.apps import SPPM
from repro.tau.apps.sppm import boundary_fraction

RANKS = 256
DB_URL = "minisql://sppm-mining"   # shared in-memory database


def main() -> None:
    # --- load the dataset (the role LLNL's archives played) --------------------
    print(f"=== running sPPM on {RANKS} ranks with 7 PAPI counters ===")
    setup = PerfDMFSession(DB_URL)
    app = setup.create_application("sppm", description="ASCI Purple benchmark")
    exp = setup.create_experiment(app, "counter-study")
    source = SPPM(problem_size=0.02, timesteps=1).run(RANKS)
    trial = setup.save_trial(source, exp, f"P={RANKS}")
    print(f"stored {setup.count_data_points(trial):,} data points, "
          f"metrics: {', '.join(setup.get_metrics(trial))}")

    # --- start the analysis server (Figure 3) -------------------------------------
    server = SocketServer(AnalysisServer(DB_URL))
    host, port = server.start()
    print(f"analysis server listening on {host}:{port}")

    # --- the analyst's session through the client -----------------------------------
    with PerfExplorerClient(host, port) as client:
        apps = client.list_applications()
        exps = client.list_experiments(apps[0]["id"])
        trials = client.list_trials(exps[0]["id"])
        trial_id = trials[0]["id"]
        print(f"\nanalyst selected trial {trials[0]['name']} (id={trial_id})")

        print("\n=== requesting k-means clustering on PAPI_FP_OPS ===")
        result = client.cluster_trial(trial_id, metric_name="PAPI_FP_OPS", max_k=5)
        print(f"chosen k: {result['k']}  cluster sizes: {result['sizes']}  "
              f"silhouette: {result['silhouette']:.3f}")
        for summary in result["summary"]:
            top = ", ".join(
                f"{f['name']} ({f['deviation']:+.3f})"
                for f in summary["features"][:3]
            )
            print(f"  cluster {summary['cluster']} "
                  f"({summary['size']} threads): {top}")

        # Did the clustering find the boundary/interior structure?
        truth = np.array([boundary_fraction(r, RANKS) for r in range(RANKS)])
        labels = np.array(result["labels"]) == 1
        agreement = max((labels == truth).mean(), (labels != truth).mean())
        print(f"\nagreement with ground-truth boundary/interior split: "
              f"{agreement:.1%}  (Ahn & Vetter behaviour reproduced)")

        print("\n=== descriptive statistics via the server's R substitute ===")
        for event in ("hydro_kernel", "interface_sharpen"):
            d = client.describe_event(trial_id, event)
            print(f"  {event:<20} mean={d['mean']:12,.0f} "
                  f"stddev={d['stddev']:10,.0f} skew={d['skewness']:+.2f}")

        corr = client.correlate_events(trial_id, "hydro_kernel",
                                       "interface_sharpen")
        print(f"\ncorrelation(hydro, sharpen): "
              f"pearson={corr['pearson_r']:+.3f}")

        print("\n=== results were saved through the PerfDMF API ===")
        for analysis in client.list_analyses(trial_id):
            print(f"  analysis #{analysis['id']}: {analysis['name']} "
                  f"[{analysis['method']}]")

    server.stop()


if __name__ == "__main__":
    main()
