#!/usr/bin/env python3
"""The Figure 2 scenario: one shared archive, three profiling tools.

Paper §5.1 shows ParaProf browsing a database holding trials imported
from HPMToolkit, mpiP and TAU.  This example builds exactly that
archive, prints the browse tree, and opens a display window on each
trial.

Run with::

    python examples/multiformat_archive.py
"""

import tempfile
from pathlib import Path

from repro.paraprof import ArchiveManager, ProfileBrowser
from repro.tau.apps import SPPM
from repro.tau.writers import (
    write_hpm_output, write_mpip_report, write_tau_profiles,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="perfdmf-archive-"))

    # One application run, measured by three different tools (each tool
    # sees the run through its own lens: TAU = full profile, mpiP = MPI
    # only, HPMToolkit = counter sections).
    print("=== simulating one sPPM run, emitting three tool formats ===")
    run = SPPM(problem_size=0.02, timesteps=1).run(16)
    write_tau_profiles(run, workdir / "tau")
    write_mpip_report(run, workdir / "run.mpiP")
    write_hpm_output(run, workdir / "hpm")

    # Import all three into one shared archive — formats auto-detected.
    print("=== importing into the shared archive ===")
    archive = ArchiveManager(f"sqlite://{workdir}/archive.db")
    for target, trial_name in [
        (workdir / "tau", "TAU trial"),
        (workdir / "run.mpiP", "mpiP trial"),
        (workdir / "hpm", "HPMToolkit trial"),
    ]:
        trial = archive.import_profile(target, "sppm", "multi-tool", trial_name)
        print(f"  imported {trial_name} (trial id={trial.id})")

    # The ParaProf tree view (the left pane of Figure 2).
    browser = ProfileBrowser(archive)
    print("\n" + browser.render_tree())

    # Open each trial — three graph windows, one per source tool.
    for trial_name in ("TAU trial", "mpiP trial", "HPMToolkit trial"):
        browser.open_trial("sppm", "multi-tool", trial_name)
        print("\n" + "=" * 70)
        print(browser.show_aggregate(top=6))

    # Contextual-highlighting summary of the TAU trial.
    browser.open_trial("sppm", "multi-tool", "TAU trial")
    print("\n" + "=" * 70)
    print(browser.show_summary())


if __name__ == "__main__":
    main()
