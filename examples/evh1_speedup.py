#!/usr/bin/env python3
"""The §5.2 trial browser + speedup analyzer, applied to EVH1.

*"We applied this tool to study the scalability of the EVH1 benchmark.
Given performance data from experiments with varying numbers of
processors, the tool automatically calculates the minimum, mean and
maximum values for the speedup [of] every profiled routine."*

This example stores a strong-scaling sweep in the database, browses the
trials through the DataSession API, and runs the speedup analysis.

Run with::

    python examples/evh1_speedup.py
"""

import tempfile

from repro.core.session import PerfDMFSession
from repro.core.toolkit import (
    SpeedupAnalyzer, communication_crossover, scaling_profile,
)
from repro.tau.apps import EVH1

PROCESSOR_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def main() -> None:
    db = tempfile.mktemp(suffix=".db", prefix="evh1-")
    session = PerfDMFSession(f"sqlite://{db}")

    # --- run + store the sweep ------------------------------------------------
    print(f"=== EVH1 strong scaling sweep: P = {PROCESSOR_COUNTS} ===")
    app = session.create_application("evh1")
    exp = session.create_experiment(app, "strong-scaling")
    evh1 = EVH1(problem_size=1.0, timesteps=2)
    for p in PROCESSOR_COUNTS:
        source = evh1.run(p)
        session.save_trial(source, exp, f"P={p}")
        print(f"  stored P={p}: {source.num_threads} threads")

    # --- the trial browser: walk the hierarchy via the API ---------------------
    print("\n=== trial browser ===")
    session.set_application(app)
    session.set_experiment(exp)
    analyzer = SpeedupAnalyzer()
    trials = []
    for trial in session.get_trial_list():
        p = trial.get("node_count")
        print(f"  {trial.name}: nodes={p} "
              f"ctx/node={trial.get('contexts_per_node')} "
              f"thr/ctx={trial.get('max_threads_per_context')}")
        source = session.load_datasource(trial)
        analyzer.add_trial(p, source)
        trials.append((p, source))

    # --- per-routine min/mean/max speedup --------------------------------------
    print("\n=== per-routine speedup (min / mean / max) ===")
    print(analyzer.report())

    # --- whole-application speedup ----------------------------------------------
    print("\n=== application speedup ===")
    for point in analyzer.application_speedup():
        print(f"  P={point.processors:3d}: "
              f"min={point.minimum:6.2f} mean={point.mean:6.2f} "
              f"max={point.maximum:6.2f} eff={point.efficiency:5.2f}")

    # --- where does communication start to dominate? -----------------------------
    profile = scaling_profile(trials)
    print("\n=== compute/communication balance ===")
    for pt in profile:
        print(f"  P={pt.processors:3d}: compute={pt.compute_fraction:5.1%} "
              f"comm={pt.communication_fraction:5.1%} io={pt.io_fraction:5.1%}")
    crossover = communication_crossover(profile)
    if crossover:
        print(f"communication overtakes computation at P={crossover}")
    else:
        print("communication never overtakes computation in this sweep")
    session.close()


if __name__ == "__main__":
    main()
