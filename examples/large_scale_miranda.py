#!/usr/bin/env python3
"""The Miranda large-scale stress test (paper §3.1 / §5.3).

*"The 16K processor run consisted of over 1.6 million data points, and
the PerfDMF API was able to handle the data without problems."*

This example regenerates that dataset — 101 instrumented events, one
wall-clock metric, 16K threads — loads it through the PerfDMF API, and
runs the selective queries a 2005 analyst would have: per-node slices,
event summaries, and SQL aggregates.  Takes ~1 minute; set RANKS lower
for a quicker demonstration.

Run with::

    python examples/large_scale_miranda.py [ranks]
"""

import sys
import time

from repro.core.session import PerfDMFSession
from repro.tau.apps import Miranda

RANKS = int(sys.argv[1]) if len(sys.argv) > 1 else 16384


def main() -> None:
    print(f"=== generating the Miranda profile: {RANKS} threads × 101 events ===")
    t0 = time.perf_counter()
    trial_data = Miranda().generate(RANKS)
    print(f"generated {trial_data.num_data_points:,} data points "
          f"in {time.perf_counter() - t0:.1f}s")

    session = PerfDMFSession("sqlite://:memory:")
    app = session.create_application("miranda")
    exp = session.create_experiment(app, "bluegene-l")

    print("\n=== bulk load through the PerfDMF API ===")
    t0 = time.perf_counter()
    trial = session.save_trial(trial_data, exp, f"P={RANKS}")
    load_seconds = time.perf_counter() - t0
    points = session.count_data_points(trial)
    print(f"stored {points:,} location-profile rows in {load_seconds:.1f}s "
          f"({points / load_seconds:,.0f} rows/s)")

    session.set_trial(trial)

    print("\n=== selective queries (no full-trial load) ===")
    t0 = time.perf_counter()
    session.set_node(RANKS // 2)
    rows = session.get_interval_event_data()
    print(f"one-node slice: {len(rows)} rows in "
          f"{(time.perf_counter() - t0) * 1000:.1f} ms")
    session.set_node(None)

    t0 = time.perf_counter()
    summary = session.get_summary("mean", metric_name="TIME")
    print(f"precomputed mean summary: {len(summary)} events in "
          f"{(time.perf_counter() - t0) * 1000:.1f} ms")

    print("\n=== SQL aggregates over all 1.6M rows ===")
    for event in ("fft_kernel_00", "MPI_Alltoall() [call 00]"):
        t0 = time.perf_counter()
        mean = session.aggregate("mean", event_name=event)
        stddev = session.aggregate("stddev", event_name=event)
        print(f"  {event:<28} mean={mean:12,.0f} stddev={stddev:10,.0f} usec "
              f"({(time.perf_counter() - t0) * 1000:.0f} ms)")

    print("\nhandled without problems.")
    session.close()


if __name__ == "__main__":
    main()
