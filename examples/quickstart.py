#!/usr/bin/env python3
"""Quickstart: the four PerfDMF components in one walk-through.

Mirrors the paper's architecture (Figure 1): profile input → profile
database → query/analysis API → analysis toolkit.

Run with::

    python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro.core.io_ import export_xml, load_profile
from repro.core.session import PerfDMFSession
from repro.core.toolkit import event_statistics, top_events
from repro.paraprof import aggregate_view
from repro.tau.apps import EVH1
from repro.tau.writers import write_tau_profiles


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="perfdmf-quickstart-"))

    # ------------------------------------------------------------------
    # 0. Get some profile data.  On a real machine this comes from TAU /
    #    gprof / mpiP runs; here the simulated EVH1 benchmark stands in.
    # ------------------------------------------------------------------
    print("=== running the (simulated) EVH1 benchmark on 8 ranks ===")
    source = EVH1(problem_size=0.2, timesteps=2).run(8)
    print(f"got {source.num_threads} threads, "
          f"{source.num_interval_events} events, "
          f"{source.num_metrics} metric(s)\n")

    # ------------------------------------------------------------------
    # 1. Profile input: write native TAU profiles, then import them the
    #    way any PerfDMF user would (format auto-detected).
    # ------------------------------------------------------------------
    profile_dir = workdir / "tau-profiles"
    write_tau_profiles(source, profile_dir)
    print(f"=== parsing TAU profiles from {profile_dir} ===")
    parsed = load_profile(profile_dir)
    print(f"parsed back: {parsed.num_threads} threads, "
          f"{parsed.num_interval_events} events\n")

    # ------------------------------------------------------------------
    # 2. Profile database: store the trial under application/experiment.
    # ------------------------------------------------------------------
    db_path = workdir / "perfdmf.db"
    print(f"=== storing into {db_path} ===")
    session = PerfDMFSession(f"sqlite://{db_path}")
    app = session.create_application("evh1", version="1.0",
                                     description="PPM hydrodynamics")
    exp = session.create_experiment(app, "quickstart",
                                    system_info="simulated cluster")
    trial = session.save_trial(parsed, exp, "P=8", problem_definition="2D shocktube")
    print(f"stored trial id={trial.id}; "
          f"{session.count_data_points(trial)} data points\n")

    # ------------------------------------------------------------------
    # 3. Query API: selection filters + SQL aggregates, no SQL written.
    # ------------------------------------------------------------------
    print("=== querying through the DataSession API ===")
    session.set_application(app)
    session.set_experiment(exp)
    session.set_trial(trial)
    print("metrics:", session.get_metrics())
    for op in ("min", "mean", "max", "stddev"):
        value = session.aggregate(op, event_name="riemann")
        print(f"  riemann exclusive {op}: {value:,.1f} usec")
    session.set_node(0)
    rows = session.get_interval_event_data()
    print(f"  node-0 selective query returned {len(rows)} rows")
    session.set_node(None)

    # ------------------------------------------------------------------
    # 4. Analysis toolkit + ParaProf display on the reloaded trial.
    # ------------------------------------------------------------------
    print("\n=== analysis toolkit ===")
    reloaded = session.load_datasource(trial)
    for stats in top_events(reloaded, n=5):
        print(f"  {stats.event:<22} mean={stats.mean:12,.1f} usec "
              f"imbalance={stats.imbalance:.2f}")
    alltoall = event_statistics(reloaded, "MPI_Alltoall()")
    print(f"\nMPI_Alltoall(): min={alltoall.minimum:,.0f} "
          f"mean={alltoall.mean:,.0f} max={alltoall.maximum:,.0f} usec")

    print("\n=== ParaProf aggregate view ===")
    print(aggregate_view(reloaded, top=8))

    # Bonus: the common XML exchange format (paper §3.1).
    xml_path = workdir / "trial.xml"
    export_xml(reloaded, xml_path)
    print(f"\nexported common XML representation to {xml_path}")
    session.close()


if __name__ == "__main__":
    main()
