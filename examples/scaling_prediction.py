#!/usr/bin/env python3
"""Prophesy-style scaling prediction from archived trials (paper §6).

The paper positions PerfDMF as the data-management substrate on which
modeling systems like Prophesy could run: *"This could allow Prophesy's
modeling algorithms to be captured as part of a broader analysis
library."*  This example does exactly that: it trains per-routine
scaling models on a stored P ≤ 16 sweep, predicts P = 64, then runs
P = 64 for real and scores the predictions.

Run with::

    python examples/scaling_prediction.py
"""

from repro.core.session import PerfDMFSession
from repro.core.toolkit import (
    event_statistics, predict_routines, prediction_report,
)
from repro.tau.apps import EVH1

TRAIN = (1, 2, 4, 8, 16)
TARGET = 64


def main() -> None:
    session = PerfDMFSession("sqlite://:memory:")
    app_row = session.create_application("evh1")
    experiment = session.create_experiment(app_row, "model-study")

    print(f"=== storing the training sweep P={TRAIN} ===")
    app = EVH1(problem_size=1.0, timesteps=1)
    for p in TRAIN:
        session.save_trial(app.run(p), experiment, f"P={p}")

    session.set_experiment(experiment)
    trials = [
        (t.get("node_count"), session.load_datasource(t))
        for t in session.get_trial_list()
    ]

    print(f"\n=== fitting per-routine models, predicting P={TARGET} ===")
    predictions = predict_routines(trials, target_processors=TARGET)
    print(prediction_report(predictions[:8], TARGET))

    # serial fraction diagnosis for the routine that refuses to scale
    by_name = {p.event: p for p in predictions}
    init = by_name.get("init")
    if init and init.model.serial_fraction is not None:
        print(f"\n'init' serial fraction: {init.model.serial_fraction:.1%} "
              "(Amdahl says: don't expect this routine to speed up)")

    print(f"\n=== ground truth: actually running P={TARGET} ===")
    actual_trial = EVH1(problem_size=1.0, timesteps=1).run(TARGET)
    print("%-24s %14s %14s %8s" % ("routine", "predicted", "actual", "error"))
    for prediction in predictions[:8]:
        try:
            actual = event_statistics(
                actual_trial, prediction.event, inclusive=True
            ).mean
        except KeyError:
            continue
        error = (
            100.0 * (prediction.predicted - actual) / actual
            if actual > 0 else float("nan")
        )
        print("%-24s %14.1f %14.1f %+7.1f%%"
              % (prediction.event[:24], prediction.predicted, actual, error))
    session.close()


if __name__ == "__main__":
    main()
