#!/usr/bin/env python3
"""Tracking an application's performance history (paper §7 future work).

*"The PerfDMF technology will be equally valuable ... for efficiently
tracking the performance history of a single application code."*

This example stores a chronological series of trials of one experiment
— versions v1..v6 of a code, where v5 introduces a performance bug in
the Riemann solver — then uses the CUBE trial algebra and the regression
detector to find and localise it.

Run with::

    python examples/regression_tracking.py
"""

import tempfile

from repro.core.session import PerfDMFSession
from repro.core.toolkit import (
    comparison_report, detect_regressions, diff, regression_report,
    top_events,
)
from repro.tau.apps import EVH1


def make_version(version: int, ranks: int = 8):
    """Simulate version ``version`` of the code; v5+ has a slow solver."""
    source = EVH1(problem_size=0.3, timesteps=2, seed=100 + version).run(ranks)
    if version >= 5:
        event = source.get_interval_event("riemann")
        for thread in source.all_threads():
            fp = thread.function_profiles[event.index]
            extra = fp.get_exclusive(0) * 0.8  # the "bug": 80% slower solver
            fp.set_exclusive(0, fp.get_exclusive(0) + extra)
            fp.set_inclusive(0, fp.get_inclusive(0) + extra)
        # bubble the slowdown up into the containing sweep + main timers
        for parent in ("sweepx1", "sweepy", "sweepx2", "sweepz", "main"):
            pevent = source.get_interval_event(parent)
            for thread in source.all_threads():
                pf = thread.function_profiles[pevent.index]
                pf.set_inclusive(0, pf.get_inclusive(0) * 1.2)
        source.generate_statistics()
    return source


def main() -> None:
    db = tempfile.mktemp(suffix=".db", prefix="history-")
    session = PerfDMFSession(f"sqlite://{db}")
    app = session.create_application("evh1")
    exp = session.create_experiment(app, "nightly")

    print("=== storing the nightly history v1..v6 ===")
    history = []
    for version in range(1, 7):
        source = make_version(version)
        session.save_trial(source, exp, f"v{version}")
        history.append((f"v{version}", source))
        duration = sum(
            t.max_inclusive(0) for t in source.all_threads()
        ) / source.num_threads / 1e6
        print(f"  v{version}: mean run time {duration:6.3f} s")

    print("\n=== automated regression detection ===")
    regressions = detect_regressions(history, window=3)
    print(regression_report(regressions))

    print("\n=== localising with the CUBE difference algebra ===")
    good = history[3][1]   # v4
    bad = history[4][1]    # v5
    delta = diff(bad, good)
    print("biggest contributors to v5 - v4 (mean exclusive):")
    for stats in top_events(delta, n=5):
        print(f"  {stats.event:<22} {stats.mean:+14,.1f} usec")

    print("\n=== side-by-side comparison report ===")
    print(comparison_report(good, bad, "v4", "v5", n=6))
    session.close()


if __name__ == "__main__":
    main()
