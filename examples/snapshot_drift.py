#!/usr/bin/env python3
"""Snapshot (time-series) profiles and drift analysis.

TAU can capture the cumulative profile at runtime triggers, turning one
trial into a time series.  This example captures snapshots of an EVH1
run after each timestep, differences them into per-interval profiles
with the CUBE algebra, and runs the drift detector — the kind of
"is this run getting slower as it progresses?" question snapshot
profiles exist to answer.

Run with::

    python examples/snapshot_drift.py
"""

from repro.core.model.snapshot import drift_report
from repro.core.toolkit import top_events
from repro.tau.apps import EVH1
from repro.tau.snapshots import capture_series


class DriftingEVH1(EVH1):
    """EVH1 variant whose Riemann solver slows down over the run.

    Models the classic decay pattern: adaptive refinement grows the
    working set each step, so later steps cost more.
    """

    def kernel(self, rank):
        step_holder = {"n": 0}
        original_compute = rank.compute

        def growing_compute(flops, **kwargs):
            growth = 1.0 + 0.35 * step_holder["n"]
            original_compute(flops * growth, **kwargs)

        # count steps via the dtcon timer, which runs once per step
        original_call = rank.call

        def counting_call(name, group="TAU_DEFAULT"):
            if name == "dtcon":
                step_holder["n"] += 1
            return original_call(name, group)

        rank.compute = growing_compute
        rank.call = counting_call
        try:
            super().kernel(rank)
        finally:
            rank.compute = original_compute
            rank.call = original_call


def main() -> None:
    steps = [1, 2, 3, 4]
    print(f"=== capturing snapshots after steps {steps} ===")
    series = capture_series(
        lambda n: DriftingEVH1(problem_size=0.3, timesteps=n, seed=11),
        ranks=4,
        steps=steps,
    )
    problems = series.validate()
    print(f"snapshots: {len(series)}, monotonicity problems: {len(problems)}")

    print("\n=== per-interval activity (what each step cost) ===")
    for label, interval in series.intervals():
        busiest = top_events(interval, n=1)[0]
        print(f"  {label:<28} busiest: {busiest.event:<14} "
              f"{busiest.mean:12,.0f} usec mean")

    print("\n=== cumulative vs per-interval series for 'riemann' ===")
    ts, cumulative = series.event_series("riemann")
    _ts, increments = series.event_series("riemann", per_interval=True)
    for i, t in enumerate(ts):
        inc = f"  (+{increments[i - 1]:,.0f})" if i > 0 else ""
        print(f"  t={t:>4.0f}s  cumulative={cumulative[i]:14,.0f} usec{inc}")

    print("\n=== drift report ===")
    report = drift_report(series, threshold=1.3)
    if not report:
        print("no drifting events")
    for row in report:
        print(f"  {row['event']:<16} first interval {row['first_interval']:12,.0f}, "
              f"last {row['last_interval']:12,.0f}  ({row['ratio']:.2f}x)")


if __name__ == "__main__":
    main()
